"""Shared helpers for the benchmark harness.

Every figure/table of the paper has a ``bench_*.py`` file here.  Each bench

* regenerates the figure's data series and *prints* them (the same
  rows/series the paper reports), and
* times a representative unit of work with ``pytest-benchmark``.

By default the benches run on a scaled-down suite so that
``pytest benchmarks/ --benchmark-only`` completes in a couple of minutes.
Set ``REPRO_BENCH_SCALE=paper`` to run the full Table II applications with the
paper's capacity sweep (this is what EXPERIMENTS.md records).

Artefact schema (``data/BENCH_<name>.json``): top level carries
``schema_version``/``machine``/``python``/``scale`` metadata plus a
``sections`` mapping, one entry per bench (see :func:`record_bench`).  The
``batch_fanout`` section of ``BENCH_pipeline.json`` records the batched
variant-simulation comparison (``bench_pipeline_scale.py``):

* ``points``/``programs``/``gates`` -- sweep shape: compiled programs times
  gate implementations evaluated per pass;
* ``serial_s``/``batched_cold_s``/``batched_warm_s`` -- best-of wall time of
  the per-variant serial loop versus one batched pass with cold (plans
  rebuilt) and warm (plans + memos populated) caches, with
  ``speedup_cold``/``speedup_warm`` and ``per_variant_us`` derived views;
* ``dedup`` -- timeline cache behaviour over the run: ``timelines_built``,
  ``timeline_hits``, ``variants``, ``hit_rate``;
* ``ablation`` -- the heating/fidelity model fan-out (one program, many
  parameter vectors): ``variants``, ``serial_s``, ``batched_s``, ``speedup``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, List, Sequence

from repro.apps import scaled_suite, table2_suite
from repro.ir.circuit import Circuit

#: Where the machine-readable benchmark artefacts live (committed per-PR so
#: the perf trajectory is tracked in data, not only in prose).
BENCH_DATA_DIR = Path(__file__).parent / "data"

#: Version of the artefact layout written by :func:`record_bench` (v2 added
#: the per-section ``_meta`` provenance block; ``repro bench diff`` accepts
#: v1 files, whose sections simply lack it).
BENCH_SCHEMA_VERSION = 2

#: Capacity sweep used at paper scale (Figures 6-8 x axis).
PAPER_CAPACITIES = (14, 18, 22, 26, 30, 34)

#: Reduced sweep used by default so the harness stays fast.
SMALL_CAPACITIES = (6, 8, 10)


def bench_scale() -> str:
    """"paper" or "small", from the REPRO_BENCH_SCALE environment variable."""

    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("paper", "small"):
        raise ValueError("REPRO_BENCH_SCALE must be 'paper' or 'small'")
    return scale


def bench_suite() -> Dict[str, Circuit]:
    """The application suite for the selected scale."""

    if bench_scale() == "paper":
        return table2_suite()
    return scaled_suite(16)


def bench_capacities() -> Sequence[int]:
    """The trap-capacity sweep for the selected scale."""

    return PAPER_CAPACITIES if bench_scale() == "paper" else SMALL_CAPACITIES


def reference_capacity() -> int:
    """A single mid-sweep capacity used by the timed benchmark units."""

    capacities = bench_capacities()
    return capacities[len(capacities) // 2]


def record_bench(name: str, section: str, payload: Dict[str, object]) -> Path:
    """Merge one section into ``data/BENCH_<name>.json`` and return the path.

    Each bench run updates its own section, so the artefact accumulates the
    full picture as the suite runs while any single test can refresh its
    numbers in isolation.  Environment metadata rides along so trajectories
    are only compared within one machine/scale.

    Since ``bench_schema`` 2 every section also carries a ``_meta`` block
    tying the numbers to the run that produced them -- the section's
    config fingerprint, the process metrics snapshot and the trace schema
    version -- so ``BENCH_*.json`` and run telemetry share one provenance
    vocabulary and ``repro bench diff`` can tell "the workload changed"
    apart from "the same workload got slower".  ``_meta`` is skipped by
    the diff itself (provenance, not performance).
    """

    from repro.io.serialization import SCHEMA_VERSION
    from repro.obs.export import TRACE_SCHEMA_VERSION, config_fingerprint
    from repro.obs.metrics import registry

    path = BENCH_DATA_DIR / f"BENCH_{name}.json"
    data: Dict[str, object] = {}
    if path.exists():
        with open(path) as handle:
            data = json.load(handle)
        if data.get("machine") != platform.platform() or \
                data.get("scale") != bench_scale():
            # Sections from another machine/scale would be mislabelled by
            # the refreshed metadata; start the artefact over instead.
            data = {}
    data["schema_version"] = SCHEMA_VERSION
    data["bench_schema"] = BENCH_SCHEMA_VERSION
    data["machine"] = platform.platform()
    data["python"] = sys.version.split()[0]
    data["scale"] = bench_scale()
    entry = dict(payload)
    entry["_meta"] = {
        "config_fingerprint": config_fingerprint(
            {"name": name, "section": section, "payload": payload,
             "machine": data["machine"], "python": data["python"],
             "scale": data["scale"]}),
        "metrics": registry().snapshot(),
        "trace_schema": TRACE_SCHEMA_VERSION,
    }
    sections = data.setdefault("sections", {})
    sections[section] = entry
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_series(title: str, capacities: Sequence[int],
                 series: Dict[str, List[float]]) -> None:
    """Print one figure panel as an aligned table."""

    from repro.analysis.series import format_series_table

    print()
    print(format_series_table(capacities, series, title=title))

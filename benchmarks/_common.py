"""Shared helpers for the benchmark harness.

Every figure/table of the paper has a ``bench_*.py`` file here.  Each bench

* regenerates the figure's data series and *prints* them (the same
  rows/series the paper reports), and
* times a representative unit of work with ``pytest-benchmark``.

By default the benches run on a scaled-down suite so that
``pytest benchmarks/ --benchmark-only`` completes in a couple of minutes.
Set ``REPRO_BENCH_SCALE=paper`` to run the full Table II applications with the
paper's capacity sweep (this is what EXPERIMENTS.md records).
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.apps import scaled_suite, table2_suite
from repro.ir.circuit import Circuit

#: Capacity sweep used at paper scale (Figures 6-8 x axis).
PAPER_CAPACITIES = (14, 18, 22, 26, 30, 34)

#: Reduced sweep used by default so the harness stays fast.
SMALL_CAPACITIES = (6, 8, 10)


def bench_scale() -> str:
    """"paper" or "small", from the REPRO_BENCH_SCALE environment variable."""

    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("paper", "small"):
        raise ValueError("REPRO_BENCH_SCALE must be 'paper' or 'small'")
    return scale


def bench_suite() -> Dict[str, Circuit]:
    """The application suite for the selected scale."""

    if bench_scale() == "paper":
        return table2_suite()
    return scaled_suite(16)


def bench_capacities() -> Sequence[int]:
    """The trap-capacity sweep for the selected scale."""

    return PAPER_CAPACITIES if bench_scale() == "paper" else SMALL_CAPACITIES


def reference_capacity() -> int:
    """A single mid-sweep capacity used by the timed benchmark units."""

    capacities = bench_capacities()
    return capacities[len(capacities) // 2]


def print_series(title: str, capacities: Sequence[int],
                 series: Dict[str, List[float]]) -> None:
    """Print one figure panel as an aligned table."""

    from repro.analysis.series import format_series_table

    print()
    print(format_series_table(capacities, series, title=title))

"""Verbatim copy of the SEED simulation engine (pre fast-path rewrite).

Kept only as the A/B baseline for ``bench_pipeline_scale.py``: the optimized
engine in :mod:`repro.sim.engine` is benchmarked against this reference on the
same compiled programs, and the determinism tests can assert both produce
bit-identical metrics.  Do not import this from library code.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.hardware.device import QCCDDevice
from repro.isa.operations import (
    GateOp,
    IonSwapOp,
    JunctionCrossOp,
    MergeOp,
    MeasureOp,
    MoveOp,
    Operation,
    OpKind,
    SplitOp,
    SwapGateOp,
)
from repro.isa.program import QCCDProgram
from repro.models.fidelity import FidelityModel
from repro.models.gate_times import gate_time
from repro.models.heating import HeatingModel
from repro.sim.resources import ResourceTimeline
from repro.sim.results import OperationRecord, SimulationResult


def simulate(program: QCCDProgram, device: QCCDDevice, *,
             keep_timeline: bool = False,
             with_breakdown: bool = True) -> SimulationResult:
    """Simulate ``program`` on ``device`` and return the metrics.

    Parameters
    ----------
    keep_timeline:
        Also record a per-operation (start, finish, fidelity) timeline.
    with_breakdown:
        Run the extra timing pass that produces the computation versus
        communication time split (costs one more linear pass).
    """

    durations = _operation_durations(program, device)
    finish_times, trap_gate_busy, trap_comm_busy = _timing_pass(program, device, durations)
    start_times = [finish_times[index] - durations[index] for index in range(len(durations))]
    noise = _noise_pass(program, device, durations, start_times)
    makespan = max(finish_times, default=0.0)

    if with_breakdown:
        compute_durations = [
            0.0 if op.kind.is_communication else durations[op.op_id]
            for op in program.operations
        ]
        compute_finish, _, _ = _timing_pass(program, device, compute_durations)
        computation_time = max(compute_finish, default=0.0)
    else:
        computation_time = makespan
    communication_time = max(0.0, makespan - computation_time)

    timeline: Optional[List[OperationRecord]] = None
    if keep_timeline:
        timeline = [
            OperationRecord(
                op_id=op.op_id,
                kind=op.kind,
                start=finish_times[op.op_id] - durations[op.op_id],
                finish=finish_times[op.op_id],
                fidelity=noise.op_fidelities[op.op_id],
            )
            for op in program.operations
        ]

    num_ms = noise.num_ms_gates
    return SimulationResult(
        duration=makespan,
        fidelity=SimulationResult.fidelity_from_log(noise.log_fidelity),
        log_fidelity=noise.log_fidelity,
        computation_time=computation_time,
        communication_time=communication_time,
        op_counts=program.op_counts(),
        mean_background_error=noise.background_error / num_ms if num_ms else 0.0,
        mean_motional_error=noise.motional_error / num_ms if num_ms else 0.0,
        total_background_error=noise.background_error,
        total_motional_error=noise.motional_error,
        max_motional_energy=noise.max_energy,
        final_trap_energies=dict(noise.trap_energy),
        peak_occupancy=dict(noise.peak_occupancy),
        num_shuttles=program.num_shuttles,
        num_ms_gates=num_ms,
        trap_gate_busy_time=trap_gate_busy,
        trap_comm_busy_time=trap_comm_busy,
        timeline=timeline,
        circuit_name=program.circuit_name,
        device_name=program.device_name,
    )


# --------------------------------------------------------------------------- #
# Pass 1: durations
# --------------------------------------------------------------------------- #
def _operation_durations(program: QCCDProgram, device: QCCDDevice) -> List[float]:
    """Duration of every operation under the device's performance models."""

    shuttle = device.model.shuttle
    single = device.model.single_qubit
    durations: List[float] = []
    for op in program.operations:
        durations.append(_duration_of(op, device, shuttle, single))
    return durations


def _duration_of(op: Operation, device: QCCDDevice, shuttle, single) -> float:
    if isinstance(op, GateOp):
        if op.is_two_qubit:
            return gate_time(device.gate, distance=op.ion_distance,
                             chain_length=op.chain_length)
        return single.gate_time
    if isinstance(op, SwapGateOp):
        one_ms = gate_time(device.gate, distance=op.ion_distance,
                           chain_length=op.chain_length)
        return SwapGateOp.MS_GATES_PER_SWAP * one_ms
    if isinstance(op, MeasureOp):
        return single.measurement_time
    if isinstance(op, SplitOp):
        return shuttle.split
    if isinstance(op, MergeOp):
        return shuttle.merge
    if isinstance(op, MoveOp):
        return shuttle.move_segment * op.length
    if isinstance(op, JunctionCrossOp):
        return shuttle.junction_time(op.junction_degree)
    if isinstance(op, IonSwapOp):
        return shuttle.split + shuttle.ion_rotation + shuttle.merge
    raise TypeError(f"unknown operation type: {type(op).__name__}")


# --------------------------------------------------------------------------- #
# Pass 2: heating and fidelity
# --------------------------------------------------------------------------- #
class _NoiseState:
    """Mutable accumulator for the noise pass."""

    def __init__(self, program: QCCDProgram, device: QCCDDevice) -> None:
        self.trap_energy: Dict[str, float] = {
            trap.name: 0.0 for trap in device.topology.traps
        }
        self.transit_energy: Dict[int, float] = {}
        self.occupancy: Dict[str, int] = {trap.name: 0 for trap in device.topology.traps}
        for trap_name, chain in program.placement.trap_chains.items():
            self.occupancy[trap_name] = len(chain)
        self.peak_occupancy: Dict[str, int] = dict(self.occupancy)
        self.log_fidelity: float = 0.0
        self.op_fidelities: List[float] = []
        self.background_error: float = 0.0
        self.motional_error: float = 0.0
        self.num_ms_gates: int = 0
        self.max_energy: float = 0.0

    def bump_energy(self, trap: str, value: float) -> None:
        self.trap_energy[trap] = value
        if value > self.max_energy:
            self.max_energy = value

    def bump_occupancy(self, trap: str, delta: int) -> None:
        self.occupancy[trap] += delta
        if self.occupancy[trap] > self.peak_occupancy[trap]:
            self.peak_occupancy[trap] = self.occupancy[trap]

    def apply_fidelity(self, fidelity: float) -> None:
        if fidelity <= 0.0:
            self.log_fidelity = -math.inf
        elif self.log_fidelity != -math.inf:
            self.log_fidelity += math.log(fidelity)
        self.op_fidelities.append(fidelity)


def _noise_pass(program: QCCDProgram, device: QCCDDevice,
                durations: List[float], start_times: List[float]) -> _NoiseState:
    heating = HeatingModel(device.model.heating)
    fidelity_model = FidelityModel(device.model.fidelity)
    state = _NoiseState(program, device)
    background_rate = device.model.heating.background_rate

    for op in program.operations:
        duration = durations[op.op_id]
        # Anomalous (background) heating of the chain accumulated since the
        # start of the execution.  It is added to the shuttling-induced energy
        # when evaluating gate errors, but reported separately: the device
        # metric of Figure 6f tracks shuttling-induced energy only.
        background_energy = background_rate * start_times[op.op_id]
        if isinstance(op, GateOp):
            if op.is_two_qubit:
                fid = _apply_ms_gate(state, fidelity_model, op.trap, duration,
                                     op.chain_length, repetitions=1,
                                     extra_energy=background_energy)
            else:
                fid = fidelity_model.single_qubit_fidelity()
            state.apply_fidelity(fid)
        elif isinstance(op, SwapGateOp):
            one_ms = duration / SwapGateOp.MS_GATES_PER_SWAP
            fid = _apply_ms_gate(state, fidelity_model, op.trap, one_ms,
                                 op.chain_length,
                                 repetitions=SwapGateOp.MS_GATES_PER_SWAP,
                                 extra_energy=background_energy)
            state.apply_fidelity(fid)
        elif isinstance(op, MeasureOp):
            state.apply_fidelity(fidelity_model.measurement_fidelity())
        elif isinstance(op, SplitOp):
            remaining, split_off = heating.split(state.trap_energy[op.trap],
                                                 op.chain_size, 1)
            state.bump_energy(op.trap, remaining)
            state.transit_energy[op.ion] = split_off
            state.bump_occupancy(op.trap, -1)
            state.apply_fidelity(1.0)
        elif isinstance(op, MergeOp):
            incoming = state.transit_energy.pop(op.ion, 0.0)
            state.bump_energy(op.trap, heating.merge(state.trap_energy[op.trap], incoming))
            state.bump_occupancy(op.trap, +1)
            state.apply_fidelity(1.0)
        elif isinstance(op, MoveOp):
            current = state.transit_energy.get(op.ion, 0.0)
            state.transit_energy[op.ion] = heating.move(current, op.length)
            state.apply_fidelity(1.0)
        elif isinstance(op, JunctionCrossOp):
            current = state.transit_energy.get(op.ion, 0.0)
            state.transit_energy[op.ion] = heating.cross_junction(current)
            state.apply_fidelity(1.0)
        elif isinstance(op, IonSwapOp):
            # One IS hop: split the pair off, rotate, merge back.  Net effect on
            # the chain energy is +3*k1 (two sub-chains gain k1 at the split and
            # the merge adds another k1); we derive it through the model so any
            # parameter change stays consistent.
            energy = state.trap_energy[op.trap]
            remaining, pair = heating.split(energy, op.chain_size, 2)
            state.bump_energy(op.trap, heating.merge(remaining, pair))
            state.apply_fidelity(1.0)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown operation type: {type(op).__name__}")
    return state


def _apply_ms_gate(state: _NoiseState, model: FidelityModel, trap: str,
                   one_gate_duration: float, chain_length: int,
                   repetitions: int, extra_energy: float = 0.0) -> float:
    """Fidelity of ``repetitions`` MS gates in ``trap``; updates error totals.

    ``extra_energy`` is the background-heating contribution to the chain's
    motional energy at the time the gate executes (on top of the
    shuttling-induced energy tracked in ``state``).
    """

    breakdown = model.two_qubit_error(
        duration=one_gate_duration,
        chain_length=chain_length,
        motional_energy=state.trap_energy[trap] + extra_energy,
    )
    state.background_error += breakdown.background * repetitions
    state.motional_error += breakdown.motional * repetitions
    state.num_ms_gates += repetitions
    single = max(model.params.min_fidelity, min(1.0, 1.0 - breakdown.total))
    return single ** repetitions


# --------------------------------------------------------------------------- #
# Pass 3: timing
# --------------------------------------------------------------------------- #
def _timing_pass(program: QCCDProgram, device: QCCDDevice,
                 durations: List[float]) -> Tuple[List[float], Dict[str, float], Dict[str, float]]:
    """Start/finish times under dependency and resource constraints.

    Returns the per-op finish times plus per-trap busy time split into gate
    (computation) and communication components.
    """

    resources = ResourceTimeline()
    finish: List[float] = [0.0] * len(program.operations)
    trap_names = {trap.name for trap in device.topology.traps}
    trap_gate_busy: Dict[str, float] = {name: 0.0 for name in trap_names}
    trap_comm_busy: Dict[str, float] = {name: 0.0 for name in trap_names}

    for op in program.operations:
        duration = durations[op.op_id]
        ready = max((finish[dep] for dep in op.dependencies), default=0.0)
        start = max(ready, resources.available_at(op.resources))
        end = start + duration
        resources.occupy(op.resources, start, end)
        finish[op.op_id] = end
        for resource in op.resources:
            if resource in trap_names:
                if op.kind.is_communication:
                    trap_comm_busy[resource] += duration
                else:
                    trap_gate_busy[resource] += duration
    return finish, trap_gate_busy, trap_comm_busy

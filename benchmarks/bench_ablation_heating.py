"""Ablation: sensitivity to the heating and buffer-space design choices.

Two of the calibration knobs DESIGN.md documents are swept here:

* the shuttle heating constants (k1, k2) -- the paper assumes an order of
  magnitude better than Honeywell's measured rates; this ablation shows how
  application fidelity responds if that improvement does not materialise;
* the per-trap buffer reserved for incoming shuttles (the paper uses 2).
"""

from dataclasses import replace

import pytest

from _common import bench_suite, reference_capacity

from repro.compiler import compile_circuit
from repro.models.params import HeatingParams, PhysicalModel
from repro.sim import simulate
from repro.toolflow import ArchitectureConfig


@pytest.fixture(scope="module")
def compiled():
    circuit = bench_suite()["SquareRoot"]
    config = ArchitectureConfig(topology="L6", trap_capacity=reference_capacity())
    device = config.build_device(circuit.num_qubits)
    return compile_circuit(circuit, device), device


@pytest.mark.parametrize("scale", [0.1, 1.0, 10.0])
def test_heating_rate_ablation(benchmark, compiled, scale):
    program, device = compiled
    base = device.model.heating
    heating = HeatingParams(k1=base.k1 * scale, k2=base.k2 * scale,
                            k_junction=base.k_junction * scale,
                            background_rate=base.background_rate)
    hot_device = replace(device, model=replace(device.model, heating=heating), name="")
    result = benchmark(simulate, program, hot_device)
    print(f"\n[heating x{scale}] fidelity={result.fidelity:.3e} "
          f"maxE={result.max_motional_energy:.1f}")
    assert 0.0 <= result.fidelity <= 1.0


def test_fidelity_monotone_in_heating(compiled):
    program, device = compiled
    fidelities = []
    for scale in (0.1, 1.0, 10.0):
        base = PhysicalModel().heating
        heating = HeatingParams(k1=base.k1 * scale, k2=base.k2 * scale,
                                k_junction=base.k_junction * scale,
                                background_rate=base.background_rate)
        variant = replace(device, model=replace(device.model, heating=heating), name="")
        fidelities.append(simulate(program, variant).fidelity)
    assert fidelities[0] >= fidelities[1] >= fidelities[2]


@pytest.mark.parametrize("buffer_ions", [1, 2, 4])
def test_buffer_space_ablation(benchmark, buffer_ions):
    circuit = bench_suite()["QFT"]
    config = ArchitectureConfig(topology="L6", trap_capacity=reference_capacity(),
                                buffer_ions=buffer_ions)
    device = config.build_device(circuit.num_qubits)
    program = benchmark(compile_circuit, circuit, device)
    result = simulate(program, device)
    print(f"\n[buffer={buffer_ions}] shuttles={program.num_shuttles} "
          f"fidelity={result.fidelity:.3e}")
    assert result.duration > 0.0

"""Ablation: how much does the routing/mapping intelligence matter?

The paper's compiler "uses heuristic techniques which aim to reduce
communication" but does not specify the shuttle-direction policy.  This
ablation quantifies the design choice DESIGN.md calls out: the interaction-
affinity policy versus the space-based and fixed-direction policies, and the
greedy first-use mapping versus round-robin.
"""

import pytest

from _common import bench_suite, reference_capacity

from repro.compiler import compile_circuit
from repro.compiler.compile import CompilerOptions
from repro.sim import simulate
from repro.toolflow import ArchitectureConfig


@pytest.fixture(scope="module")
def setup():
    circuit = bench_suite()["Supremacy"]
    config = ArchitectureConfig(topology="L6", trap_capacity=reference_capacity())
    return circuit, config.build_device(circuit.num_qubits)


@pytest.mark.parametrize("routing", ["affinity", "space", "fixed"])
def test_routing_policy_ablation(benchmark, setup, routing):
    circuit, device = setup
    options = CompilerOptions(routing=routing)
    program = benchmark(compile_circuit, circuit, device, options)
    result = simulate(program, device)
    print(f"\n[routing={routing}] shuttles={program.num_shuttles} "
          f"fidelity={result.fidelity:.3e} time={result.duration_seconds:.4f}s "
          f"maxE={result.max_motional_energy:.1f}")
    assert program.num_shuttles > 0


@pytest.mark.parametrize("mapping", ["greedy", "round_robin"])
def test_mapping_ablation(benchmark, setup, mapping):
    circuit, device = setup
    options = CompilerOptions(mapping=mapping)
    program = benchmark(compile_circuit, circuit, device, options)
    result = simulate(program, device)
    print(f"\n[mapping={mapping}] shuttles={program.num_shuttles} "
          f"fidelity={result.fidelity:.3e}")
    assert program.num_shuttles >= 0


def test_greedy_mapping_beats_round_robin(setup):
    """The paper's locality-aware mapping needs fewer shuttles than a
    deliberately locality-free one."""

    circuit, device = setup
    greedy = compile_circuit(circuit, device, CompilerOptions(mapping="greedy"))
    scattered = compile_circuit(circuit, device, CompilerOptions(mapping="round_robin"))
    assert greedy.num_shuttles < scattered.num_shuttles

"""Static-check overhead benchmark: ``--check`` must be free when off.

The runtime contract of :mod:`repro.analyze.runtime` (see
``docs/static-analysis.md``): with ``--check`` disarmed -- the default --
each guarded compile/sweep-task site pays one ``checks_enabled()`` call (a
module flag test, falling back to one environment lookup).  This bench pins
that contract against the same Figure 8-style sweep ``bench_obs.py``
projects the disabled-span cost onto (96 design points at small scale):

1. time the sweep as shipped (checks off);
2. count the guarded call sites the sweep executes (one per sweep task
   plus one per compile, i.e. at most two per design point);
3. time the disarmed ``checks_enabled()`` fast path in isolation and
   project its cost onto that site count.

The projected off-path overhead must stay **under 1% of the sweep's wall
time** -- the same budget the disabled-span fast path honours.  The armed
sweep is also timed, for the record: verification is allowed to cost,
the disarmed guard is not.
"""

from __future__ import annotations

import sys

import pytest

from _common import bench_scale, bench_suite, record_bench

from repro.analyze import checks_enabled, enable_checks, reset_checks
from repro.toolflow import ArchitectureConfig, ProgramCache, sweep_microarchitecture

SWEEP_GATES = ("AM1", "AM2", "PM", "FM")
SWEEP_REORDERS = ("GS", "IS")

#: Disarmed checks_enabled() guards timed per measurement pass.
DISABLED_CALLS = 100_000


def _best_of(fn, repeats: int = 3) -> float:
    from time import perf_counter

    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def _sweep_spec():
    if bench_scale() == "paper":
        return "L6", (18, 26)
    return "L4", (6, 8)


def test_disabled_check_overhead(benchmark):
    """Projected disarmed-guard cost on the 96-point sweep: < 1% of wall time."""

    reset_checks()
    suite = bench_suite()
    topology, capacities = _sweep_spec()
    base = ArchitectureConfig(topology=topology)

    def run_sweep():
        return sweep_microarchitecture(suite, capacities=capacities,
                                       gates=SWEEP_GATES,
                                       reorders=SWEEP_REORDERS,
                                       base=base, cache=ProgramCache())

    points = len(run_sweep())  # warm-up (and the point count)
    sweep_s = _best_of(run_sweep)

    # Guard sites: one in compile_circuit and one in the sweep executor,
    # upper-bounded at two per design point (cache hits skip the compile).
    guard_sites = 2 * points

    # One armed pass, for the record: full verification of every program
    # the sweep compiles (memoized per cached program thereafter).
    enable_checks()
    try:
        armed_s = _best_of(run_sweep, repeats=1)
    finally:
        enable_checks(False)
        reset_checks()

    def disarmed_pass():
        for _ in range(DISABLED_CALLS):
            if checks_enabled():
                raise AssertionError("checks unexpectedly armed")

    per_call_s = _best_of(disarmed_pass) / DISABLED_CALLS
    overhead_s = per_call_s * guard_sites
    fraction = overhead_s / sweep_s

    print()
    print(f"Disarmed --check overhead (scale={bench_scale()}, "
          f"{points} design points):")
    print(f"  sweep wall time      : {sweep_s * 1e3:8.1f} ms (checks off)")
    print(f"  armed sweep          : {armed_s * 1e3:8.1f} ms "
          f"(full verification)")
    print(f"  disarmed guard call  : {per_call_s * 1e9:8.1f} ns")
    print(f"  projected overhead   : {overhead_s * 1e6:8.1f} us "
          f"({100 * fraction:.4f}% of the sweep)")
    record_bench("check", "disabled_overhead", {
        "points": points,
        "sweep_s": sweep_s,
        "armed_sweep_s": armed_s,
        "guard_sites": guard_sites,
        "disarmed_call_ns": per_call_s * 1e9,
        "projected_overhead_s": overhead_s,
        "overhead_fraction": fraction,
    })

    assert fraction < 0.01, (
        f"disarmed --check costs {100 * fraction:.3f}% of the sweep "
        f"({per_call_s * 1e9:.0f} ns x {guard_sites} guards); the "
        f"fast path has regressed")

    benchmark(disarmed_pass)


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-s", "-q", "--benchmark-disable"]))

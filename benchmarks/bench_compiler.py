"""Toolflow microbenchmarks: compiler throughput.

Not a paper figure, but a useful regression guard: the compiler must stay fast
enough that the paper-scale sweeps (hundreds of compile+simulate runs) finish
in minutes on a laptop, as the authors report for their Skylake host.
"""

import pytest

from _common import bench_suite, reference_capacity

from repro.compiler import compile_circuit
from repro.compiler.compile import CompilerOptions
from repro.toolflow import ArchitectureConfig


@pytest.fixture(scope="module")
def device():
    config = ArchitectureConfig(topology="L6", trap_capacity=reference_capacity())
    circuit = bench_suite()["QFT"]
    return circuit, config.build_device(circuit.num_qubits)


def test_compile_qft(benchmark, device):
    circuit, dev = device
    program = benchmark(compile_circuit, circuit, dev)
    assert program.num_two_qubit_gates == circuit.num_two_qubit_gates


def test_compile_qft_is_reordering(benchmark):
    circuit = bench_suite()["QFT"]
    config = ArchitectureConfig(topology="L6", trap_capacity=reference_capacity(),
                                reorder="IS")
    dev = config.build_device(circuit.num_qubits)
    program = benchmark(compile_circuit, circuit, dev)
    assert program.num_two_qubit_gates == circuit.num_two_qubit_gates


@pytest.mark.parametrize("mapping", ["greedy", "round_robin", "interaction_aware"])
def test_compile_mapping_strategies(benchmark, mapping):
    circuit = bench_suite()["Supremacy"]
    config = ArchitectureConfig(topology="L6", trap_capacity=reference_capacity())
    dev = config.build_device(circuit.num_qubits)
    options = CompilerOptions(mapping=mapping)
    program = benchmark(compile_circuit, circuit, dev, options)
    assert program.num_two_qubit_gates == circuit.num_two_qubit_gates

"""DSE subsystem benchmark: store-routed sweeps, resume, and frontiers.

Measures what the exploration layer costs and what it buys, and records the
numbers in ``data/BENCH_dse.json`` so the trajectory is tracked per-PR:

1. **Cold grid run** through a persistent store versus the same points via
   the bare sweep executor -- the store's overhead must stay a small
   fraction of the pipeline time.
2. **Resume**: re-running the space against the populated store must
   recompute nothing and replay orders of magnitude faster than computing.
3. **Store load**: reopening the JSONL directory (the resume startup cost).
4. **Pareto frontier** extraction over every stored record.

The adaptive subsystem gets its own artefact, ``data/BENCH_adaptive.json``:
evaluations-to-best versus the exhaustive grid for the surrogate-guided
strategies, the pure proposer overhead per batch (model fitting +
acquisition scoring, no simulation), and the incremental-reload cost of a
progress tick against a populated store.

The multi-objective subsystem records ``data/BENCH_moo.json``:
evaluations-to-frontier versus the exhaustive grid for EHVI and ParEGO
(how many evaluations until the archive equals the grid's true Pareto
frontier), the pure EHVI proposer overhead per batch, and the exact
hypervolume cost per frontier point (2-D and 3-D).

Default scale is small; set ``REPRO_BENCH_SCALE=paper`` for the full Table II
suite over the paper's capacity sweep.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import pytest

from _common import bench_capacities, bench_scale, bench_suite, record_bench

from repro.dse import DSERunner, DesignSpace, ExperimentStore, pareto_frontier
from repro.toolflow.parallel import ProgramCache, SweepTask, flatten, run_tasks


def _space_and_suite():
    suite = bench_suite()
    topology = "L6" if bench_scale() == "paper" else "L4"
    space = DesignSpace(apps=tuple(suite), topologies=(topology,),
                        capacities=tuple(bench_capacities()),
                        gates=("AM1", "FM"), reorders=("GS",))
    return space, suite


def test_dse_store_routed_sweep(benchmark):
    """Cold store-routed run vs. the bare executor; then a pure replay."""

    space, suite = _space_and_suite()
    points = list(space.points())

    # Bare executor reference: the same points, no store, no fingerprints.
    def bare():
        tasks = [SweepTask(suite[p.app], p.config) for p in points]
        return flatten(run_tasks(tasks, cache=ProgramCache()))

    start = time.perf_counter()
    bare_records = bare()
    bare_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        start = time.perf_counter()
        with ExperimentStore(store_dir) as store:
            runner = DSERunner(space, store=store, circuits=suite)
            records = runner.evaluate_space()
        cold_s = time.perf_counter() - start
        assert len(records) == len(bare_records) == space.size

        start = time.perf_counter()
        reopened = ExperimentStore(store_dir)
        load_s = time.perf_counter() - start

        start = time.perf_counter()
        resumer = DSERunner(space, store=reopened, circuits=suite)
        replayed = resumer.evaluate_space()
        resume_s = time.perf_counter() - start
        assert resumer.stats["evaluated"] == 0, "resume must recompute nothing"
        assert [r.as_row() for r in replayed] == [r.as_row() for r in records]

        start = time.perf_counter()
        frontier = pareto_frontier(reopened.records())
        pareto_s = time.perf_counter() - start
        assert frontier

    overhead = (cold_s - bare_s) / bare_s if bare_s > 0 else 0.0
    print()
    print(f"DSE store-routed sweep (scale={bench_scale()}, {space.size} points):")
    print(f"  bare executor        : {bare_s:8.3f} s")
    print(f"  cold via store       : {cold_s:8.3f} s   "
          f"({100 * overhead:+.1f}% store overhead)")
    print(f"  store reload         : {load_s * 1e3:8.1f} ms ({space.size} rows)")
    print(f"  resume (full replay) : {resume_s * 1e3:8.1f} ms   "
          f"({cold_s / resume_s:.0f}x faster than computing)")
    print(f"  pareto frontier      : {pareto_s * 1e3:8.1f} ms "
          f"({len(frontier)} frontier points)")
    record_bench("dse", "store_routed_sweep", {
        "points": space.size,
        "bare_s": bare_s,
        "cold_s": cold_s,
        "store_overhead_fraction": overhead,
        "store_load_s": load_s,
        "resume_s": resume_s,
        "pareto_s": pareto_s,
        "frontier_points": len(frontier),
    })
    assert resume_s < cold_s, "replay should be cheaper than computing"

    benchmark.pedantic(
        lambda: DSERunner(space, circuits=suite).evaluate_space(),
        rounds=2, iterations=1)


def test_dse_strategy_costs():
    """Evaluated-point counts per strategy (the work adaptivity saves)."""

    from repro.dse import CoordinateDescent, ExhaustiveGrid, RandomSampling

    space, suite = _space_and_suite()
    counts = {}
    timings = {}
    for name, strategy in (
            ("grid", ExhaustiveGrid()),
            ("random", RandomSampling(max(2, space.size // 4), seed=0)),
            ("greedy", CoordinateDescent(seed=0))):
        runner = DSERunner(space, circuits=suite)
        start = time.perf_counter()
        runner.run(strategy)
        timings[name] = time.perf_counter() - start
        counts[name] = runner.stats["evaluated"]

    print()
    print(f"Strategy costs (scale={bench_scale()}, grid = {space.size} points):")
    for name in counts:
        print(f"  {name:8s} {counts[name]:5d} points evaluated "
              f"in {timings[name]:6.3f} s")
    record_bench("dse", "strategy_costs",
                 {name: {"evaluated": counts[name], "wall_s": timings[name]}
                  for name in counts})
    assert counts["greedy"] <= counts["grid"]


def test_dse_adaptive_search():
    """Adaptive strategies: evaluations-to-best vs grid, proposer overhead."""

    from repro.dse import objective_value
    from repro.dse.adaptive.propose import BayesProposer

    space, suite = _space_and_suite()

    grid_runner = DSERunner(space, circuits=suite)
    start = time.perf_counter()
    grid = grid_runner.run()
    grid_s = time.perf_counter() - start
    grid_best = grid.best.as_row()

    # Drive the bayes proposer by hand so propose time (model fitting +
    # acquisition scoring) separates cleanly from evaluation time.
    proposer = BayesProposer(space, seed=5, batch_size=3)
    runner = DSERunner(space, circuits=suite)
    propose_s = 0.0
    evaluate_s = 0.0
    batches = 0
    evals_to_best = None
    while True:
        start = time.perf_counter()
        batch = proposer.next_batch()
        propose_s += time.perf_counter() - start
        if batch is None:
            break
        start = time.perf_counter()
        records = runner.evaluate(list(batch.points))
        evaluate_s += time.perf_counter() - start
        start = time.perf_counter()
        proposer.ingest(batch, [objective_value(r, "fidelity")
                                for r in records])
        propose_s += time.perf_counter() - start
        batches += 1
        if evals_to_best is None and any(
                record.as_row() == grid_best for record in records):
            evals_to_best = proposer.evaluations
    found_best = evals_to_best is not None

    # Incremental-reload cost of one progress tick against the populated
    # grid store (the adaptive proposer's ingest loop pays exactly this).
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        with ExperimentStore(store_dir) as store:
            DSERunner(space, store=store, circuits=suite).evaluate_space()
        watcher = ExperimentStore(store_dir)
        start = time.perf_counter()
        for _ in range(100):
            watcher.reload()
        tick_s = (time.perf_counter() - start) / 100

    print()
    print(f"Adaptive search (scale={bench_scale()}, grid = {space.size} points):")
    print(f"  grid                 : {space.size:4d} evaluations "
          f"in {grid_s:6.3f} s")
    print(f"  bayes (seed 5)       : {proposer.evaluations:4d} evaluations "
          f"in {evaluate_s:6.3f} s"
          + (f", grid best found after {evals_to_best}" if found_best
             else ", grid best NOT found"))
    print(f"  proposer overhead    : {propose_s * 1e3:8.2f} ms total, "
          f"{propose_s / batches * 1e3:6.2f} ms/batch ({batches} batches)")
    print(f"  reload tick (no new) : {tick_s * 1e6:8.1f} us over "
          f"{space.size} stored rows")
    record_bench("adaptive", "search_efficiency", {
        "grid_points": space.size,
        "grid_s": grid_s,
        "bayes_evaluations": proposer.evaluations,
        "bayes_evaluate_s": evaluate_s,
        "bayes_found_grid_best": found_best,
        "bayes_evals_to_best": evals_to_best,
        "proposer_overhead_s": propose_s,
        "proposer_overhead_per_batch_s": propose_s / batches,
        "batches": batches,
        "reload_tick_s": tick_s,
    })
    assert proposer.evaluations <= space.size
    assert batches > 0


def test_dse_moo_frontier_search():
    """MOO strategies: evals-to-frontier vs grid, hypervolume cost/point."""

    from repro.dse import objective_vector, record_frontier
    from repro.dse.moo import EHVIProposer, ParEGOProposer, hypervolume

    space, suite = _space_and_suite()
    objectives = ("fidelity", "runtime")

    grid_runner = DSERunner(space, circuits=suite)
    start = time.perf_counter()
    grid = grid_runner.run()
    grid_s = time.perf_counter() - start
    true_frontier = {
        tuple(sorted(record.as_row().items()))
        for record in record_frontier(grid.evaluated, objectives)}

    def frontier_of(records):
        return {tuple(sorted(record.as_row().items()))
                for record in record_frontier(records, objectives)}

    summary = {}
    for label, proposer in (
            ("ehvi", EHVIProposer(space, seed=7, batch_size=3)),
            ("parego", ParEGOProposer(space, seed=7, batch_size=3))):
        runner = DSERunner(space, circuits=suite)
        propose_s = 0.0
        evaluate_s = 0.0
        batches = 0
        all_records = []
        evals_to_frontier = None
        while True:
            start = time.perf_counter()
            batch = proposer.next_batch()
            propose_s += time.perf_counter() - start
            if batch is None:
                break
            start = time.perf_counter()
            records = runner.evaluate(list(batch.points))
            evaluate_s += time.perf_counter() - start
            all_records.extend(records)
            start = time.perf_counter()
            proposer.ingest(batch, [objective_vector(r, objectives)
                                    for r in records])
            propose_s += time.perf_counter() - start
            batches += 1
            if evals_to_frontier is None and \
                    frontier_of(all_records) == true_frontier:
                evals_to_frontier = proposer.evaluations
        summary[label] = {
            "evaluations": proposer.evaluations,
            "evals_to_frontier": evals_to_frontier,
            "found_frontier": evals_to_frontier is not None,
            "batches": batches,
            "proposer_overhead_s": propose_s,
            "proposer_overhead_per_batch_s": propose_s / batches,
            "evaluate_s": evaluate_s,
        }

    # Exact hypervolume cost per frontier point: the full grid cloud in
    # 2-D (the sweep) and 3-D (the WFG recursion).
    hv_costs = {}
    for dim_label, objs in (("2d", ("fidelity", "runtime")),
                            ("3d", ("fidelity", "runtime",
                                    "shuttles_per_2q"))):
        vectors = [objective_vector(r, objs) for r in grid.evaluated]
        reference = tuple(min(v[d] for v in vectors) - 1.0
                          for d in range(len(objs)))
        start = time.perf_counter()
        rounds = 50
        for _ in range(rounds):
            value = hypervolume(vectors, reference)
        per_call = (time.perf_counter() - start) / rounds
        hv_costs[dim_label] = {
            "points": len(vectors),
            "hypervolume": value,
            "wall_s_per_call": per_call,
            "wall_s_per_point": per_call / len(vectors),
        }

    print()
    print(f"Multi-objective search (scale={bench_scale()}, "
          f"grid = {space.size} points, frontier = {len(true_frontier)}):")
    print(f"  grid                 : {space.size:4d} evaluations "
          f"in {grid_s:6.3f} s")
    for label, stats in summary.items():
        found = (f"frontier recovered after {stats['evals_to_frontier']}"
                 if stats["found_frontier"] else "frontier NOT recovered")
        print(f"  {label:21s}: {stats['evaluations']:4d} evaluations "
              f"in {stats['evaluate_s']:6.3f} s, {found}; "
              f"proposer {stats['proposer_overhead_per_batch_s'] * 1e3:6.2f} "
              f"ms/batch")
    for dim_label, stats in hv_costs.items():
        print(f"  hypervolume {dim_label}       : "
              f"{stats['wall_s_per_call'] * 1e6:8.1f} us/call over "
              f"{stats['points']} points "
              f"({stats['wall_s_per_point'] * 1e6:6.2f} us/point)")
    record_bench("moo", "frontier_search", {
        "grid_points": space.size,
        "grid_s": grid_s,
        "true_frontier_points": len(true_frontier),
        "strategies": summary,
        "hypervolume": hv_costs,
    })
    for stats in summary.values():
        assert stats["evaluations"] <= space.size
        assert stats["batches"] > 0


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-s", "-q", "--benchmark-disable"]))

"""Figure 6: trap-sizing study on the linear (L6-style) topology.

Regenerates and prints every panel's series:

* 6a  application runtime versus trap capacity,
* 6b  QFT computation/communication time breakdown,
* 6c-e application fidelity versus trap capacity,
* 6f  maximum motional-mode energy versus trap capacity,
* 6g  Supremacy MS-gate error split (motional versus background),

and times one representative compile+simulate unit (QFT at the mid-sweep
capacity) with pytest-benchmark.
"""

import pytest

from _common import bench_capacities, bench_scale, bench_suite, print_series, reference_capacity

from repro.toolflow import ArchitectureConfig, figure6, run_experiment


def _base_config():
    topology = "L6" if bench_scale() == "paper" else "L4"
    return ArchitectureConfig(topology=topology, gate="FM", reorder="GS")


@pytest.fixture(scope="module")
def fig6_bundle():
    return figure6(bench_suite(), capacities=bench_capacities(), base=_base_config())


def test_fig6_series(benchmark, fig6_bundle):
    suite = bench_suite()
    config = _base_config().with_updates(trap_capacity=reference_capacity())
    benchmark(run_experiment, suite["QFT"], config)

    capacities = fig6_bundle["capacities"]
    print()
    print(f"Figure 6 (scale={bench_scale()}, config={_base_config().name})")
    print_series("Fig 6a: application runtime (s)", capacities, fig6_bundle["runtime_s"])
    print_series("Fig 6b: QFT time breakdown (s)", capacities, fig6_bundle["qft_breakdown"])
    print_series("Fig 6c-e: application fidelity", capacities, fig6_bundle["fidelity"])
    print_series("Fig 6f: max motional energy (quanta)", capacities,
                 fig6_bundle["max_motional_energy"])
    print_series("Fig 6g: Supremacy MS-gate error contribution", capacities,
                 fig6_bundle["supremacy_error"])

    # Shape checks (the paper's qualitative claims).
    fidelity = fig6_bundle["fidelity"]
    assert min(fidelity["BV"]) > 0.9, "BV stays reliable at every capacity"
    assert max(fidelity["QFT"]) < min(fidelity["BV"]), "QFT is far less reliable than BV"
    energy = fig6_bundle["max_motional_energy"]
    assert energy["QFT"][0] > energy["QFT"][-1], "heating drops as capacity grows"
    breakdown = fig6_bundle["qft_breakdown"]
    assert breakdown["computation_s"][-1] > breakdown["computation_s"][0], \
        "QFT computation time grows with capacity (longer FM gates)"
    error = fig6_bundle["supremacy_error"]
    assert all(m > b for m, b in zip(error["motional"], error["background"])), \
        "motional error dominates background error (Fig 6g)"

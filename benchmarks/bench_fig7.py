"""Figure 7: communication topology study (linear versus grid).

Regenerates and prints runtime and fidelity for every application on both
topologies, plus the SquareRoot motional-heating panel (7g), and times one
representative compile+simulate unit on the grid topology.
"""

import pytest

from _common import bench_capacities, bench_scale, bench_suite, print_series, reference_capacity

from repro.analysis.series import flatten_nested_series
from repro.toolflow import ArchitectureConfig, figure7, run_experiment


def _topologies():
    return ("L6", "G2x3") if bench_scale() == "paper" else ("L4", "G2x2")


@pytest.fixture(scope="module")
def fig7_bundle():
    return figure7(bench_suite(), capacities=bench_capacities(),
                   topologies=_topologies(), base=ArchitectureConfig(gate="FM", reorder="GS"))


def test_fig7_series(benchmark, fig7_bundle):
    suite = bench_suite()
    grid = _topologies()[1]
    config = ArchitectureConfig(topology=grid, trap_capacity=reference_capacity())
    benchmark(run_experiment, suite["SquareRoot"], config)

    capacities = fig7_bundle["capacities"]
    linear, grid = fig7_bundle["topologies"]
    print()
    print(f"Figure 7 (scale={bench_scale()}, topologies={linear} vs {grid})")
    print_series("Fig 7a-f: runtime (s)", capacities,
                 flatten_nested_series(fig7_bundle["runtime_s"]))
    print_series("Fig 7a-f: fidelity", capacities,
                 flatten_nested_series(fig7_bundle["fidelity"]))
    print_series("Fig 7g: SquareRoot motional heating (quanta)", capacities,
                 fig7_bundle["squareroot_heating"])

    # Shape checks.  The contrast grows dramatically at paper scale (see
    # EXPERIMENTS.md); at the reduced default scale we only require that the
    # grid is competitive for SquareRoot and the linear topology for QFT.
    sq = fig7_bundle["fidelity"]["SquareRoot"]
    sq_ratio = max(g / max(l, 1e-300) for g, l in zip(sq[grid], sq[linear]))
    qft = fig7_bundle["fidelity"]["QFT"]
    qft_ratio = max(l / max(g, 1e-300) for l, g in zip(qft[linear], qft[grid]))
    print(f"\nSquareRoot grid/linear best fidelity ratio: {sq_ratio:.2f}")
    print(f"QFT linear/grid best fidelity ratio: {qft_ratio:.2f}")
    assert sq_ratio > 0.8, "the grid topology is competitive for SquareRoot (Fig 7f)"
    assert qft_ratio > 0.8, "the linear topology is competitive for QFT (Fig 7e)"
    heating = fig7_bundle["squareroot_heating"]
    assert all(value >= 0.0 for series in heating.values() for value in series)

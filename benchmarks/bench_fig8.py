"""Figure 8: microarchitecture study (gate implementation x chain reordering).

Regenerates and prints, for every application, the fidelity and runtime of the
eight combinations {AM1, AM2, PM, FM} x {GS, IS} across the capacity sweep on
the linear topology, and times the gate-variant fan-out (one compilation,
four simulations) for QAOA.
"""

import pytest

from _common import bench_capacities, bench_scale, bench_suite, print_series, reference_capacity

from repro.toolflow import ArchitectureConfig, figure8, run_gate_variants


def _base_config():
    topology = "L6" if bench_scale() == "paper" else "L4"
    return ArchitectureConfig(topology=topology)


@pytest.fixture(scope="module")
def fig8_bundle():
    return figure8(bench_suite(), capacities=bench_capacities(), base=_base_config())


def test_fig8_series(benchmark, fig8_bundle):
    suite = bench_suite()
    config = _base_config().with_updates(trap_capacity=reference_capacity())
    benchmark(run_gate_variants, suite["QAOA"], config)

    capacities = fig8_bundle["capacities"]
    print()
    print(f"Figure 8 (scale={bench_scale()}, combos={fig8_bundle['combos']})")
    for name in suite:
        print_series(f"Fig 8 fidelity: {name}", capacities, fig8_bundle["fidelity"][name])
        print_series(f"Fig 8 runtime (s): {name}", capacities, fig8_bundle["runtime_s"][name])

    fidelity = fig8_bundle["fidelity"]
    # GS is never worse than IS for the communication-heavy applications.
    for app in ("QFT", "SquareRoot"):
        gs = fidelity[app]["FM-GS"]
        is_ = fidelity[app]["FM-IS"]
        assert all(g >= i for g, i in zip(gs, is_)), f"GS >= IS for {app}"
    # QAOA needs no reordering, so GS and IS coincide.
    assert fidelity["QAOA"]["FM-GS"] == pytest.approx(fidelity["QAOA"]["FM-IS"])
    # FM beats AM1 for the long-range QFT.
    assert all(f >= a for f, a in zip(fidelity["QFT"]["FM-GS"], fidelity["QFT"]["AM1-GS"]))
    # AM2 is at least as fast as FM for the nearest-neighbour QAOA.
    runtime = fig8_bundle["runtime_s"]["QAOA"]
    assert all(a <= f * 1.05 for a, f in zip(runtime["AM2-GS"], runtime["FM-GS"]))

"""Observability overhead benchmark: tracing must be free when disabled.

The instrumentation contract of :mod:`repro.obs` (see
``docs/observability.md``): with tracing disabled -- the default -- every
``span()`` call site reduces to one global load, one ``is None`` test and a
shared no-op object, so instrumenting the pipeline costs nothing measurable.
This bench pins that contract against the same Figure 8-style sweep
``bench_pipeline_scale.py`` times (96 design points at small scale):

1. time the sweep as shipped (tracing disabled);
2. run it once traced to count the spans the pipeline actually emits;
3. time the disabled ``with span(...)`` fast path in isolation and project
   its cost onto that span count.

The projected disabled-mode overhead must stay **under 1% of the sweep's
wall time** -- the CI smoke that keeps future instrumentation (more spans,
or a fatter disabled path) from taxing every untraced run.  The traced
sweep is also timed, for the record: tracing is allowed to cost, disabled
instrumentation is not.
"""

from __future__ import annotations

import sys

import pytest

from _common import bench_scale, bench_suite, record_bench

from repro.obs import disable_tracing, enable_tracing, span
from repro.toolflow import ArchitectureConfig, ProgramCache, sweep_microarchitecture

SWEEP_GATES = ("AM1", "AM2", "PM", "FM")
SWEEP_REORDERS = ("GS", "IS")

#: Disabled span() call sites timed per measurement pass.
DISABLED_CALLS = 100_000


def _best_of(fn, repeats: int = 3) -> float:
    from time import perf_counter

    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def _sweep_spec():
    if bench_scale() == "paper":
        return "L6", (18, 26)
    return "L4", (6, 8)


def test_disabled_tracing_overhead(benchmark):
    """Projected disabled-span cost on the 96-point sweep: < 1% of wall time."""

    suite = bench_suite()
    topology, capacities = _sweep_spec()
    base = ArchitectureConfig(topology=topology)

    def run_sweep():
        return sweep_microarchitecture(suite, capacities=capacities,
                                       gates=SWEEP_GATES,
                                       reorders=SWEEP_REORDERS,
                                       base=base, cache=ProgramCache())

    points = len(run_sweep())  # warm-up (and the point count)
    sweep_s = _best_of(run_sweep)

    # One traced pass counts the spans the pipeline emits for this sweep.
    enable_tracing()
    try:
        traced_s = _best_of(run_sweep, repeats=1)
    finally:
        tracer = disable_tracing()
    span_count = len(tracer.spans)

    # The disabled fast path, measured at a representative call site: a
    # `with` block and an attribute keyword, exactly what the pipeline's
    # instrumentation pays per span when tracing is off.
    def disabled_pass():
        for _ in range(DISABLED_CALLS):
            with span("bench.noop", x=1):
                pass

    per_call_s = _best_of(disabled_pass) / DISABLED_CALLS
    overhead_s = per_call_s * span_count
    fraction = overhead_s / sweep_s

    print()
    print(f"Disabled-tracing overhead (scale={bench_scale()}, "
          f"{points} design points):")
    print(f"  sweep wall time      : {sweep_s * 1e3:8.1f} ms (untraced)")
    print(f"  traced sweep         : {traced_s * 1e3:8.1f} ms "
          f"({span_count} spans recorded)")
    print(f"  disabled span() call : {per_call_s * 1e9:8.1f} ns")
    print(f"  projected overhead   : {overhead_s * 1e6:8.1f} us "
          f"({100 * fraction:.4f}% of the sweep)")
    record_bench("obs", "disabled_overhead", {
        "points": points,
        "sweep_s": sweep_s,
        "traced_sweep_s": traced_s,
        "spans": span_count,
        "disabled_call_ns": per_call_s * 1e9,
        "projected_overhead_s": overhead_s,
        "overhead_fraction": fraction,
    })

    assert span_count > 0, "the traced sweep recorded no spans"
    assert fraction < 0.01, (
        f"disabled tracing costs {100 * fraction:.3f}% of the sweep "
        f"({per_call_s * 1e9:.0f} ns x {span_count} spans); the no-op "
        f"fast path has regressed")

    benchmark(disabled_pass)


def test_timeline_fold_and_profile_cost(benchmark, tmp_path):
    """Time the aggregation engines behind ``dse top`` and ``repro profile``.

    These run *outside* the measured pipeline (in the monitor process, or
    post-hoc on a trace file), so they carry no overhead budget -- but they
    are on the interactive path of the live dashboard, and their costs are
    perf history worth tracking.  The one hard bound pinned here: folding a
    dashboard-sized event backlog must stay comfortably inside the ``dse
    top`` refresh interval.
    """

    import json

    from repro.dse.dispatch import LeaseClock, WorkerTelemetry, read_telemetry
    from repro.obs import build_profile, enable_tracing
    from repro.obs.timeline import fold_timeline

    # A synthetic 8-worker fleet history, fake-clock driven.
    moment = [1000.0]
    clock = LeaseClock(now_fn=lambda: moment[0])
    logs = [WorkerTelemetry(tmp_path, f"w{i}", clock=clock) for i in range(8)]
    rounds = 2_000 if bench_scale() == "paper" else 250
    for i in range(rounds):
        for k, log in enumerate(logs):
            moment[0] += 0.125
            log.emit("done", work=f"s{i}-{k}", points=3, replayed=0,
                     wall_s=0.1, counters={"cache.hits": 2, "cache.misses": 1})
    events = read_telemetry(tmp_path)
    fold_s = _best_of(lambda: fold_timeline(events, bucket_s=5.0))

    # Span records from a real traced (single-point) compile+sim run.
    suite = bench_suite()
    topology, capacities = _sweep_spec()
    enable_tracing()
    try:
        sweep_microarchitecture(suite, capacities=capacities[:1],
                                gates=SWEEP_GATES[:1], reorders=("GS",),
                                base=ArchitectureConfig(topology=topology),
                                cache=ProgramCache())
    finally:
        tracer = disable_tracing()
    spans = [item.to_dict(tracer.origin_s) for item in tracer.spans]
    profile_s = _best_of(lambda: build_profile(spans))
    profile = build_profile(spans)
    frame_bytes = len(json.dumps(profile).encode("utf-8"))

    print()
    print(f"Timeline/profile aggregation (scale={bench_scale()}):")
    print(f"  fold_timeline        : {fold_s * 1e3:8.2f} ms "
          f"({len(events)} events)")
    print(f"  build_profile        : {profile_s * 1e3:8.2f} ms "
          f"({len(spans)} spans, {frame_bytes} JSON bytes)")
    record_bench("obs", "aggregation", {
        "timeline_events": len(events),
        "timeline_fold_s": fold_s,
        "timeline_events_per_s": len(events) / fold_s if fold_s else 0.0,
        "profile_spans": len(spans),
        "profile_build_s": profile_s,
    })

    # A dashboard refresh folds the full backlog; it must fit well inside
    # the default 1 s `dse top` interval even for a large history.
    assert fold_s < 0.5, (
        f"fold_timeline took {fold_s:.3f}s for {len(events)} events; the "
        f"live dashboard refresh budget is blown")

    benchmark(lambda: fold_timeline(events, bucket_s=5.0))


def test_worker_tracing_and_merge_cost(benchmark, tmp_path):
    """Time distributed tracing: traced pool workers and the shard merger.

    Two perf-history sections for the fleet-tracing layer.
    ``worker_tracing`` compares a ``jobs=2`` sweep untraced vs traced --
    the traced run adds per-task span shipping through the pool result
    tuple, allowed to cost but tracked so a regression (say, shipping
    spans per *span* instead of per task) shows up in ``bench diff``.
    ``shard_merge`` times :func:`read_trace_shards` + the deterministic
    merge over a synthetic many-worker shard directory -- the post-run
    step of every traced dispatch, and the interactive cost of
    ``repro trace merge``.
    """

    import json

    from repro.obs import write_merged_trace
    from repro.obs.distributed import SHARD_SCHEMA_VERSION, TRACE_DIR
    from repro.toolflow import SweepTask
    from repro.toolflow.parallel import run_tasks

    suite = bench_suite()
    topology, capacities = _sweep_spec()
    base = ArchitectureConfig(topology=topology)
    circuit = next(iter(suite.values()))
    tasks = [SweepTask(circuit, base.with_updates(trap_capacity=cap),
                       gates=SWEEP_GATES)
             for cap in capacities]

    untraced_s = _best_of(lambda: run_tasks(tasks, jobs=2), repeats=2)

    def traced_run():
        enable_tracing()
        try:
            run_tasks(tasks, jobs=2)
        finally:
            tracer = disable_tracing()
        return tracer

    traced_s = _best_of(lambda: traced_run(), repeats=2)
    shipped = len(traced_run().foreign)

    # A synthetic fleet shard directory: 8 workers x `spans_per` records.
    spans_per = 2_000 if bench_scale() == "paper" else 250
    for worker in range(8):
        lines = []
        for i in range(spans_per):
            lines.append(json.dumps({
                "name": "sweep.task", "span_id": i + 1,
                "parent_id": None, "parent_ref": "1:1",
                "pid": 100 + worker, "tid": 1,
                "epoch_start_s": 1000.0 + i * 0.01, "duration_s": 0.01,
                "attrs": {"point": i}, "trace_id": "bench",
                "schema_version": SHARD_SCHEMA_VERSION,
                "owner": f"w{worker}",
            }, sort_keys=True))
        directory = tmp_path / "store" / TRACE_DIR
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"w{worker}.jsonl").write_text("\n".join(lines) + "\n")
    merged = tmp_path / "merged.json"
    merge_s = _best_of(
        lambda: write_merged_trace(tmp_path / "store", merged), repeats=2)
    shard_spans = 8 * spans_per

    print()
    print(f"Distributed tracing (scale={bench_scale()}):")
    print(f"  jobs=2 sweep         : {untraced_s * 1e3:8.1f} ms untraced, "
          f"{traced_s * 1e3:8.1f} ms traced ({shipped} spans shipped)")
    print(f"  shard merge          : {merge_s * 1e3:8.2f} ms "
          f"({shard_spans} spans across 8 shards)")
    record_bench("obs", "worker_tracing", {
        "tasks": len(tasks),
        "untraced_sweep_s": untraced_s,
        "traced_sweep_s": traced_s,
        "spans_shipped": shipped,
    })
    record_bench("obs", "shard_merge", {
        "shards": 8,
        "shard_spans": shard_spans,
        "merge_s": merge_s,
        "merge_spans_per_s": shard_spans / merge_s if merge_s else 0.0,
    })

    assert shipped > 0, "the traced pool sweep shipped no spans home"
    benchmark(lambda: write_merged_trace(tmp_path / "store", merged))


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-s", "-q", "--benchmark-disable"]))

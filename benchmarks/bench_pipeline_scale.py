"""Pipeline-scale benchmark: compile, simulate and full-sweep wall time.

Records the throughput trajectory of the fast-path rewrite along four axes:

1. **Per-app compile and simulate time** on the largest suite circuits,
   compared against ``data/seed_baseline.json`` (timings of the seed
   implementation recorded on the original machine).
2. **Engine A/B**: the fused single-pass engine versus the verbatim seed
   engine (``_legacy_engine.py``) on identical compiled programs -- an
   in-situ comparison that is valid on any machine, and doubles as a
   bit-identical cross-check of every headline metric.
3. **Figure 8-style end-to-end sweep** (capacity x reorder x gate over the
   full suite): serial seed baseline versus the optimized pipeline, plus the
   warm-cache re-sweep that shows what the program memo buys repeated
   exploration.  At paper scale on the baseline machine the optimized sweep
   must be >= 3x the recorded seed time.
4. **Operation memory**: slotted versus dict-backed per-op footprint.
5. **Batched variant fan-out**: the batch engine (one struct-of-arrays plan
   per program, one timeline walk per distinct duration vector) versus the
   serial per-variant loop on the Figure 8-style 96-point sweep's simulate
   share, plus a fidelity/heating ablation fan-out where every variant
   shares one duration vector.  Bit-identity to the serial engine is
   cross-checked on every point; CI runs this as the batch perf smoke.

Default scale is small; set ``REPRO_BENCH_SCALE=paper`` for the full Table II
suite (the configuration the recorded baseline uses).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import pytest

import _legacy_engine
from _common import bench_scale, bench_suite, record_bench

from repro.io.fingerprint import result_fingerprint
from repro.isa.operations import GateOp
from repro.sim.engine import simulate
from repro.toolflow import ArchitectureConfig, ProgramCache, sweep_microarchitecture
from repro.toolflow.runner import compile_for

BASELINE_PATH = Path(__file__).parent / "data" / "seed_baseline.json"

#: Sweep spec mirroring the recorded seed baseline: full suite, two
#: capacities, both reorder methods, all four gate implementations.
SWEEP_GATES = ("AM1", "AM2", "PM", "FM")
SWEEP_REORDERS = ("GS", "IS")


def _sweep_spec() -> Tuple[str, Tuple[int, int]]:
    if bench_scale() == "paper":
        return "L6", (18, 26)
    return "L4", (6, 8)


def _baseline() -> Optional[dict]:
    if not BASELINE_PATH.exists():
        return None
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def _baseline_comparable(baseline: Optional[dict]) -> bool:
    """The recorded timings are only meaningful on the machine that made them."""

    return (baseline is not None and bench_scale() == "paper"
            and baseline.get("machine") == platform.platform())


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------------- #
def test_compile_and_simulate_units(benchmark):
    """Per-app compile/simulate wall time at the reference design point."""

    suite = bench_suite()
    topology, capacities = _sweep_spec()
    config = ArchitectureConfig(topology=topology,
                                trap_capacity=capacities[-1] if bench_scale() == "small" else 22)
    baseline = _baseline()
    comparable = _baseline_comparable(baseline)

    print()
    print(f"Per-app pipeline timings (scale={bench_scale()}, {config.name}):")
    header = f"  {'app':12s} {'compile':>10s} {'simulate':>10s}"
    if comparable:
        header += f" {'seed comp.':>11s} {'seed sim.':>10s}"
    print(header)
    timings = {}
    for name, circuit in suite.items():
        compile_s = _best_of(lambda: compile_for(circuit, config))
        program, device = compile_for(circuit, config)
        simulate_s = _best_of(lambda: simulate(program, device))
        timings[name] = {"compile_s": compile_s, "simulate_s": simulate_s}
        line = f"  {name:12s} {compile_s * 1e3:8.1f}ms {simulate_s * 1e3:8.1f}ms"
        if comparable:
            seed_c = baseline["compile_s"].get(name)
            seed_s = baseline["simulate_s"].get(name)
            if seed_c and seed_s:
                line += f" {seed_c / compile_s:9.2f}x {seed_s / simulate_s:8.2f}x"
        print(line)
    record_bench("pipeline", "compile_simulate",
                 {"config": config.name, "per_app": timings})

    qft = suite["QFT"]
    benchmark(lambda: compile_for(qft, config))


def test_engine_fused_vs_legacy(benchmark):
    """Fused engine vs. the seed three-pass engine on identical programs."""

    suite = bench_suite()
    topology, capacities = _sweep_spec()
    config = ArchitectureConfig(topology=topology, trap_capacity=capacities[-1])
    compiled = {name: compile_for(circuit, config) for name, circuit in suite.items()}

    # Bit-identical cross-check on every program.
    for name, (program, device) in compiled.items():
        fused = simulate(program, device)
        legacy = _legacy_engine.simulate(program, device)
        assert result_fingerprint(fused) == result_fingerprint(legacy), (
            f"fused engine diverged from the seed engine on {name}"
        )

    def run_all(engine):
        for program, device in compiled.values():
            engine(program, device)

    legacy_s = _best_of(lambda: run_all(_legacy_engine.simulate))
    fused_s = _best_of(lambda: run_all(simulate))
    print()
    print(f"Simulation engine A/B over the suite (scale={bench_scale()}):")
    print(f"  legacy 3-pass engine : {legacy_s * 1e3:8.1f} ms")
    print(f"  fused  1-pass engine : {fused_s * 1e3:8.1f} ms   "
          f"({legacy_s / fused_s:.2f}x)")
    record_bench("pipeline", "engine_ab",
                 {"legacy_s": legacy_s, "fused_s": fused_s,
                  "speedup": legacy_s / fused_s})
    assert fused_s <= legacy_s, "fused engine slower than the seed engine"

    program, device = compiled["QFT"]
    benchmark(lambda: simulate(program, device))


def test_fig8_sweep_end_to_end(benchmark):
    """Figure 8-style sweep: optimized pipeline vs. the recorded seed run."""

    suite = bench_suite()
    topology, capacities = _sweep_spec()
    base = ArchitectureConfig(topology=topology)

    def run_sweep(cache):
        return sweep_microarchitecture(suite, capacities=capacities,
                                       gates=SWEEP_GATES, reorders=SWEEP_REORDERS,
                                       base=base, cache=cache)

    cold_s = _best_of(lambda: run_sweep(ProgramCache()))
    records = run_sweep(ProgramCache())

    warm_cache = ProgramCache()
    run_sweep(warm_cache)
    warm_s = _best_of(lambda: run_sweep(warm_cache))

    baseline = _baseline()
    comparable = _baseline_comparable(baseline)
    print()
    print(f"Fig. 8-style sweep (scale={bench_scale()}, {len(records)} design points):")
    print(f"  optimized, cold cache: {cold_s:8.3f} s")
    print(f"  optimized, warm cache: {warm_s:8.3f} s   (memoized re-sweep)")
    record_bench("pipeline", "fig8_sweep",
                 {"points": len(records), "cold_s": cold_s, "warm_s": warm_s})
    if comparable:
        seed_s = baseline["fig8_sweep_s"]
        speedup = seed_s / cold_s
        print(f"  seed implementation  : {seed_s:8.3f} s   "
              f"(recorded; speedup {speedup:.2f}x cold, {seed_s / warm_s:.2f}x warm)")
        assert speedup >= 3.0, (
            f"end-to-end sweep speedup {speedup:.2f}x fell below the 3x target"
        )
    assert warm_s < cold_s, "program cache should make re-sweeps cheaper"

    benchmark.pedantic(lambda: run_sweep(ProgramCache()), rounds=2, iterations=1)


def test_batch_fanout(benchmark):
    """Batch engine vs. the serial per-variant loop on the Fig-8 fan-out.

    Measures only the *simulate share* of the sweep: every (app, capacity,
    reorder) program is compiled once up front, then simulated under all four
    gate implementations -- serially (one full `simulate()` per variant),
    batched cold (plans and timelines built on the fly) and batched warm
    (plans cached by a previous sweep over the same programs, as in any
    repeated or resumed DSE run).  A second section measures a model-ablation
    fan-out where all variants share one duration vector.  The recorded
    ``batch_fanout`` schema is documented in ``_common.py``.
    """

    from dataclasses import replace

    from repro.sim.batch import (batch_plan, simulate_gate_variants,
                                 simulate_model_variants)

    suite = bench_suite()
    topology, capacities = _sweep_spec()
    compiled = []
    for reorder in SWEEP_REORDERS:
        for capacity in capacities:
            config = ArchitectureConfig(topology=topology, trap_capacity=capacity,
                                        reorder=reorder)
            for circuit in suite.values():
                compiled.append(compile_for(circuit, config))
    num_points = len(compiled) * len(SWEEP_GATES)

    # Bit-identity cross-check on every design point (and plan warm-up).
    for program, device in compiled:
        serial = [simulate(program, device.with_gate(g)) for g in SWEEP_GATES]
        batched = simulate_gate_variants(program, device, SWEEP_GATES)
        for gate, s, b in zip(SWEEP_GATES, serial, batched):
            assert result_fingerprint(s) == result_fingerprint(b), (
                f"batch engine diverged from serial on {program.circuit_name} "
                f"({device.name or device.topology.name}, {gate})"
            )

    def reset_plans():
        for program, _ in compiled:
            program._batch_plan = None

    def run_serial():
        for program, device in compiled:
            for gate in SWEEP_GATES:
                simulate(program, device.with_gate(gate))

    def run_batched():
        for program, device in compiled:
            simulate_gate_variants(program, device, SWEEP_GATES)

    def run_batched_cold():
        reset_plans()
        run_batched()

    serial_s = _best_of(run_serial)
    cold_s = _best_of(run_batched_cold)
    run_batched()  # plans are warm again from here on
    warm_s = _best_of(run_batched)

    dedup = {"timelines_built": 0, "timeline_hits": 0, "variants": 0}
    for program, _ in compiled:
        stats = batch_plan(program).stats()
        dedup["timelines_built"] += stats["timelines_built"]
        dedup["timeline_hits"] += stats["timeline_hits"]
        dedup["variants"] += stats["variants"]
    hit_rate = dedup["timeline_hits"] / max(1, dedup["timeline_hits"]
                                            + dedup["timelines_built"])

    # Ablation fan-out: heating/fidelity parameter vectors under one gate --
    # a single duration vector shared by every variant (plans rebuilt, so
    # this is a cold measurement).
    program, device = compiled[0]
    models = []
    for i in range(8):
        fid = replace(device.model.fidelity,
                      background_heating_rate=2e-7 * (i + 1))
        models.append(replace(device.model, fidelity=fid))
    for i in range(8):
        heat = replace(device.model.heating, background_rate=4e-5 * (i + 1))
        models.append(replace(device.model, heating=heat))
    variants = [replace(device, model=model, name="") for model in models]

    def run_ablation_serial():
        for variant in variants:
            simulate(program, variant)

    def run_ablation_batched():
        program._batch_plan = None
        simulate_model_variants(program, device, models)

    ablation_serial_s = _best_of(run_ablation_serial)
    ablation_batched_s = _best_of(run_ablation_batched)

    print()
    print(f"Batched variant fan-out (scale={bench_scale()}, {num_points} points, "
          f"{len(compiled)} programs):")
    print(f"  serial per-variant loop : {serial_s * 1e3:8.1f} ms "
          f"({serial_s / num_points * 1e6:7.1f} us/variant)")
    print(f"  batched, cold plans     : {cold_s * 1e3:8.1f} ms "
          f"({cold_s / num_points * 1e6:7.1f} us/variant, "
          f"{serial_s / cold_s:.2f}x)")
    print(f"  batched, warm plans     : {warm_s * 1e3:8.1f} ms "
          f"({warm_s / num_points * 1e6:7.1f} us/variant, "
          f"{serial_s / warm_s:.2f}x)")
    print(f"  timeline dedup          : {dedup['timelines_built']} built, "
          f"{dedup['timeline_hits']} hits ({100 * hit_rate:.1f}% hit rate)")
    print(f"  ablation fan-out (x{len(variants)}): serial "
          f"{ablation_serial_s * 1e3:6.1f} ms vs batched "
          f"{ablation_batched_s * 1e3:6.1f} ms "
          f"({ablation_serial_s / ablation_batched_s:.2f}x)")

    record_bench("pipeline", "batch_fanout", {
        "points": num_points,
        "programs": len(compiled),
        "gates": list(SWEEP_GATES),
        "serial_s": serial_s,
        "batched_cold_s": cold_s,
        "batched_warm_s": warm_s,
        "speedup_cold": serial_s / cold_s,
        "speedup_warm": serial_s / warm_s,
        "per_variant_us": {
            "serial": serial_s / num_points * 1e6,
            "batched_cold": cold_s / num_points * 1e6,
            "batched_warm": warm_s / num_points * 1e6,
        },
        "dedup": dict(dedup, hit_rate=hit_rate),
        "ablation": {
            "variants": len(variants),
            "serial_s": ablation_serial_s,
            "batched_s": ablation_batched_s,
            "speedup": ablation_serial_s / ablation_batched_s,
        },
    })

    # CI perf smoke: the batched sweep must never be slower than serial --
    # a silent fallback-to-serial (or a plan-construction regression) fails
    # here long before it would show up in wall-clock dashboards.
    assert cold_s <= serial_s, (
        f"cold batched fan-out ({cold_s * 1e3:.1f} ms) slower than the serial "
        f"loop ({serial_s * 1e3:.1f} ms)")
    assert warm_s <= cold_s * 1.1, "warm batched pass slower than cold"
    assert ablation_batched_s <= ablation_serial_s, (
        "batched ablation fan-out slower than the serial loop")

    benchmark(run_batched)


def test_operation_memory_footprint():
    """Slotted ops vs. an equivalent dict-backed op (the seed layout)."""

    @dataclass(frozen=True)
    class DictGateOp:  # the seed's layout: no __slots__, per-instance __dict__
        op_id: int
        dependencies: tuple
        trap: str
        ions: tuple
        qubits: tuple
        name: str
        chain_length: int
        ion_distance: int

    slotted = GateOp(op_id=1, dependencies=(0,), trap="t0", ions=(1, 2),
                     qubits=(0, 1), name="cx", chain_length=12, ion_distance=3)
    dict_op = DictGateOp(op_id=1, dependencies=(0,), trap="t0", ions=(1, 2),
                         qubits=(0, 1), name="cx", chain_length=12, ion_distance=3)
    slotted_bytes = sys.getsizeof(slotted)
    dict_bytes = sys.getsizeof(dict_op) + sys.getsizeof(dict_op.__dict__)
    print()
    print("Per-operation memory:")
    print(f"  slotted GateOp     : {slotted_bytes:4d} B")
    print(f"  dict-backed GateOp : {dict_bytes:4d} B   "
          f"({dict_bytes / slotted_bytes:.1f}x larger)")
    record_bench("pipeline", "op_memory",
                 {"slotted_bytes": slotted_bytes, "dict_bytes": dict_bytes})
    assert not hasattr(slotted, "__dict__")
    assert slotted_bytes < dict_bytes


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-s", "-q", "--benchmark-disable"]))

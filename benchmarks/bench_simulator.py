"""Toolflow microbenchmarks: simulator throughput.

Times the three-pass simulation engine on a pre-compiled program, with and
without the computation/communication breakdown pass.
"""

import pytest

from _common import bench_suite, reference_capacity

from repro.compiler import compile_circuit
from repro.sim import simulate
from repro.toolflow import ArchitectureConfig


@pytest.fixture(scope="module")
def compiled_qft():
    circuit = bench_suite()["QFT"]
    config = ArchitectureConfig(topology="L6", trap_capacity=reference_capacity())
    device = config.build_device(circuit.num_qubits)
    return compile_circuit(circuit, device), device


def test_simulate_qft(benchmark, compiled_qft):
    program, device = compiled_qft
    result = benchmark(simulate, program, device)
    assert 0.0 <= result.fidelity <= 1.0


def test_simulate_qft_no_breakdown(benchmark, compiled_qft):
    program, device = compiled_qft
    result = benchmark(lambda: simulate(program, device, with_breakdown=False))
    assert result.duration > 0.0


def test_simulate_qft_with_timeline(benchmark, compiled_qft):
    program, device = compiled_qft
    result = benchmark(lambda: simulate(program, device, keep_timeline=True))
    assert len(result.timeline) == len(program)


def test_simulate_gate_variants(benchmark, compiled_qft):
    """Re-simulating under a different gate implementation must not recompile."""

    program, device = compiled_qft
    am1 = device.with_gate("AM1")
    result = benchmark(simulate, program, am1)
    assert result.duration > 0.0

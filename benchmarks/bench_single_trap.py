"""Baseline: single-trap architecture versus the QCCD design (Section III.A).

Not a numbered figure in the paper, but the motivating comparison: a single
long chain needs no shuttling yet its per-gate error grows with the chain
length, which is why the QCCD architecture exists.  Prints a small sweep and
times the baseline simulator.
"""

import pytest

from _common import bench_scale

from repro.apps import qft_circuit
from repro.baselines import simulate_single_trap, single_trap_sweep


def _sizes():
    return (16, 32, 48, 64) if bench_scale() == "paper" else (8, 16, 24)


def test_single_trap_sweep(benchmark):
    sizes = _sizes()
    results = benchmark(single_trap_sweep, qft_circuit, sizes)
    print()
    print("Single-trap baseline: QFT fidelity versus chain length")
    for size, result in zip(sizes, results):
        print(f"  N={size:3d}  time={result.duration_seconds:.4f}s "
              f"fidelity={result.fidelity:.3e} "
              f"per-gate motional error={result.mean_motional_error:.2e}")
    fidelities = [result.fidelity for result in results]
    assert fidelities == sorted(fidelities, reverse=True), \
        "single-trap fidelity decays monotonically with chain length"


@pytest.mark.parametrize("gate", ["AM1", "AM2", "PM", "FM"])
def test_single_trap_gate_choice(benchmark, gate):
    size = _sizes()[-1]
    result = benchmark(simulate_single_trap, qft_circuit(size), gate)
    assert result.num_shuttles == 0

"""Table I: shuttling primitive operation times.

Prints the table and times the evaluation of the shuttling-time model (a
trivial but complete harness entry so every table has a `bench_` target).
"""

from repro.models.params import ShuttleTimes
from repro.models.shuttle_times import format_table1, operation_times


def test_table1_rows(benchmark):
    rows = benchmark(operation_times, ShuttleTimes())
    print()
    print("Table I: shuttling operation times")
    print(format_table1())
    assert rows["Move ion through one segment"] == 5.0
    assert rows["Splitting operation on a chain"] == 80.0
    assert rows["Merging an ion with a chain"] == 80.0
    assert rows["Crossing Y-junction"] == 100.0
    assert rows["Crossing X-junction"] == 120.0

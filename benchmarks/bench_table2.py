"""Table II: the NISQ application suite (qubits, two-qubit gates, pattern).

Prints the regenerated table next to the paper's reported counts and times the
construction of the full-scale suite.
"""

from _common import bench_scale

from repro.apps import table2_suite
from repro.apps.suite import PAPER_TABLE2, application_summary
from repro.toolflow.tables import format_table2_text


def test_table2_suite_generation(benchmark):
    suite = benchmark(table2_suite)
    print()
    print(f"Table II: benchmark suite (scale={bench_scale()}, generation always full-scale)")
    print(format_table2_text(suite))

    rows = {row["application"]: row for row in application_summary(suite)}
    # Exact reproductions.
    assert rows["QFT"]["two_qubit_gates"] == PAPER_TABLE2["QFT"]["two_qubit_gates"]
    assert rows["QAOA"]["two_qubit_gates"] == PAPER_TABLE2["QAOA"]["two_qubit_gates"]
    assert rows["Supremacy"]["two_qubit_gates"] == PAPER_TABLE2["Supremacy"]["two_qubit_gates"]
    # Structural reproductions (same qubit count, gate count within ~15%).
    for name in ("Adder", "BV", "SquareRoot"):
        paper = PAPER_TABLE2[name]["two_qubit_gates"]
        assert abs(rows[name]["two_qubit_gates"] - paper) / paper < 0.15
    for name, row in rows.items():
        assert row["qubits"] == PAPER_TABLE2[name]["qubits"]

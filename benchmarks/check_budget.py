#!/usr/bin/env python3
"""CI guard: fail when the compile+simulate hot path exceeds its budget.

Thin wrapper over ``python -m repro check-budget`` (one implementation, one
output format): runs the quickstart-style unit (32-qubit QAOA on an L6
device, compile plus simulate, best of three) and exits non-zero when it
exceeds the wall-time budget (default 0.5 s; override with ``REPRO_BUDGET_S``
or ``--budget-s``).  The same check also exists as the ``budget``-marked
pytest test, so future PRs cannot silently regress the sweep hot path.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_budget.py [--budget-s 0.5]
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["check-budget", *sys.argv[1:]]))

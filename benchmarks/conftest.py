"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Allow `from _common import ...` inside the benchmark modules regardless of
# the directory pytest is invoked from.
sys.path.insert(0, str(Path(__file__).parent))

#!/usr/bin/env python3
"""Designing a custom QCCD device with the low-level hardware API.

The topology builders cover the paper's L6 and G2x3 devices, but the hardware
model is fully programmable: this example builds an H-shaped 4-trap device by
hand (two trap pairs bridged by a segment between two Y junctions), attaches a
custom physical model, and evaluates a 24-qubit adder on it against the stock
linear device.

Run:  python examples/custom_device.py
"""

from repro import compile_circuit, simulate
from repro.apps import cuccaro_adder_circuit
from repro.hardware import QCCDDevice, Junction, Topology, Trap, build_device
from repro.models.params import FidelityParams, HeatingParams, PhysicalModel, ShuttleTimes
from repro.visualize import device_report


def build_h_device(trap_capacity: int = 12) -> QCCDDevice:
    """An H-shaped device: two columns of two traps, bridged in the middle."""

    topology = Topology(name="H4")
    for trap_id, position in enumerate([(0.0, 0.0), (0.0, 2.0), (2.0, 0.0), (2.0, 2.0)]):
        topology.add_trap(Trap(trap_id, trap_capacity, position=position))
    topology.add_junction(Junction(0, 3, position=(0.0, 1.0)))
    topology.add_junction(Junction(1, 3, position=(2.0, 1.0)))
    topology.connect("T0", "J0")
    topology.connect("T1", "J0")
    topology.connect("T2", "J1")
    topology.connect("T3", "J1")
    topology.connect("J0", "J1", length=2)  # a longer bridge segment
    topology.validate()

    # A slightly pessimistic physical model: slower splits and higher heating
    # than the paper's defaults, e.g. an early-generation device.
    model = PhysicalModel(
        shuttle=ShuttleTimes(split=120.0, merge=120.0),
        heating=HeatingParams(k1=0.2, k2=0.02),
        fidelity=FidelityParams(),
    )
    return QCCDDevice(topology=topology, gate="PM", reorder="GS", model=model,
                      num_qubits=24, name="H4-custom")


def main() -> None:
    circuit = cuccaro_adder_circuit(24)
    print(f"Application: {circuit.name} with {circuit.num_qubits} qubits and "
          f"{circuit.num_two_qubit_gates} two-qubit gates")

    custom = build_h_device()
    stock = build_device("L4", trap_capacity=12, gate="PM", reorder="GS", num_qubits=24)

    for device in (custom, stock):
        print()
        print(device_report(device))
        program = compile_circuit(circuit, device)
        result = simulate(program, device)
        print(f"-> {len(program)} ops, {program.num_shuttles} shuttles, "
              f"time {result.duration_seconds * 1e3:.2f} ms, "
              f"fidelity {result.fidelity:.4f}, "
              f"max motional energy {result.max_motional_energy:.2f} quanta")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Adaptive model-based search: surrogate-guided DSE in a fraction of the grid.

The paper's design-space studies answer "which architecture maximises
fidelity?" by sweeping the full grid (Figure 8: gate implementation x trap
capacity).  The adaptive subsystem answers the same question with a
fraction of the evaluations: a surrogate model (random-Fourier-feature
ridge regression or a bagged tree ensemble) is trained online on every
evaluated point, and an expected-improvement acquisition proposes the next
batch.  Everything is deterministic under a fixed seed -- for any
``--jobs`` value *and* for distributed propose/evaluate runs, where
workers lease signed proposal batches off a ledger inside the store
directory.

Quickstart (default mode)::

    python examples/dse_adaptive.py

runs the exhaustive grid on a Figure 8-style space (2 apps x 3 capacities
x 4 gates at 16 qubits), then Bayesian optimization (``--strategy bayes``)
and the surrogate-ranked multi-fidelity ladder (``adaptive-halving``) on
the same space, and reports how many evaluations each needed to find the
grid's best point.

Smoke mode (used by CI)::

    python examples/dse_adaptive.py --smoke

asserts the subsystem's two headline guarantees end to end, exiting
non-zero on any failure:

1. **Sample efficiency**: seeded ``bayes`` reaches the exhaustive grid's
   best point using at most a quarter of the grid's evaluations.
2. **Distributed determinism**: the same strategy dispatched over 3
   propose/evaluate workers -- one SIGKILLed mid-batch, its proposal lease
   reclaimed through expiry -- completes and exports **byte-identically**
   to the serial adaptive run.
"""

import argparse
import shutil
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.cli import main as repro_main
from repro.dse import (
    AdaptiveDispatcher,
    DesignSpace,
    DSERunner,
    ExperimentStore,
    make_strategy,
)

#: The Figure 8-style space: gate implementation x trap capacity for QFT and
#: BV at 16 qubits on a 3-trap linear device.  24 points.
SPACE = dict(apps=("QFT", "BV"), qubits=(16,), topologies=("L3",),
             capacities=(6, 8, 10), gates=("AM1", "AM2", "PM", "FM"))

#: The pinned adaptive configuration the smoke test asserts: 6 evaluations
#: (exactly a quarter of the 24-point grid) finding the grid's best point.
BAYES = dict(seed=3, batch_size=3)


def export_bytes(store_dir: Path, output: Path) -> bytes:
    """Canonical ``dse export`` of a store, via the real CLI."""

    code = repro_main(["dse", "export", "--store", str(store_dir),
                       "--output", str(output)])
    if code != 0:
        raise SystemExit(f"export of {store_dir} failed with exit code {code}")
    return output.read_bytes()


def quickstart(workdir: Path) -> None:
    space = DesignSpace(**SPACE)
    print(f"Design space: {space.size} points (Figure 8-style, 16 qubits)\n")

    grid_runner = DSERunner(space, store=ExperimentStore(workdir / "grid"))
    grid = grid_runner.run(make_strategy("grid"))
    best = grid.best.as_row()
    print(f"grid             : {grid_runner.stats['evaluated']:3d} evaluations "
          f"-> best {best['application']} cap{best['capacity']} {best['gate']} "
          f"(fidelity {best['fidelity']:.4e})")

    for name, kwargs in (("bayes", BAYES),
                         ("adaptive-halving", dict(seed=0, proxy_qubits=8))):
        runner = DSERunner(space, store=ExperimentStore(workdir / name))
        result = runner.run(make_strategy(name, **kwargs))
        row = result.best.as_row()
        found = "the grid best" if row == best else "a different point"
        print(f"{name:17s}: {runner.stats['evaluated']:3d} evaluations "
              f"-> best {row['application']} cap{row['capacity']} "
              f"{row['gate']} (fidelity {row['fidelity']:.4e}, {found})")
        for entry in result.trace:
            print(f"                   {entry}")

    print("\nDistribute the same search with:")
    print("  python -m repro dse dispatch --apps QFT,BV --qubits 16 "
          "--topologies L3 \\\n      --capacities 6,8,10 --gates AM1,AM2,PM,FM "
          "--strategy bayes --store runs/study --workers 3")
    print("Inspect provenance with:  python -m repro dse status "
          "--store runs/study --by-strategy")


def smoke(workdir: Path) -> int:
    """CI scenario: sample efficiency + kill-one-worker distributed identity."""

    space = DesignSpace(**SPACE)

    # --- 1. Grid golden: the true best point. ----------------------------- #
    print(f"[smoke] exhaustive grid over {space.size} points...")
    grid_runner = DSERunner(space, store=ExperimentStore(workdir / "grid"))
    grid_best = grid_runner.run(make_strategy("grid")).best.as_row()

    # --- 2. Serial adaptive run: finds it with <= 1/4 the evaluations. ---- #
    serial_store = workdir / "serial"
    with ExperimentStore(serial_store) as store:
        runner = DSERunner(space, store=store)
        result = runner.run(make_strategy("bayes", **BAYES))
    evaluations = runner.stats["evaluated"]
    budget = space.size // 4
    print(f"[smoke] bayes(seed={BAYES['seed']}) evaluated {evaluations} of "
          f"{space.size} points (budget {budget})")
    if evaluations > budget:
        print(f"[smoke] FAIL: adaptive run used {evaluations} evaluations, "
              f"more than a quarter of the grid ({budget})")
        return 1
    if result.best.as_row() != grid_best:
        print(f"[smoke] FAIL: adaptive best {result.best.as_row()} != "
              f"grid best {grid_best}")
        return 1
    print(f"[smoke] OK: adaptive search found the grid best "
          f"({grid_best['application']} cap{grid_best['capacity']} "
          f"{grid_best['gate']}) with {evaluations}/{space.size} evaluations")
    golden = export_bytes(serial_store, workdir / "serial.json")

    # --- 3. Distributed propose/evaluate with one worker SIGKILLed. ------- #
    import threading

    from repro.dse import run_proposer, spawn_worker_process

    store_dir = workdir / "dispatched"
    strategy = dict(name="bayes", metric="fidelity", parts=3, **BAYES)
    # Short TTL + per-heartbeat throttle widen the kill window: the victim
    # dies while its proposal part is leased but not yet done, so a
    # survivor must take the lease over through expiry.
    dispatcher = AdaptiveDispatcher(space, store_dir, strategy=strategy,
                                    workers=3, ttl_s=1.5, throttle_s=0.3,
                                    poll_s=0.05)
    dispatcher.prepare()
    procs = [spawn_worker_process(store_dir) for _ in range(3)]
    victim = procs[0]
    killed_holding = []

    def watch_and_kill():
        suffix = f"pid{victim.pid}"
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            for name in dispatcher.ledger.work_names():
                owner = dispatcher.ledger.leases.owner_of(name)
                if owner and owner.endswith(suffix):
                    killed_holding.append(name)
            if killed_holding:
                victim.send_signal(signal.SIGKILL)
                victim.wait()
                return
            time.sleep(0.01)

    try:
        killer = threading.Thread(target=watch_and_kill)
        killer.start()
        # The proposer runs in this process while the killer watches; it
        # blocks until every batch is evaluated and the run is complete.
        summary = run_proposer(store_dir, poll_s=0.05)
        killer.join(timeout=60.0)
        deadline = time.monotonic() + 60.0
        for proc in procs[1:]:  # survivors exit once everything is done
            proc.wait(timeout=max(0.1, deadline - time.monotonic()))
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    if not killed_holding:
        print("[smoke] FAIL: victim worker never claimed a proposal lease")
        return 1
    print(f"[smoke] SIGKILLed worker {victim.pid} holding "
          f"{sorted(set(killed_holding))}")
    if not dispatcher.ledger.all_done():
        print("[smoke] FAIL: dispatched run did not complete every proposal")
        return 1
    for name in set(killed_holding):
        if not dispatcher.ledger.is_done(name):
            print(f"[smoke] FAIL: victim's proposal {name} was never "
                  f"reclaimed and finished")
            return 1
    print(f"[smoke] dispatched run complete: {summary['evaluations']} "
          f"evaluations over {summary['batches']} batches, victim's "
          f"lease(s) reclaimed")

    dispatched = export_bytes(store_dir, workdir / "dispatched.json")
    if dispatched != golden:
        print("[smoke] FAIL: dispatched export differs from the serial "
              "adaptive export")
        return 1
    print(f"[smoke] OK: dispatched export is byte-identical to the serial "
          f"run ({len(golden)} bytes)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="CI assertion mode: sample efficiency + "
                             "kill-one-worker distributed determinism; "
                             "exits non-zero on any failure")
    args = parser.parse_args()
    workdir = Path(tempfile.mkdtemp(prefix="dse_adaptive_"))
    try:
        if args.smoke:
            return smoke(workdir)
        quickstart(workdir)
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Distributed design-space exploration: the shard-lease dispatcher.

PR 2 made sharded studies *mergeable* (every ``--shard i/N`` run appends its
own file to the store directory); the dispatcher makes them *coordinated*:
a ledger of lease files inside the store directory decides which worker owns
which shard, heartbeats keep a lease alive, and an expired lease -- a
SIGKILLed worker -- is reclaimed by the survivors.  No daemon, no database:
any shared filesystem is a cluster.

Quickstart (default mode)::

    python examples/dse_distributed.py          # 3 local workers, 24 points

This partitions a small study into leased shards, runs three worker
processes, watches progress with the stored per-point ``wall_s`` timings
(the same numbers behind ``repro dse status --eta``), and shows the
per-machine command lines you would run instead for a remote launch.

Smoke mode (used by CI)::

    python examples/dse_distributed.py --smoke

runs the dispatcher's crash-recovery guarantee end to end: a 48-point space
on 3 workers, one worker SIGKILLed mid-run, its shard reclaimed through
lease expiry -- then asserts the merged store's ``dse export`` output is
**byte-identical** to a single-process run of the same space, and exits
non-zero if it is not.
"""

import argparse
import shutil
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.cli import main as repro_main
from repro.dse import DesignSpace, Dispatcher, DSERunner, ExperimentStore
from repro.dse.dispatch import format_eta


def export_bytes(store_dir: Path, output: Path) -> bytes:
    """Canonical ``dse export`` of a store, via the real CLI."""

    code = repro_main(["dse", "export", "--store", str(store_dir),
                       "--output", str(output)])
    if code != 0:
        raise SystemExit(f"export of {store_dir} failed with exit code {code}")
    return output.read_bytes()


def quickstart(workdir: Path) -> None:
    # 2 apps x 3 capacities x 4 gates = 24 points, all at 8 qubits.
    space = DesignSpace(apps=("QFT", "BV"), qubits=(8,), topologies=("L3",),
                        capacities=(6, 8, 10),
                        gates=("AM1", "AM2", "PM", "FM"))
    store_dir = workdir / "study"
    dispatcher = Dispatcher(space, store_dir, workers=3, shards=6,
                            ttl_s=30.0, poll_s=0.2)
    print(f"Dispatching {space.size} points as {dispatcher.shards} leased "
          f"shards to {dispatcher.workers} local workers...")

    def report(progress):
        shards = progress["shards"]
        print(f"  {progress['points_done']:3d}/{progress['points_total']} "
              f"points | shards done {shards['done']}/{dispatcher.shards}, "
              f"active {shards['active']} | ETA {format_eta(progress['eta_s'])}")

    summary = dispatcher.run(timeout_s=600.0, on_progress=report,
                             progress_interval_s=0.5)
    print(f"Dispatch complete: {summary['points']} points in "
          f"{summary['elapsed_s']:.1f} s")

    print("\nFor remote machines, prepare with --print-only and run one of "
          "these per host\n(each host must mount the store directory):")
    for line in dispatcher.command_lines():
        print(f"  {line}")

    print("\nStore status (note the per-shard files and wall_s timings):")
    repro_main(["dse", "status", "--store", str(store_dir), "--eta"])


def smoke(workdir: Path, trace: Path = None) -> int:
    """CI scenario: 3 workers, one SIGKILLed, export must match serial."""

    space = DesignSpace(apps=("QFT", "BV"), qubits=(8,), topologies=("L3",),
                        capacities=(6, 8, 10),
                        gates=("AM1", "AM2", "PM", "FM"),
                        reorders=("GS", "IS"))
    if trace is not None:
        # Tracing covers the serial golden run (compile/sim/dse spans) and
        # the dispatch coordination; the byte-diff below then doubles as
        # the traces-are-a-side-channel check -- the *traced* serial run's
        # export is what the dispatched export must match.
        from repro.obs import enable_tracing

        enable_tracing()
    print(f"[smoke] golden single-process run of {space.size} points...")
    with ExperimentStore(workdir / "serial") as store:
        DSERunner(space, store=store).evaluate_space()
    golden = export_bytes(workdir / "serial", workdir / "serial.json")

    store_dir = workdir / "dispatched"
    dispatcher = Dispatcher(space, store_dir, workers=3, shards=8,
                            ttl_s=2.0, throttle_s=0.05, poll_s=0.1,
                            respawn=False)
    dispatcher.prepare()
    procs = [dispatcher.spawn_worker() for _ in range(3)]
    victim = procs[0]
    try:
        # Kill worker 0 once it holds a lease, so its shard must be
        # reclaimed by the survivors through lease expiry.
        suffix = f"pid{victim.pid}"
        victim_shards = []
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and not victim_shards:
            victim_shards = [s.index for s in dispatcher.ledger.states()
                            if s.owner and s.owner.endswith(suffix)]
            time.sleep(0.02)
        if not victim_shards:
            print("[smoke] FAIL: victim worker never claimed a shard")
            return 1
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        print(f"[smoke] SIGKILLed worker {victim.pid} holding "
              f"shard(s) {victim_shards}")

        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline and not dispatcher.ledger.all_done():
            time.sleep(0.2)
        if not dispatcher.ledger.all_done():
            print("[smoke] FAIL: shards not reclaimed/completed in time")
            return 1
        for proc in procs[1:]:
            proc.wait(timeout=60.0)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    for index in victim_shards:
        status = dispatcher.ledger.state(index).status
        print(f"[smoke] victim shard {index}: {status}")
        if status != "done":
            print("[smoke] FAIL: victim shard was not reclaimed")
            return 1

    if trace is not None:
        code = _check_fleet_trace(workdir, store_dir, trace)
        if code != 0:
            return code

    print("[smoke] worker telemetry:")
    repro_main(["dse", "status", "--store", str(store_dir), "--workers"])

    dispatched = export_bytes(store_dir, workdir / "dispatched.json")
    if dispatched != golden:
        print("[smoke] FAIL: dispatched export differs from the serial "
              "golden export")
        return 1
    print(f"[smoke] OK: dispatched export is byte-identical to the serial "
          f"run ({len(golden)} bytes, {space.size} points)")

    code = straggler_smoke(workdir, space, golden)
    if code != 0:
        return code
    return 0


def _check_fleet_trace(workdir: Path, store_dir: Path, trace: Path) -> int:
    """Validate the distributed-tracing guarantees on the smoke's fleet.

    The workers joined this process's trace through the environment
    (``spawn_worker`` stamped the context) and flushed span shards into
    the store -- the SIGKILLed one included, up to its last atomic flush.
    Checks: the merged trace carries spans from at least two worker pids
    under one root trace id, validates as Chrome trace JSON with process
    metadata, profiles into a fleet-wide critical path, and the standalone
    ``repro trace merge`` is deterministic (byte-identical across runs).
    """

    import json

    from repro.obs import (
        adopt_shards,
        build_profile,
        current_tracer,
        disable_tracing,
        validate_chrome_trace,
        write_trace,
    )

    tracer = current_tracer()
    info = adopt_shards(tracer, store_dir)
    disable_tracing()
    worker_pids = {record["pid"] for record in tracer.foreign}
    if len(worker_pids) < 2:
        print(f"[smoke] FAIL: expected trace shards from >= 2 worker "
              f"pids, got {sorted(worker_pids)}")
        return 1
    trace_ids = {record["trace_id"] for record in tracer.foreign}
    if trace_ids != {tracer.trace_id}:
        print(f"[smoke] FAIL: worker spans carry foreign trace ids "
              f"{sorted(trace_ids)} != {tracer.trace_id}")
        return 1
    paths = write_trace(trace, tracer)
    payload = json.loads(Path(paths["trace"]).read_text())
    events = validate_chrome_trace(payload)
    if events == 0:
        print("[smoke] FAIL: the trace recorded no spans")
        return 1
    if not any(e["ph"] == "M" for e in payload["traceEvents"]):
        print("[smoke] FAIL: fleet trace lacks process metadata events")
        return 1
    skipped = sum(info["skipped"].values())
    print(f"[smoke] trace: {paths['trace']} validates as Chrome trace "
          f"JSON ({events} events; {info['spans']} worker spans from "
          f"{len(worker_pids)} pids, {skipped} shard lines skipped)")

    profile = build_profile(tracer.records())
    critical = profile["critical_path"]
    if not critical:
        print("[smoke] FAIL: fleet profile has no critical path")
        return 1
    steps = " -> ".join(step["name"] for step in critical)
    print(f"[smoke] fleet critical path: {steps}")

    # The standalone merger must be deterministic: merging the same shard
    # set twice writes byte-identical bundles.
    merges = []
    for k in (1, 2):
        out = workdir / f"merged{k}.json"
        code = repro_main(["trace", "merge", "--store", str(store_dir),
                           "--output", str(out)])
        if code != 0:
            print(f"[smoke] FAIL: repro trace merge exited with {code}")
            return 1
        merges.append(out.read_bytes()
                      + out.with_suffix(".spans.jsonl").read_bytes())
    if merges[0] != merges[1]:
        print("[smoke] FAIL: repeated trace merges are not byte-identical")
        return 1
    print("[smoke] OK: repro trace merge is deterministic "
          "(byte-identical across runs)")
    return 0


def straggler_smoke(workdir: Path, space: DesignSpace, golden: bytes) -> int:
    """A SIGSTOPped worker must be flagged *before* its lease expires.

    SIGKILL (above) tests the recovery path -- the lease expires and the
    shard is reclaimed.  A hung-but-alive worker is worse: it renews
    nothing, produces nothing, and without the timeline monitor nobody
    notices until the lease budget runs out.  ``detect_stragglers`` flags
    it at half the TTL; this phase pins that the flag fires while the
    worker's heartbeat age is still inside the lease budget, then SIGCONTs
    the worker and checks the run still completes byte-identically.
    """

    from repro.obs.timeline import FleetMonitor

    store_dir = workdir / "straggler"
    ttl_s = 4.0
    dispatcher = Dispatcher(space, store_dir, workers=2, shards=8,
                            ttl_s=ttl_s, throttle_s=0.05, poll_s=0.1,
                            respawn=False)
    dispatcher.prepare()
    procs = [dispatcher.spawn_worker() for _ in range(2)]
    victim = procs[0]
    monitor = FleetMonitor(store_dir, ttl_s=ttl_s)
    stopped = False
    try:
        suffix = f"pid{victim.pid}"
        victim_owner = None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and victim_owner is None:
            for state in dispatcher.ledger.states():
                if state.owner and state.owner.endswith(suffix):
                    victim_owner = state.owner
                    break
            time.sleep(0.02)
        if victim_owner is None:
            print("[smoke] FAIL: straggler victim never claimed a shard")
            return 1
        victim.send_signal(signal.SIGSTOP)
        stopped = True
        print(f"[smoke] SIGSTOPped worker {victim.pid} "
              f"(owner {victim_owner}, lease TTL {ttl_s:.0f}s)")

        flagged_age = None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and flagged_age is None:
            snapshot = monitor.snapshot()
            reasons = snapshot["stragglers"].get(victim_owner, [])
            if any("stalled" in reason for reason in reasons):
                flagged_age = snapshot["workers"][victim_owner][
                    "last_seen_age_s"]
                break
            time.sleep(0.1)
        if flagged_age is None:
            print("[smoke] FAIL: stopped worker was never flagged "
                  "as a straggler")
            return 1
        if flagged_age >= ttl_s:
            print(f"[smoke] FAIL: straggler flagged only after lease "
                  f"expiry ({flagged_age:.1f}s >= {ttl_s:.0f}s)")
            return 1
        print(f"[smoke] straggler flagged at heartbeat age "
              f"{flagged_age:.1f}s -- inside the {ttl_s:.0f}s lease budget")

        victim.send_signal(signal.SIGCONT)
        stopped = False
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline and not dispatcher.ledger.all_done():
            time.sleep(0.2)
        if not dispatcher.ledger.all_done():
            print("[smoke] FAIL: straggler run did not complete")
            return 1
        for proc in procs:
            proc.wait(timeout=60.0)
    finally:
        monitor.close()
        for proc in procs:
            if proc.poll() is None:
                if stopped and proc is victim:
                    proc.send_signal(signal.SIGCONT)
                proc.kill()
                proc.wait()

    print("[smoke] fleet dashboard (repro dse top --once):")
    code = repro_main(["dse", "top", "--store", str(store_dir), "--once"])
    if code != 0:
        print(f"[smoke] FAIL: dse top exited with code {code}")
        return 1

    resumed = export_bytes(store_dir, workdir / "straggler.json")
    if resumed != golden:
        print("[smoke] FAIL: straggler run's export differs from the "
              "serial golden export")
        return 1
    print("[smoke] OK: SIGSTOP/SIGCONT run is byte-identical to the "
          "serial run")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="kill-one-worker recovery check (used by CI); "
                             "exits non-zero if the reclaimed run's export "
                             "differs from the serial golden export")
    parser.add_argument("--trace", type=Path, default=None, metavar="OUT.JSON",
                        help="with --smoke: trace the whole fleet (workers "
                             "join via the environment and flush span "
                             "shards), merge the shards, and validate the "
                             "fleet Chrome trace, critical path and "
                             "deterministic `repro trace merge`")
    args = parser.parse_args()
    workdir = Path(tempfile.mkdtemp(prefix="dse_distributed_"))
    try:
        if args.smoke:
            return smoke(workdir, trace=args.trace)
        quickstart(workdir)
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Multi-objective DSE: searching the Pareto frontier directly.

The paper's central result is a *trade-off* -- trap capacity, gate
implementation and topology balance gate fidelity against shuttling and
runtime overhead -- and Figures 6-8 read their answers off that frontier.
The scalar strategies (grid/greedy/bayes/...) optimise one number, so the
frontier could previously only be recovered by exhaustive sweeps.  The
``repro.dse.moo`` subsystem searches it directly: an expected-hypervolume-
improvement proposer (``--strategy ehvi``, one surrogate per objective)
and a seeded random-weight Chebyshev scalarization baseline
(``--strategy parego``), both deterministic under a fixed seed for any
``--jobs`` value and for distributed propose/evaluate runs.

Quickstart (default mode)::

    python examples/dse_moo.py

runs the exhaustive grid on a Figure 8-style space (capacity sweep x 4
gate implementations for a 16-qubit QFT), extracts its true
(fidelity, runtime) frontier, then runs EHVI and ParEGO on the same space
and reports how many evaluations each needed to recover the frontier and
how much hypervolume each accumulated per batch.

Smoke mode (used by the ``moo-smoke`` CI job)::

    python examples/dse_moo.py --smoke

asserts the subsystem's two headline guarantees end to end, exiting
non-zero on any failure:

1. **Frontier recovery**: seeded ``ehvi`` recovers the exhaustive grid's
   *exact* Pareto frontier using fewer than half of the grid's
   evaluations.
2. **Distributed determinism**: the same strategy dispatched over 3
   propose/evaluate workers -- one SIGKILLed mid-batch, its proposal lease
   reclaimed through expiry -- completes and exports **byte-identically**
   to the serial run.
"""

import argparse
import shutil
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.cli import main as repro_main
from repro.dse import (
    AdaptiveDispatcher,
    DesignSpace,
    DSERunner,
    ExperimentStore,
    make_strategy,
    record_frontier,
    records_hypervolume,
)

#: The Figure 8-style space: trap capacity x gate implementation for a
#: 16-qubit QFT on a 3-trap linear device.  24 points whose
#: (fidelity, runtime) frontier has three members: large traps shuttle
#: least (best fidelity) but slow their gates, so capacity trades
#: reliability against runtime.
SPACE = dict(apps=("QFT",), qubits=(16,), topologies=("L3",),
             capacities=(6, 8, 10, 12, 14, 16),
             gates=("AM1", "AM2", "PM", "FM"))

#: The objective vector of the paper's headline trade-off.
OBJECTIVES = ("fidelity", "runtime")

#: The pinned EHVI configuration the smoke test asserts: 9 evaluations
#: (under half of the 24-point grid) recovering the exact 3-point frontier.
EHVI = dict(seed=9, batch_size=3, max_evals=9)


def frontier_key(records):
    """Order-free identity of a frontier (set of architecture tuples)."""

    return sorted((row["application"], row["topology"], row["capacity"],
                   row["gate"], row["reorder"], row["buffer"])
                  for row in (record.as_row() for record in records))


def export_bytes(store_dir: Path, output: Path) -> bytes:
    """Canonical ``dse export`` of a store, via the real CLI."""

    code = repro_main(["dse", "export", "--store", str(store_dir),
                       "--output", str(output)])
    if code != 0:
        raise SystemExit(f"export of {store_dir} failed with exit code {code}")
    return output.read_bytes()


def quickstart(workdir: Path) -> None:
    space = DesignSpace(**SPACE)
    print(f"Design space: {space.size} points (Figure 8-style, 16 qubits)\n")

    grid_runner = DSERunner(space, store=ExperimentStore(workdir / "grid"))
    grid = grid_runner.run(make_strategy("grid"))
    true_frontier = record_frontier(grid.evaluated, OBJECTIVES)
    hv = records_hypervolume(grid.evaluated, OBJECTIVES)
    print(f"grid   : {grid_runner.stats['evaluated']:3d} evaluations -> "
          f"{len(true_frontier)}-point frontier, hypervolume {hv:.6f}")
    for record in true_frontier:
        row = record.as_row()
        print(f"         cap{row['capacity']:2d} {row['gate']:3s} "
              f"fidelity {row['fidelity']:.4e}  runtime {row['duration_s']:.4f} s")

    for name, kwargs in (("ehvi", EHVI),
                         ("parego", dict(seed=4, batch_size=3, max_evals=12))):
        runner = DSERunner(space, store=ExperimentStore(workdir / name))
        result = runner.run(make_strategy(name, objectives=OBJECTIVES, **kwargs))
        recovered = frontier_key(result.frontier) == frontier_key(true_frontier)
        print(f"\n{name:7s}: {runner.stats['evaluated']:3d} evaluations -> "
              f"{len(result.frontier)}-point frontier "
              f"({'the exact grid frontier' if recovered else 'a partial frontier'})")
        for entry in result.trace:
            print(f"         batch {entry['batch']}: {entry['evaluations']:2d} "
                  f"evals, frontier {entry['frontier']}, "
                  f"hypervolume {entry['hypervolume']:.6f}")

    print("\nDistribute the same search with:")
    print("  python -m repro dse dispatch --apps QFT --qubits 16 "
          "--topologies L3 \\\n      --capacities 6,8,10,12,14,16 "
          "--gates AM1,AM2,PM,FM \\\n      --strategy ehvi --objectives "
          "fidelity,runtime --store runs/moo --workers 3")
    print("Inspect the frontier with:  python -m repro dse pareto "
          "--store runs/moo \\\n      --objectives fidelity,runtime "
          "--hypervolume --output cloud.csv")


def smoke(workdir: Path) -> int:
    """CI scenario: frontier recovery + kill-one-worker distributed identity."""

    space = DesignSpace(**SPACE)

    # --- 1. Grid golden: the true Pareto frontier. ------------------------ #
    print(f"[smoke] exhaustive grid over {space.size} points...")
    grid_runner = DSERunner(space, store=ExperimentStore(workdir / "grid"))
    grid = grid_runner.run(make_strategy("grid"))
    true_frontier = frontier_key(record_frontier(grid.evaluated, OBJECTIVES))
    print(f"[smoke] true (fidelity, runtime) frontier: "
          f"{len(true_frontier)} points")

    # --- 2. Serial EHVI run: exact frontier with < half the evaluations. -- #
    serial_store = workdir / "serial"
    with ExperimentStore(serial_store) as store:
        runner = DSERunner(space, store=store)
        result = runner.run(make_strategy("ehvi", objectives=OBJECTIVES,
                                          **EHVI))
    evaluations = runner.stats["evaluated"]
    if evaluations >= space.size // 2:
        print(f"[smoke] FAIL: ehvi used {evaluations} evaluations, not "
              f"under half of the grid ({space.size // 2})")
        return 1
    if frontier_key(result.frontier) != true_frontier:
        print(f"[smoke] FAIL: ehvi frontier {frontier_key(result.frontier)} "
              f"!= grid frontier {true_frontier}")
        return 1
    print(f"[smoke] OK: ehvi(seed={EHVI['seed']}) recovered the exact "
          f"{len(true_frontier)}-point frontier with {evaluations}/"
          f"{space.size} evaluations")
    golden = export_bytes(serial_store, workdir / "serial.json")

    # --- 3. Distributed propose/evaluate with one worker SIGKILLed. ------- #
    import threading

    from repro.dse import run_proposer, spawn_worker_process

    store_dir = workdir / "dispatched"
    strategy = dict(name="ehvi", objectives=list(OBJECTIVES), parts=3, **EHVI)
    # Short TTL + per-heartbeat throttle widen the kill window: the victim
    # dies while its proposal part is leased but not yet done, so a
    # survivor must take the lease over through expiry.
    dispatcher = AdaptiveDispatcher(space, store_dir, strategy=strategy,
                                    workers=3, ttl_s=1.5, throttle_s=0.3,
                                    poll_s=0.05)
    dispatcher.prepare()
    procs = [spawn_worker_process(store_dir) for _ in range(3)]
    victim = procs[0]
    killed_holding = []

    def watch_and_kill():
        suffix = f"pid{victim.pid}"
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            for name in dispatcher.ledger.work_names():
                owner = dispatcher.ledger.leases.owner_of(name)
                if owner and owner.endswith(suffix):
                    killed_holding.append(name)
            if killed_holding:
                victim.send_signal(signal.SIGKILL)
                victim.wait()
                return
            time.sleep(0.01)

    try:
        killer = threading.Thread(target=watch_and_kill)
        killer.start()
        # The proposer runs in this process while the killer watches; it
        # blocks until every batch is evaluated and the run is complete.
        summary = run_proposer(store_dir, poll_s=0.05)
        killer.join(timeout=60.0)
        deadline = time.monotonic() + 60.0
        for proc in procs[1:]:  # survivors exit once everything is done
            proc.wait(timeout=max(0.1, deadline - time.monotonic()))
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    if not killed_holding:
        print("[smoke] FAIL: victim worker never claimed a proposal lease")
        return 1
    print(f"[smoke] SIGKILLed worker {victim.pid} holding "
          f"{sorted(set(killed_holding))}")
    if not dispatcher.ledger.all_done():
        print("[smoke] FAIL: dispatched run did not complete every proposal")
        return 1
    for name in set(killed_holding):
        if not dispatcher.ledger.is_done(name):
            print(f"[smoke] FAIL: victim's proposal {name} was never "
                  f"reclaimed and finished")
            return 1
    frontier = summary.get("frontier") or []
    print(f"[smoke] dispatched run complete: {summary['evaluations']} "
          f"evaluations over {summary['batches']} batches, "
          f"{len(frontier)}-point frontier, victim's lease(s) reclaimed")

    dispatched = export_bytes(store_dir, workdir / "dispatched.json")
    if dispatched != golden:
        print("[smoke] FAIL: dispatched export differs from the serial "
              "ehvi export")
        return 1
    print(f"[smoke] OK: dispatched export is byte-identical to the serial "
          f"run ({len(golden)} bytes)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="CI assertion mode: frontier recovery + "
                             "kill-one-worker distributed determinism; "
                             "exits non-zero on any failure")
    args = parser.parse_args()
    workdir = Path(tempfile.mkdtemp(prefix="dse_moo_"))
    try:
        if args.smoke:
            return smoke(workdir)
        quickstart(workdir)
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Design-space exploration quickstart: resumable custom studies.

The paper's contribution is the *design-space study* -- sweeping topology,
trap capacity, gate implementation and communication knobs to find
architectural sweet spots.  This example runs a custom study through the DSE
subsystem:

1. declare a :class:`DesignSpace` (the cross product of sweep axes),
2. evaluate it through a persistent :class:`ExperimentStore` (kill this
   script at any point and re-run it -- completed points replay from disk),
3. compare an adaptive strategy (coordinate descent) against the grid,
4. read off the best point and the fidelity-vs-runtime Pareto frontier.

Run:  python examples/dse_study.py  (store lands in ./dse_study_store/)

The same study, CLI-style::

    python -m repro dse run --apps QFT,Adder --qubits 16 \\
        --topologies L4,G2x2 --capacities 6,8,10 --gates AM1,FM \\
        --store dse_study_store --jobs 2
    python -m repro dse pareto --store dse_study_store
"""

from repro.dse import (
    CoordinateDescent,
    DSERunner,
    DesignSpace,
    ExperimentStore,
    pareto_frontier,
)


def main() -> None:
    # 1. The space: 2 apps x 2 topologies x 3 capacities x 2 gates = 24 points.
    space = DesignSpace(
        apps=("QFT", "Adder"),
        qubits=(16,),
        topologies=("L4", "G2x2"),
        capacities=(6, 8, 10),
        gates=("AM1", "FM"),
        reorders=("GS",),
    )
    print(f"Design space: {space.size} points")

    # 2. Exhaustive grid through a persistent store.  Re-running this script
    #    replays every completed point from disk (watch `reused` go up).
    with ExperimentStore("dse_study_store") as store:
        runner = DSERunner(space, store=store)
        records = runner.evaluate_space()
        print(f"Grid: evaluated {runner.stats['evaluated']}, "
              f"replayed {runner.stats['reused']} from the store")

        # 3. An adaptive strategy over the same space costs a fraction of the
        #    grid -- and reuses any point the grid already stored.
        climber = DSERunner(space, store=store)
        result = climber.run(CoordinateDescent(seed=7, metric="fidelity"))
        print(f"Greedy: evaluated {climber.stats['evaluated']} new points, "
              f"replayed {climber.stats['reused']}")

    # 4. Winners.
    best = result.best
    print(f"\nBest point (greedy): {best.application} on {best.config.name}"
          f"  fidelity={best.fidelity:.4e}  runtime={best.duration_seconds:.4f}s")

    print("\nFidelity-vs-runtime Pareto frontier (fastest first):")
    for record in pareto_frontier(records):
        print(f"  {record.application:8s} {record.config.name:18s} "
              f"runtime={record.duration_seconds:.4f}s "
              f"fidelity={record.fidelity:.4e}")


if __name__ == "__main__":
    main()

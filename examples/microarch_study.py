#!/usr/bin/env python3
"""Microarchitecture study: reproduce Figure 8 of the paper.

Evaluates the eight combinations of two-qubit gate implementation (AM1, AM2,
PM, FM) and chain-reordering method (GS, IS) on the linear topology, printing
fidelity and runtime series per application, plus the headline ratios the
paper quotes (FM over AM1, GS over IS).

Run:  python examples/microarch_study.py [--small]
"""

import argparse

from repro.analysis.compare import gate_choice_improvement, reorder_fidelity_ratio
from repro.analysis.series import format_series_table
from repro.apps import scaled_suite, table2_suite
from repro.toolflow import ArchitectureConfig, figure8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true",
                        help="run a fast, scaled-down version of the study")
    args = parser.parse_args()

    if args.small:
        suite = scaled_suite(16)
        capacities = (6, 8, 10)
        base = ArchitectureConfig(topology="L4")
    else:
        suite = table2_suite()
        capacities = (14, 18, 22, 26, 30, 34)
        base = ArchitectureConfig(topology="L6")

    print(f"Microarchitecture study on {base.topology}: "
          "{AM1, AM2, PM, FM} x {GS, IS}")
    bundle = figure8(suite, capacities=capacities, base=base)

    for name in suite:
        print()
        print(format_series_table(capacities, bundle["fidelity"][name],
                                  title=f"Figure 8 fidelity: {name}",
                                  value_format="{:.3e}"))
        print()
        print(format_series_table(capacities, bundle["runtime_s"][name],
                                  title=f"Figure 8 runtime (s): {name}"))

    print()
    print("Headline comparisons:")
    for name in suite:
        fm_over_am1 = gate_choice_improvement(bundle["fidelity"][name], "FM", "AM1")
        fm_over_am2 = gate_choice_improvement(bundle["fidelity"][name], "FM", "AM2")
        gs_over_is = reorder_fidelity_ratio(bundle["fidelity"][name], gate="FM")
        print(f"  {name:12s} FM/AM1 up to {fm_over_am1:10,.1f}x   "
              f"FM/AM2 up to {fm_over_am2:8,.1f}x   GS/IS up to {gs_over_is:10,.1f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Application/hardware co-design: picking a device for QAOA.

The paper's headline recommendation is that hardware should be co-designed
with the application mix: for nearest-neighbour workloads such as QAOA, a
linear topology with 15-25 ion traps, AM2 gates and gate-based swapping is
close to optimal.  This example searches a small design space for the best
configuration for a 48-qubit QAOA instance and prints the ranking.

Run:  python examples/qaoa_codesign.py
"""

from repro.apps import qaoa_circuit
from repro.toolflow import ArchitectureConfig, run_gate_variants
from repro.visualize import experiment_report


def main() -> None:
    circuit = qaoa_circuit(48, layers=12)
    print(f"Co-design target: {circuit.name} "
          f"({circuit.num_qubits} qubits, {circuit.num_two_qubit_gates} two-qubit gates)")

    records = []
    for topology in ("L6", "G2x3"):
        for capacity in (14, 20, 26, 32):
            for reorder in ("GS", "IS"):
                config = ArchitectureConfig(topology=topology, trap_capacity=capacity,
                                            reorder=reorder)
                variants = run_gate_variants(circuit, config,
                                             gates=("AM1", "AM2", "PM", "FM"))
                records.extend(variants.values())

    records.sort(key=lambda record: record.fidelity, reverse=True)
    print()
    print("Top 10 configurations by application fidelity:")
    print(experiment_report(records[:10]))
    print()
    print("Bottom 5 configurations:")
    print(experiment_report(records[-5:]))

    best = records[0]
    print()
    print(f"Recommended design for this workload: {best.config.name} "
          f"(fidelity {best.fidelity:.3f}, runtime {best.duration_seconds:.3f} s)")


if __name__ == "__main__":
    main()

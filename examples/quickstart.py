#!/usr/bin/env python3
"""Quickstart: compile and simulate one application on one QCCD device.

This is the 5-minute tour of the toolflow (paper Figure 3):

1. build a candidate architecture (topology, trap capacity, gate
   implementation, chain-reordering method),
2. generate a NISQ application from the Table II suite,
3. compile it (mapping, shuttle routing, reordering insertion),
4. simulate it (timing, heating, fidelity) and inspect the metrics.

Run:  python examples/quickstart.py
"""

from repro import build_device, compile_circuit, simulate
from repro.apps import qaoa_circuit
from repro.models.shuttle_times import format_table1
from repro.sim.metrics import communication_fraction, shuttles_per_two_qubit_gate
from repro.visualize import device_report


def main() -> None:
    # 1. A candidate architecture: Honeywell-style linear device with six
    #    traps of 20 ions, frequency-modulated MS gates and gate-based
    #    swapping for chain reordering.
    device = build_device("L6", trap_capacity=20, gate="FM", reorder="GS",
                          num_qubits=32)
    print(device_report(device))
    print()
    print("Shuttling primitive times (paper Table I):")
    print(format_table1(device.model.shuttle))

    # 2. A 32-qubit, 8-layer hardware-efficient QAOA ansatz.
    circuit = qaoa_circuit(32, layers=8)
    print()
    print(f"Application: {circuit.name} -- {circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates} two-qubit gates, "
          f"{circuit.num_single_qubit_gates} single-qubit gates")

    # 3. Compile: map qubits to traps, orchestrate shuttling.
    program = compile_circuit(circuit, device)
    print()
    print(f"Compiled program: {len(program)} primitive operations")
    for label, count in program.communication_summary().items():
        print(f"  {label:18s} {count}")

    # 4. Simulate: runtime, reliability and device-level noise metrics.
    result = simulate(program, device)
    print()
    print("Simulation results")
    print(f"  execution time      : {result.duration_seconds * 1e3:.2f} ms")
    print(f"    computation       : {result.computation_seconds * 1e3:.2f} ms")
    print(f"    communication     : {result.communication_seconds * 1e3:.2f} ms "
          f"({100 * communication_fraction(result):.1f}%)")
    print(f"  application fidelity: {result.fidelity:.4f}")
    print(f"  shuttles per 2Q gate: {shuttles_per_two_qubit_gate(result):.3f}")
    print(f"  max motional energy : {result.max_motional_energy:.2f} quanta")
    print(f"  mean MS gate error  : {result.mean_two_qubit_error:.2e} "
          f"(motional {result.mean_motional_error:.2e}, "
          f"background {result.mean_background_error:.2e})")


if __name__ == "__main__":
    main()

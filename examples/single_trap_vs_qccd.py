#!/usr/bin/env python3
"""Why QCCD: the single-trap baseline versus a modular device (Section III).

A single long ion chain needs no shuttling, but every gate gets slower
(distance-dependent implementations) and noisier (laser-instability growth
with chain length), and the whole program serialises on one chain.  This
example sweeps the qubit count for the QFT kernel and compares a single trap
against an L6 QCCD device, showing where modularity starts to pay off in
runtime and how per-gate error grows with chain length.

Run:  python examples/single_trap_vs_qccd.py
"""

from repro.apps import qft_circuit
from repro.baselines import simulate_single_trap
from repro.toolflow import ArchitectureConfig, run_experiment


def main() -> None:
    print(f"{'qubits':>7} | {'single-trap time':>17} {'per-gate error':>15} | "
          f"{'QCCD time':>10} {'QCCD fidelity':>14} {'shuttles':>9}")
    print("-" * 86)
    for num_qubits in (16, 24, 32, 48, 64):
        circuit = qft_circuit(num_qubits)
        single = simulate_single_trap(circuit, gate="FM")
        config = ArchitectureConfig(topology="L6", trap_capacity=20, gate="FM")
        qccd = run_experiment(circuit, config)
        print(f"{num_qubits:>7} | {single.duration_seconds:>16.3f}s "
              f"{single.mean_motional_error:>15.2e} | "
              f"{qccd.duration_seconds:>9.3f}s {qccd.fidelity:>14.3e} "
              f"{qccd.num_shuttles:>9}")

    print()
    print("The single-trap baseline has no shuttling overhead, but its per-gate")
    print("error grows with the chain length (A ~ N/ln N) and its gates run")
    print("strictly serially -- and beyond ~50 ions single-chain control is not")
    print("experimentally feasible at all (Section III.A), which is the regime")
    print("the QCCD architecture targets.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Communication topology study: reproduce Figure 7 of the paper.

Compares the linear (L6) and grid (G2x3) topologies for every Table II
application across the trap-capacity sweep, printing runtime and fidelity per
topology and the SquareRoot motional-heating panel (Figure 7g).

Run:  python examples/topology_study.py [--small]
"""

import argparse

from repro.analysis.compare import topology_fidelity_ratio
from repro.analysis.series import flatten_nested_series, format_series_table
from repro.apps import scaled_suite, table2_suite
from repro.toolflow import ArchitectureConfig, figure7


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true",
                        help="run a fast, scaled-down version of the study")
    args = parser.parse_args()

    if args.small:
        suite = scaled_suite(16)
        capacities = (6, 8, 10, 12)
        topologies = ("L4", "G2x2")
    else:
        suite = table2_suite()
        capacities = (14, 18, 22, 26, 30, 34)
        topologies = ("L6", "G2x3")

    linear, grid = topologies
    print(f"Topology study: {linear} (linear) vs {grid} (grid), FM gates, GS reordering")
    bundle = figure7(suite, capacities=capacities, topologies=topologies,
                     base=ArchitectureConfig(gate="FM", reorder="GS"))

    print()
    print(format_series_table(capacities, flatten_nested_series(bundle["runtime_s"]),
                              title="Figure 7a-f: runtime (s) per topology"))
    print()
    print(format_series_table(capacities, flatten_nested_series(bundle["fidelity"]),
                              title="Figure 7a-f: fidelity per topology",
                              value_format="{:.3e}"))
    print()
    print(format_series_table(capacities, bundle["squareroot_heating"],
                              title="Figure 7g: SquareRoot motional heating (quanta)"))

    print()
    print("Topology sensitivity (largest per-capacity fidelity ratio):")
    for name in suite:
        grid_over_linear = topology_fidelity_ratio(bundle["fidelity"][name],
                                                   better=grid, worse=linear)
        linear_over_grid = topology_fidelity_ratio(bundle["fidelity"][name],
                                                   better=linear, worse=grid)
        preferred = grid if grid_over_linear > linear_over_grid else linear
        factor = max(grid_over_linear, linear_over_grid)
        print(f"  {name:12s} prefers {preferred:5s} (up to {factor:,.1f}x)")


if __name__ == "__main__":
    main()

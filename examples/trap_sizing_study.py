#!/usr/bin/env python3
"""Trap-sizing study: reproduce Figure 6 of the paper.

Sweeps the per-trap ion capacity of a linear 6-trap device (FM gates, GS
reordering) over the six Table II applications and prints the series of every
panel: runtime, QFT time breakdown, fidelity, motional energy, and the
Supremacy error-source split.

Run:  python examples/trap_sizing_study.py [--small]

With ``--small`` the study runs on 16-qubit versions of the applications and a
short capacity sweep (seconds instead of minutes).
"""

import argparse

from repro.analysis.compare import best_worst_ratio, crossover_capacity
from repro.analysis.series import format_series_table
from repro.apps import scaled_suite, table2_suite
from repro.toolflow import ArchitectureConfig, figure6
from repro.visualize import ascii_line_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true",
                        help="run a fast, scaled-down version of the study")
    args = parser.parse_args()

    if args.small:
        suite = scaled_suite(16)
        capacities = (6, 8, 10, 12)
        base = ArchitectureConfig(topology="L4", gate="FM", reorder="GS")
    else:
        suite = table2_suite()
        capacities = (14, 18, 22, 26, 30, 34)
        base = ArchitectureConfig(topology="L6", gate="FM", reorder="GS")

    print(f"Trap sizing study on {base.topology} (FM gates, GS reordering)")
    print(f"Applications: {', '.join(suite)}")
    print(f"Capacities: {list(capacities)}")
    bundle = figure6(suite, capacities=capacities, base=base)

    print()
    print(format_series_table(capacities, bundle["runtime_s"],
                              title="Figure 6a: application runtime (s)"))
    print()
    print(format_series_table(capacities, bundle["qft_breakdown"],
                              title="Figure 6b: QFT computation vs communication (s)"))
    print()
    print(format_series_table(capacities, bundle["fidelity"],
                              title="Figure 6c-e: application fidelity",
                              value_format="{:.3e}"))
    print()
    print(format_series_table(capacities, bundle["max_motional_energy"],
                              title="Figure 6f: max motional energy (quanta)"))
    print()
    print(format_series_table(capacities, bundle["supremacy_error"],
                              title="Figure 6g: Supremacy MS error contributions",
                              value_format="{:.3e}"))

    print()
    print(ascii_line_chart(list(capacities), bundle["fidelity"],
                           title="Application fidelity vs trap capacity"))

    print()
    print("Headline observations:")
    for name, series in bundle["fidelity"].items():
        ratio = best_worst_ratio(series)
        best = crossover_capacity(list(capacities), series)
        print(f"  {name:12s} best/worst fidelity ratio {ratio:8.1f}x, "
              f"best capacity {best}")


if __name__ == "__main__":
    main()

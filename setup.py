"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that legacy editable installs (``pip install -e . --no-use-pep517``)
work on offline hosts that lack the ``wheel`` package required by PEP 660
editable builds.
"""

from setuptools import setup

# The ISA operation dataclasses use ``slots=True`` (Python 3.10+).
setup(python_requires=">=3.10")

"""QCCDSim: a design toolflow for QCCD-based trapped-ion quantum computers.

This package reproduces the system described in Murali et al.,
"Architecting Noisy Intermediate-Scale Trapped Ion Quantum Computers"
(ISCA 2020).  It contains:

* a quantum circuit IR and the NISQ benchmark suite of Table II (:mod:`repro.ir`,
  :mod:`repro.apps`);
* a hardware model of QCCD devices -- traps, segments, junctions, topologies
  (:mod:`repro.hardware`);
* performance and noise models for gates, shuttling and heating
  (:mod:`repro.models`);
* a backend compiler that maps circuits onto a QCCD device and orchestrates
  shuttling (:mod:`repro.compiler`);
* a simulator that estimates runtime, fidelity and device-level metrics
  (:mod:`repro.sim`);
* a design-space exploration toolflow regenerating the paper's figures and
  tables (:mod:`repro.toolflow`).

Quickstart::

    from repro import build_device, compile_circuit, simulate
    from repro.apps import qft

    device = build_device("L6", trap_capacity=20, gate="FM", reorder="GS", num_qubits=64)
    circuit = qft.qft_circuit(64)
    program = compile_circuit(circuit, device)
    result = simulate(program, device)
    print(result.fidelity, result.duration)
"""

from repro.hardware import build_device, QCCDDevice
from repro.compiler import compile_circuit
from repro.sim import simulate, SimulationResult
from repro.toolflow import ArchitectureConfig, run_experiment

__version__ = "1.0.0"

__all__ = [
    "build_device",
    "QCCDDevice",
    "compile_circuit",
    "simulate",
    "SimulationResult",
    "ArchitectureConfig",
    "run_experiment",
    "__version__",
]

"""Post-processing of experiment results.

* :mod:`~repro.analysis.series` -- turn figure bundles into aligned text
  tables (the "same rows/series the paper reports").
* :mod:`~repro.analysis.compare` -- headline comparisons the paper quotes in
  prose (best-versus-worst fidelity ratios, topology ratios, gate-choice
  improvements).
* :mod:`~repro.analysis.breakdown` -- error-source and time-breakdown helpers.
"""

from repro.analysis.series import format_series_table, series_to_rows
from repro.analysis.compare import (
    best_worst_ratio,
    topology_fidelity_ratio,
    gate_choice_improvement,
    reorder_fidelity_ratio,
)
from repro.analysis.breakdown import error_contributions, time_breakdown

__all__ = [
    "format_series_table",
    "series_to_rows",
    "best_worst_ratio",
    "topology_fidelity_ratio",
    "gate_choice_improvement",
    "reorder_fidelity_ratio",
    "error_contributions",
    "time_breakdown",
]

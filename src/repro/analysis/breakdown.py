"""Error-source and time-breakdown helpers.

These mirror the per-figure analyses in Section IX: the Supremacy gate-error
attribution of Figure 6g and the computation/communication time split of
Figure 6b.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.results import SimulationResult


def error_contributions(result: SimulationResult) -> Dict[str, float]:
    """Mean per-MS-gate error split into its two mechanisms (Figure 6g)."""

    total = result.mean_background_error + result.mean_motional_error
    return {
        "background": result.mean_background_error,
        "motional": result.mean_motional_error,
        "total": total,
        "motional_share": (result.mean_motional_error / total) if total > 0 else 0.0,
    }


def time_breakdown(result: SimulationResult) -> Dict[str, float]:
    """Computation versus communication split of the makespan (Figure 6b)."""

    return {
        "total_s": result.duration_seconds,
        "computation_s": result.computation_seconds,
        "communication_s": result.communication_seconds,
        "communication_fraction": (
            result.communication_time / result.duration if result.duration > 0 else 0.0
        ),
    }


def heating_profile(result: SimulationResult) -> Dict[str, float]:
    """Per-trap final motional energies plus the device maximum (Figure 6f)."""

    profile = dict(result.final_trap_energies)
    profile["device_max_over_time"] = result.max_motional_energy
    return profile

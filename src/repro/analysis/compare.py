"""Headline comparisons the paper quotes in prose.

Section IX/X summarise the sweeps with a handful of ratios: best-versus-worst
fidelity over the capacity sweep (15x for Supremacy), grid-versus-linear
fidelity (up to 7000x for SquareRoot), the best gate choice improvement (up to
9x over AM1) and GS-versus-IS.  These helpers compute those ratios from the
figure bundles so EXPERIMENTS.md can record paper-versus-measured values.
"""

from __future__ import annotations

from typing import Dict, Sequence


def _safe_ratio(numerator: float, denominator: float) -> float:
    """Ratio guarded against a zero denominator (returns ``inf``)."""

    if denominator <= 0.0:
        return float("inf") if numerator > 0.0 else 1.0
    return numerator / denominator


def best_worst_ratio(series: Sequence[float]) -> float:
    """max(series) / min(series); how much a sweep axis matters."""

    values = [value for value in series if value is not None]
    if not values:
        return 1.0
    return _safe_ratio(max(values), min(values))


def topology_fidelity_ratio(fidelity_by_topology: Dict[str, Sequence[float]],
                            better: str, worse: str) -> float:
    """Largest per-capacity fidelity ratio of ``better`` over ``worse``."""

    best = 1.0
    for value_better, value_worse in zip(fidelity_by_topology[better],
                                         fidelity_by_topology[worse]):
        best = max(best, _safe_ratio(value_better, value_worse))
    return best


def gate_choice_improvement(fidelity_by_combo: Dict[str, Sequence[float]],
                            best_gate: str, baseline_gate: str,
                            reorder: str = "GS") -> float:
    """Largest per-capacity fidelity ratio of one gate choice over another."""

    best_series = fidelity_by_combo[f"{best_gate}-{reorder}"]
    base_series = fidelity_by_combo[f"{baseline_gate}-{reorder}"]
    best = 1.0
    for value_best, value_base in zip(best_series, base_series):
        best = max(best, _safe_ratio(value_best, value_base))
    return best


def reorder_fidelity_ratio(fidelity_by_combo: Dict[str, Sequence[float]],
                           gate: str = "FM") -> float:
    """Largest per-capacity fidelity ratio of GS over IS for one gate choice."""

    gs_series = fidelity_by_combo[f"{gate}-GS"]
    is_series = fidelity_by_combo[f"{gate}-IS"]
    best = 1.0
    for value_gs, value_is in zip(gs_series, is_series):
        best = max(best, _safe_ratio(value_gs, value_is))
    return best


def crossover_capacity(capacities: Sequence[int], series: Sequence[float]) -> int:
    """Capacity at which ``series`` peaks (the paper's 15-25 ion sweet spot)."""

    values = list(series)
    if not values:
        raise ValueError("empty series")
    best_index = max(range(len(values)), key=lambda index: values[index])
    return capacities[best_index]

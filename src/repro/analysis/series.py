"""Series formatting: figure bundles -> text tables.

The figure harnesses return nested dictionaries of series; these helpers
flatten them into rows and render aligned text so the benchmark harnesses can
print exactly the series the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def series_to_rows(capacities: Sequence[int],
                   series: Dict[str, Sequence[float]]) -> List[Dict[str, object]]:
    """Transpose ``{label: [v_per_capacity]}`` into one row per capacity."""

    rows = []
    for index, capacity in enumerate(capacities):
        row: Dict[str, object] = {"capacity": capacity}
        for label, values in series.items():
            row[label] = values[index] if index < len(values) else None
        rows.append(row)
    return rows


def format_series_table(capacities: Sequence[int],
                        series: Dict[str, Sequence[float]],
                        title: str = "",
                        value_format: str = "{:.4g}") -> str:
    """Render ``{label: series}`` as an aligned text table.

    The first column is the sweep axis (trap capacity); one column per label.
    """

    labels = list(series)
    widths = {label: max(len(label), 10) for label in labels}
    lines = []
    if title:
        lines.append(title)
    header = f"{'capacity':>9}  " + "  ".join(f"{label:>{widths[label]}}" for label in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for index, capacity in enumerate(capacities):
        cells = []
        for label in labels:
            values = series[label]
            if index < len(values) and values[index] is not None:
                cells.append(f"{value_format.format(values[index]):>{widths[label]}}")
            else:
                cells.append(f"{'-':>{widths[label]}}")
        lines.append(f"{capacity:>9}  " + "  ".join(cells))
    return "\n".join(lines)


def flatten_nested_series(nested: Dict[str, Dict[str, Sequence[float]]],
                          separator: str = "/") -> Dict[str, Sequence[float]]:
    """Flatten ``{app: {variant: series}}`` into ``{"app/variant": series}``."""

    flat: Dict[str, Sequence[float]] = {}
    for outer, inner in nested.items():
        for label, values in inner.items():
            flat[f"{outer}{separator}{label}"] = values
    return flat

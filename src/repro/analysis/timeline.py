"""Timeline analytics: what the device was doing, when.

When a simulation is run with ``keep_timeline=True`` the result carries one
(start, finish, kind) record per executed operation.  These helpers turn that
into the schedule-level views an architect actually looks at:

* per-resource utilisation (how busy each trap was, and with what),
* a parallelism profile (how many operations overlap at any time),
* the critical path through the dependency graph (which operations bound the
  makespan),
* a coarse Gantt rendering for terminal inspection.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.isa.operations import OpKind
from repro.isa.program import QCCDProgram
from repro.sim.results import OperationRecord, SimulationResult


def _require_timeline(result: SimulationResult) -> List[OperationRecord]:
    if result.timeline is None:
        raise ValueError("simulate(..., keep_timeline=True) is required for timeline analytics")
    return result.timeline


def trap_utilisation(program: QCCDProgram, result: SimulationResult) -> Dict[str, Dict[str, float]]:
    """Per-trap busy-time fractions split into gates and communication.

    Returns ``{trap: {"gate": f, "communication": f, "idle": f}}`` with the
    fractions of the makespan the trap spent in each state.
    """

    timeline = _require_timeline(result)
    makespan = result.duration or 1.0
    busy: Dict[str, Dict[str, float]] = defaultdict(lambda: {"gate": 0.0, "communication": 0.0})
    for record in timeline:
        op = program[record.op_id]
        for resource in op.resources:
            if not resource.startswith("T"):
                continue
            bucket = "communication" if op.kind.is_communication else "gate"
            busy[resource][bucket] += record.duration
    report: Dict[str, Dict[str, float]] = {}
    for trap, buckets in busy.items():
        gate = buckets["gate"] / makespan
        communication = buckets["communication"] / makespan
        report[trap] = {
            "gate": gate,
            "communication": communication,
            "idle": max(0.0, 1.0 - gate - communication),
        }
    return report


def parallelism_profile(result: SimulationResult, num_bins: int = 50) -> List[float]:
    """Average number of concurrently executing operations per time bin."""

    timeline = _require_timeline(result)
    if not timeline or result.duration <= 0:
        return [0.0] * num_bins
    bin_width = result.duration / num_bins
    busy = [0.0] * num_bins
    for record in timeline:
        if record.duration <= 0:
            continue
        first = int(record.start // bin_width)
        last = int(min(result.duration - 1e-12, record.finish) // bin_width)
        for index in range(first, min(last, num_bins - 1) + 1):
            bin_start = index * bin_width
            bin_end = bin_start + bin_width
            overlap = min(record.finish, bin_end) - max(record.start, bin_start)
            if overlap > 0:
                busy[index] += overlap
    return [value / bin_width for value in busy]


def peak_parallelism(result: SimulationResult) -> int:
    """Maximum number of operations executing simultaneously."""

    timeline = _require_timeline(result)
    events: List[Tuple[float, int]] = []
    for record in timeline:
        if record.duration <= 0:
            continue
        events.append((record.start, +1))
        events.append((record.finish, -1))
    events.sort(key=lambda item: (item[0], item[1]))
    current = peak = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def critical_path(program: QCCDProgram, result: SimulationResult) -> List[int]:
    """Op ids of one dependency chain realising the makespan.

    Walks backwards from the last-finishing operation, at each step following
    the predecessor whose finish time equals the current operation's start
    (resource waits are skipped over, so the returned chain is the *data*
    critical path).
    """

    timeline = _require_timeline(result)
    finish = {record.op_id: record.finish for record in timeline}
    start = {record.op_id: record.start for record in timeline}
    current = max(finish, key=lambda op_id: finish[op_id])
    chain = [current]
    while True:
        op = program[current]
        predecessors = [dep for dep in op.dependencies
                        if abs(finish[dep] - start[current]) < 1e-9]
        if not predecessors:
            break
        current = max(predecessors, key=lambda dep: finish[dep])
        chain.append(current)
    chain.reverse()
    return chain


def communication_on_critical_path(program: QCCDProgram, result: SimulationResult) -> float:
    """Fraction of the critical path's duration spent on communication ops."""

    timeline = {record.op_id: record for record in _require_timeline(result)}
    chain = critical_path(program, result)
    total = sum(timeline[op_id].duration for op_id in chain)
    if total <= 0:
        return 0.0
    comm = sum(timeline[op_id].duration for op_id in chain
               if program[op_id].kind.is_communication)
    return comm / total


def format_gantt(program: QCCDProgram, result: SimulationResult,
                 width: int = 72) -> str:
    """A coarse per-trap Gantt chart (``#`` gates, ``~`` communication)."""

    timeline = _require_timeline(result)
    makespan = result.duration or 1.0
    traps = sorted({resource for record in timeline
                    for resource in program[record.op_id].resources
                    if resource.startswith("T")})
    rows = {trap: [" "] * width for trap in traps}
    for record in timeline:
        op = program[record.op_id]
        symbol = "~" if op.kind.is_communication else "#"
        for resource in op.resources:
            if resource not in rows:
                continue
            first = int(record.start / makespan * (width - 1))
            last = int(record.finish / makespan * (width - 1))
            for column in range(first, last + 1):
                rows[resource][column] = symbol
    label_width = max((len(trap) for trap in traps), default=2)
    lines = [f"{'':<{label_width}}  0 {'-' * (width - 10)} {result.duration_seconds:.3f}s"]
    for trap in traps:
        lines.append(f"{trap:<{label_width}} |{''.join(rows[trap])}|")
    lines.append("legend: '#' gate/measure, '~' shuttle/reorder, ' ' idle")
    return "\n".join(lines)

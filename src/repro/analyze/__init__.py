"""Static analysis: program verifier, race detector, determinism linter.

Three checkers with one diagnostic vocabulary (see
``docs/static-analysis.md`` for the catalogue):

* :func:`verify_program` -- prove a compiled program legal against the
  paper's trap/shuttle/gate rules without simulating (``QV*`` checks).
* :func:`detect_races` -- replay resource claims symbolically and flag
  double-booked traps/segments/junctions (``RC*`` checks).
* :func:`lint_paths` -- ``ast``-based determinism rules over the codebase
  (``DT*`` checks).

``repro check`` is the CLI surface; ``--check`` on ``run``/``sweep``/
``dse run`` arms :func:`verify_or_raise` on every compile at runtime.
"""

from repro.analyze.diagnostics import (
    CHECKS,
    Diagnostic,
    Report,
    SEVERITIES,
    check_severity,
    diag,
    merge_reports,
)
from repro.analyze.lint import lint_paths, lint_source
from repro.analyze.races import detect_races
from repro.analyze.runtime import (
    StaticAnalysisError,
    checks_enabled,
    enable_checks,
    reset_checks,
    verify_or_raise,
)
from repro.analyze.verifier import quick_validate, verify_program

__all__ = [
    "CHECKS",
    "Diagnostic",
    "Report",
    "SEVERITIES",
    "StaticAnalysisError",
    "check_severity",
    "checks_enabled",
    "detect_races",
    "diag",
    "enable_checks",
    "lint_paths",
    "lint_source",
    "merge_reports",
    "quick_validate",
    "reset_checks",
    "verify_or_raise",
    "verify_program",
]

"""Diagnostics: the finding type shared by every static-analysis check.

A :class:`Diagnostic` is one finding -- a check id from the catalogue below,
a severity, a human message, a location (an op index for program checks, a
``path:line`` for source checks) and a fix hint.  A :class:`Report` is an
ordered collection of findings with the aggregation the CLI and CI gate
need: error/warning counts, formatting, a JSON view and ``raise_if_errors``.

The check catalogue (ids, severities, what each rule means and how to
suppress one) is documented in ``docs/static-analysis.md``; every entry
there mirrors a row of :data:`CHECKS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

#: Severity levels, most severe first.  ``error`` fails `repro check` and the
#: CI static-analysis job; ``warning`` is reported but does not fail;
#: ``info`` notes reduced analysis scope (e.g. no device for connectivity).
SEVERITIES = ("error", "warning", "info")

#: The check catalogue: id -> (title, default severity, one-line rule).
#: QV* = program verifier, RC* = schedule race detector, DT* = determinism
#: linter.  ``docs/static-analysis.md`` is the narrative version of this
#: table; keep the two in sync.
CHECKS: Dict[str, Tuple[str, str, str]] = {
    "QV000": ("verifier-scope", "info",
              "analysis ran with reduced scope (e.g. no device topology, so "
              "capacity/connectivity checks were skipped)"),
    "QV001": ("trap-capacity", "error",
              "a trap's occupancy exceeds its capacity (one transient "
              "overfill ion is legal only between a pass-through merge and "
              "the relieving split)"),
    "QV002": ("occupancy-conservation", "error",
              "an ion is in two traps at once, shuttled while not in "
              "transit, split from a trap it is not in, or left in transit "
              "at program end"),
    "QV003": ("gate-colocation", "error",
              "a gate/measure/swap acts on ions that are not all in the "
              "declared trap's chain"),
    "QV004": ("annotation-mismatch", "error",
              "a compile-time annotation (chain_length, chain_size, "
              "ion_distance, split side, swap adjacency) disagrees with the "
              "replayed chain state"),
    "QV005": ("qubit-liveness", "error",
              "a program qubit's tracked ion binding disagrees with an "
              "operation's qubit operands, or an op references an unplaced "
              "ion"),
    "QV006": ("dependency-coverage", "error",
              "op ids are not dense, a dependency is out of range, or two "
              "ops touching the same ion have no happens-before path "
              "through dependencies and shared resources (the sim/batch "
              "lowering would misorder them)"),
    "QV007": ("route-connectivity", "error",
              "a route references unknown hardware, a move's segment does "
              "not join its endpoints, a junction degree disagrees with the "
              "topology, or a merge/split side disagrees with the port "
              "geometry"),
    "RC001": ("trap-claim-race", "error",
              "two operations overlap in time on the same trap under the "
              "dependency-only schedule (a serializing dependency is "
              "missing)"),
    "RC002": ("resource-overlap", "error",
              "two operations overlap in time on the same trap/segment/"
              "junction under the merged dependency+resource schedule (the "
              "sim/batch lowering would double-book the resource)"),
    "RC003": ("dependency-order", "error",
              "an operation starts before a declared dependency finishes "
              "under the analysed schedule"),
    "DT001": ("unseeded-random", "error",
              "module-level random.* calls or an unseeded random.Random() "
              "make runs irreproducible; use random.Random(seed)"),
    "DT002": ("wall-clock", "error",
              "raw time.time()/datetime.now() outside LeaseClock and "
              "repro.obs skews lease arithmetic and breaks fake-clock "
              "tests; route through LeaseClock"),
    "DT003": ("set-iteration", "error",
              "iterating a bare set in a deterministic path makes ordering "
              "hash-dependent; iterate a sorted() view or the original "
              "ordered source"),
    "DT004": ("schema-version", "error",
              "a public io/serialization payload builder does not stamp "
              "schema_version; versionless artefacts cannot be migrated"),
    "DT005": ("span-naming", "warning",
              "a span name does not follow the docs/observability.md "
              "convention (dotted lowercase, known category first)"),
}


def check_severity(check_id: str) -> str:
    """Default severity for ``check_id`` (``error`` for unknown ids)."""

    entry = CHECKS.get(check_id)
    return entry[1] if entry else "error"


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    check_id: str
    severity: str
    message: str
    location: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def format(self) -> str:
        where = f"{self.location}: " if self.location else ""
        text = f"{self.check_id} [{self.severity}] {where}{self.message}"
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, str]:
        return {"check_id": self.check_id, "severity": self.severity,
                "message": self.message, "location": self.location,
                "hint": self.hint}


def diag(check_id: str, message: str, *, location: str = "", hint: str = "",
         severity: str = "") -> Diagnostic:
    """A :class:`Diagnostic` with the catalogue's default severity."""

    return Diagnostic(check_id=check_id,
                      severity=severity or check_severity(check_id),
                      message=message, location=location, hint=hint)


@dataclass
class Report:
    """An ordered collection of findings from one analysis pass."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "Report") -> "Report":
        self.diagnostics.extend(other.diagnostics)
        return self

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/infos do not fail a check)."""

        return not self.errors

    def by_check(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for d in self.diagnostics:
            counts[d.check_id] = counts.get(d.check_id, 0) + 1
        return counts

    def summary(self) -> str:
        return (f"{self.count('error')} error(s), "
                f"{self.count('warning')} warning(s), "
                f"{self.count('info')} info")

    def format(self, *, limit: int = 0) -> str:
        """Human-readable listing, errors first; ``limit=0`` shows all."""

        ordering = {severity: rank for rank, severity in enumerate(SEVERITIES)}
        ranked = sorted(range(len(self.diagnostics)),
                        key=lambda i: (ordering[self.diagnostics[i].severity], i))
        shown = ranked[:limit] if limit else ranked
        lines = [self.diagnostics[i].format() for i in shown]
        if limit and len(ranked) > limit:
            lines.append(f"... and {len(ranked) - limit} more")
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "counts": {severity: self.count(severity)
                       for severity in SEVERITIES},
            "by_check": self.by_check(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def raise_if_errors(self, exc_type=ValueError) -> None:
        """Raise ``exc_type`` carrying the formatted errors, if any."""

        errors = self.errors
        if errors:
            raise exc_type("; ".join(d.message for d in errors))


def merge_reports(reports: Iterable[Report]) -> Report:
    """Concatenate several reports into one."""

    merged = Report()
    for report in reports:
        merged.extend(report)
    return merged

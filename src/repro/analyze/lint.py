"""Codebase determinism linter (stdlib ``ast``): rules DT001..DT005.

The repo's tier-1 guarantee is byte-identical exports across serial,
parallel and dispatched execution.  Each rule here bans one way that
guarantee has historically been (or could be) broken:

* ``DT001`` -- module-level ``random.*`` calls and unseeded
  ``random.Random()``.  All randomness must flow from an explicit seed.
* ``DT002`` -- raw ``time.time()`` / ``datetime.now()`` outside
  ``repro.obs`` and ``LeaseClock``.  Wall-clock reads must route through
  the injectable clock so fake-clock tests and lease arithmetic hold.
* ``DT003`` -- iterating a bare ``set`` (for loops and comprehension
  sources).  Set iteration order is hash-randomized across processes;
  order-insensitive consumers (``sorted``/``min``/``max``/``sum``/``len``/
  ``any``/``all``/``set``/``frozenset``, membership tests) are exempt.
* ``DT004`` -- public payload builders in ``io/serialization.py``
  (``*_to_dict`` / ``*_to_json``) must stamp ``schema_version``.
* ``DT005`` (warning) -- ``span()`` names must follow the
  ``docs/observability.md`` convention: dotted lowercase with a known
  category (``compile|sim|sweep|dse|check|obs|trace``) first.

Suppression: a ``# repro: allow DT003`` comment (comma-separated ids) on
the offending line or the line above disables those checks there.  Every
suppression is greppable; the satellite policy is to *fix* findings in
``src/repro`` rather than allowlist them, so the tree carries only the
handful documented in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.analyze.diagnostics import Report, diag

#: Call targets whose argument may be an unordered set: they either do not
#: observe iteration order or impose their own.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})

#: Wall-clock reads banned outside the clock abstraction (resolved dotted
#: names after import-alias expansion).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_SPAN_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
_SPAN_CATEGORIES = frozenset({"compile", "sim", "sweep", "dse", "check",
                              "obs", "trace"})

_SUPPRESS = re.compile(r"#\s*repro:\s*allow\s+([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)")

_PAYLOAD_DEF = re.compile(r".*_to_(dict|json)$")


def lint_paths(paths: Iterable[Union[str, Path]]) -> Report:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""

    report = Report()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files = sorted(p for p in path.rglob("*.py")
                           if "__pycache__" not in p.parts)
        else:
            files = [path]
        for file in files:
            report.extend(lint_source(file.read_text(encoding="utf-8"),
                                      str(file)))
    return report


def lint_source(source: str, path: str = "<string>") -> Report:
    """Lint one module's source text; ``path`` labels the findings."""

    report = Report()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.add(diag("DT001", f"could not parse: {exc.msg}",
                        location=f"{path}:{exc.lineno or 0}",
                        hint="fix the syntax error so the file can be "
                             "analysed", severity="error"))
        return report
    suppressed = _suppressions(source)
    linter = _Linter(path, suppressed, report)
    linter.visit(tree)
    if _is_serialization_module(path):
        _check_schema_version(tree, path, suppressed, report)
    return report


def _suppressions(source: str) -> Dict[int, Set[str]]:
    lines: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            lines[number] = ids
    return lines


def _is_serialization_module(path: str) -> bool:
    parts = Path(path).parts
    return len(parts) >= 2 and parts[-2] == "io" \
        and parts[-1] == "serialization.py"


def _in_obs(path: str) -> bool:
    return "obs" in Path(path).parts


class _Linter(ast.NodeVisitor):
    """One pass over a module: DT001/DT002/DT003/DT005."""

    def __init__(self, path: str, suppressed: Dict[int, Set[str]],
                 report: Report) -> None:
        self.path = path
        self.suppressed = suppressed
        self.report = report
        self.aliases: Dict[str, str] = {}
        # Names bound to set values in the current scope (module or the
        # innermost function); conservative but enough for the repo idiom
        # of building a set and iterating it a few lines later.
        self.set_names: List[Set[str]] = [set()]
        self.clock_exempt = _in_obs(path)
        self._lease_clock_depth = 0
        # Comprehensions passed directly to an order-insensitive call are
        # exempt from DT003 even when they draw from a set.
        self._exempt_comprehensions: Set[int] = set()

    # ------------------------------------------------------------------ #
    def _flag(self, check_id: str, node: ast.AST, message: str,
              hint: str) -> None:
        line = getattr(node, "lineno", 0)
        for probe in (line, line - 1):
            ids = self.suppressed.get(probe)
            if ids and check_id in ids:
                return
        self.report.add(diag(check_id, message,
                             location=f"{self.path}:{line}", hint=hint))

    # --- imports ------------------------------------------------------- #
    def visit_Import(self, node: ast.Import) -> None:
        for name in node.names:
            self.aliases[name.asname or name.name.split(".")[0]] = name.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for name in node.names:
                if name.name != "*":
                    self.aliases[name.asname or name.name] = \
                        f"{node.module}.{name.name}"
        self.generic_visit(node)

    def _resolved(self, node: ast.AST) -> Optional[str]:
        """Dotted name of ``node`` with import aliases expanded."""

        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # --- scopes -------------------------------------------------------- #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.set_names.append(set())
        self.generic_visit(node)
        self.set_names.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_clock = node.name == "LeaseClock"
        if is_clock:
            self._lease_clock_depth += 1
        self.set_names.append(set())
        self.generic_visit(node)
        self.set_names.pop()
        if is_clock:
            self._lease_clock_depth -= 1

    # --- assignments: track set-valued names --------------------------- #
    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                scope = self.set_names[-1]
                if is_set:
                    scope.add(target.id)
                else:
                    scope.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            scope = self.set_names[-1]
            if self._is_set_expr(node.value):
                scope.add(node.target.id)
            else:
                scope.discard(node.target.id)
        self.generic_visit(node)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self.set_names)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_set_expr(node.left) \
                and self._is_set_expr(node.right)
        return False

    # --- DT003: iteration sites ---------------------------------------- #
    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def _visit_comprehension_node(self, node) -> None:
        if id(node) not in self._exempt_comprehensions:
            for generator in node.generators:
                self._check_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_SetComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    def _check_iteration(self, source: ast.expr, site: ast.AST) -> None:
        if self._is_set_expr(source):
            described = source.id if isinstance(source, ast.Name) \
                else "a set expression"
            self._flag(
                "DT003", site,
                f"iteration over bare set {described!r}; ordering is "
                f"hash-dependent across processes",
                "iterate sorted(...) or the original ordered source "
                "(e.g. the topology's trap tuple) instead")

    # --- calls: DT001 / DT002 / DT005 and comprehension exemptions ------ #
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.SetComp)):
                    self._exempt_comprehensions.add(id(arg))
        resolved = self._resolved(node.func)
        if resolved is not None:
            self._check_random(node, resolved)
            self._check_clock(node, resolved)
        self._check_span(node)
        self.generic_visit(node)

    def _check_random(self, node: ast.Call, resolved: str) -> None:
        if not resolved.startswith("random."):
            return
        tail = resolved[len("random."):]
        if tail in ("Random", "SystemRandom"):
            if tail == "Random" and (node.args or node.keywords):
                return  # seeded constructor -- the sanctioned idiom
            self._flag(
                "DT001", node,
                f"unseeded {resolved}() constructor",
                "construct random.Random(seed) with an explicit seed")
            return
        self._flag(
            "DT001", node,
            f"module-level {resolved}() uses the shared unseeded RNG",
            "thread a random.Random(seed) instance through instead")

    def _check_clock(self, node: ast.Call, resolved: str) -> None:
        if resolved not in _WALL_CLOCK:
            return
        if self.clock_exempt or self._lease_clock_depth > 0:
            return
        self._flag(
            "DT002", node,
            f"raw wall-clock read {resolved}()",
            "route the read through LeaseClock (repro.dse.dispatch) so "
            "tests can inject a fake clock")

    def _check_span(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else ""
        if name != "span" or not node.args:
            return
        first = node.args[0]
        if not isinstance(first, ast.Constant) \
                or not isinstance(first.value, str):
            return
        span_name = first.value
        category = span_name.split(".", 1)[0]
        if not _SPAN_NAME.match(span_name) \
                or category not in _SPAN_CATEGORIES:
            self._flag(
                "DT005", node,
                f"span name {span_name!r} does not follow the "
                f"docs/observability.md convention",
                "use dotted lowercase with a known category first, e.g. "
                "'sim.batch.plan' or 'check.verify'")


def _check_schema_version(tree: ast.Module, path: str,
                          suppressed: Dict[int, Set[str]],
                          report: Report) -> None:
    """DT004: public ``*_to_dict``/``*_to_json`` defs stamp schema_version."""

    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_") or not _PAYLOAD_DEF.match(node.name):
            continue
        stamped = any(
            isinstance(child, ast.Constant) and child.value == "schema_version"
            for child in ast.walk(node))
        if stamped:
            continue
        line = node.lineno
        if any("DT004" in suppressed.get(probe, ())
               for probe in (line, line - 1)):
            continue
        report.add(diag(
            "DT004",
            f"payload builder {node.name}() does not stamp schema_version",
            location=f"{path}:{line}",
            hint="add \"schema_version\": SCHEMA_VERSION to the payload, or "
                 "suppress with `# repro: allow DT004` if the dict is an "
                 "embedded fragment of a stamped payload"))

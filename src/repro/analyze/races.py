"""Schedule race detector: replay resource claims symbolically.

The detector computes two symbolic schedules from the op stream -- no
device, no durations model, unit time per op unless the caller supplies
durations -- and flags double-booked hardware:

* **Dependency-only schedule** (``RC001``): every op starts as soon as its
  *declared* dependencies finish.  If two ops then overlap on the same trap,
  the compiler emitted a program whose correctness relies on the engines'
  implicit program-order resource serialization rather than on an explicit
  dependency -- exactly the class of bug a pass-pipeline rewrite could
  introduce silently.  Segments and junctions are exempt here by design:
  the builder deliberately carries no cross-route dependency for them and
  both engines serialize them through ``free_at`` / merged predecessors.
* **Merged dependency+resource schedule** (``RC002``/``RC003``): the exact
  predecessor relation :func:`repro.sim.batch._merged_predecessors` lowers
  to.  Under it, *no* resource may ever be double-booked and no op may start
  before a declared dependency finishes; a finding means the lowering itself
  (or an injected predecessor table, via the ``predecessors`` hook used by
  the mutation-corpus tests) is broken.

Both schedules are list-scheduling forward passes, O(ops + deps); the
overlap scan sorts each resource's claim intervals, O(claims log claims).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analyze.diagnostics import Report, diag
from repro.isa.program import QCCDProgram
from repro.sim.batch import _merged_predecessors
from repro.sim.engine import _op_records

Predecessors = Sequence[Union[int, Tuple[int, ...]]]


def detect_races(program: QCCDProgram, *,
                 durations: Optional[Sequence[float]] = None,
                 predecessors: Optional[Predecessors] = None) -> Report:
    """Run the RC001/RC002/RC003 checks over ``program``.

    ``durations`` replaces the default unit duration per op (the checks are
    about ordering, not absolute time, so units suffice -- but a device's
    real durations can be threaded through for fidelity).  ``predecessors``
    replaces the merged predecessor table for the RC002/RC003 schedule; the
    mutation-corpus tests use it to model a corrupted lowering.
    """

    report = Report()
    records, resource_names = _op_records(program)
    count = len(records)
    if count == 0:
        return report
    if durations is None:
        durations = [1.0] * count
    elif len(durations) != count:
        raise ValueError(f"expected {count} durations, got {len(durations)}")

    trap_resources = _trap_resources(records, resource_names)

    # --- RC001: dependency-only schedule, trap overlap ------------------- #
    dep_start, dep_finish = _schedule_by_deps(records, durations)
    for rid, claims in _claims_by_resource(records, dep_start, dep_finish):
        if rid not in trap_resources:
            continue
        for earlier, later in _overlaps(claims):
            report.add(diag(
                "RC001",
                f"ops {earlier} and {later} overlap on trap "
                f"{resource_names[rid]} under the dependency-only "
                f"schedule",
                location=f"op {later}",
                hint=f"add a dependency from op {later} on op {earlier} "
                     f"(the builder's last-op-per-trap rule) so the order "
                     f"does not rely on implicit resource serialization"))

    # --- RC002/RC003: merged dep+resource schedule ----------------------- #
    merged = predecessors if predecessors is not None \
        else _merged_predecessors(records)
    if len(merged) != count:
        raise ValueError(f"expected {count} predecessor entries, "
                         f"got {len(merged)}")
    start, finish = _schedule_by_predecessors(merged, durations)
    for rid, claims in _claims_by_resource(records, start, finish):
        for earlier, later in _overlaps(claims):
            report.add(diag(
                "RC002",
                f"ops {earlier} and {later} overlap on "
                f"{resource_names[rid]} under the merged "
                f"dependency+resource schedule",
                location=f"op {later}",
                hint="the sim/batch lowering would double-book this "
                     "resource; the predecessor table is missing the "
                     "last-user edge"))
    for index, rec in enumerate(records):
        for dep in rec.deps:
            if 0 <= dep < index and start[index] < finish[dep] - 1e-12:
                report.add(diag(
                    "RC003",
                    f"op {index} starts at {start[index]:g} before its "
                    f"declared dependency op {dep} finishes at "
                    f"{finish[dep]:g}",
                    location=f"op {index}",
                    hint="the schedule drops a declared dependency edge; "
                         "every dep must appear among the op's "
                         "predecessors"))
    return report


def _trap_resources(records, resource_names: Tuple[str, ...]) -> frozenset:
    """Interned ids of resources that are traps (vs segments/junctions)."""

    trap_names = {rec.trap for rec in records if rec.trap}
    return frozenset(rid for rid, name in enumerate(resource_names)
                     if name in trap_names)


def _schedule_by_deps(records, durations) -> Tuple[List[float], List[float]]:
    start = [0.0] * len(records)
    finish = [0.0] * len(records)
    for index, rec in enumerate(records):
        begin = 0.0
        for dep in rec.deps:
            if 0 <= dep < index and finish[dep] > begin:
                begin = finish[dep]
        start[index] = begin
        finish[index] = begin + durations[index]
    return start, finish


def _schedule_by_predecessors(merged: Predecessors,
                              durations) -> Tuple[List[float], List[float]]:
    start = [0.0] * len(merged)
    finish = [0.0] * len(merged)
    for index, preds in enumerate(merged):
        begin = 0.0
        if isinstance(preds, int):
            if 0 <= preds < index:
                begin = finish[preds]
        else:
            for pred in preds:
                if 0 <= pred < index and finish[pred] > begin:
                    begin = finish[pred]
        start[index] = begin
        finish[index] = begin + durations[index]
    return start, finish


def _claims_by_resource(records, start, finish):
    """Yield ``(rid, [(start, finish, op_index), ...])`` per resource."""

    claims: Dict[int, List[Tuple[float, float, int]]] = {}
    for index, rec in enumerate(records):
        for rid in rec.resources:
            claims.setdefault(rid, []).append(
                (start[index], finish[index], index))
    for rid in sorted(claims):
        yield rid, claims[rid]


def _overlaps(claims: List[Tuple[float, float, int]]):
    """Yield ``(earlier_op, later_op)`` for every overlapping claim pair.

    Claims are half-open intervals ``[start, finish)``; touching endpoints
    (one op starting exactly when another finishes) are not overlaps.  Each
    op is reported at most once per resource -- against the claim it first
    collides with -- so a single missing edge yields one finding, not a
    quadratic cascade.
    """

    ordered = sorted(claims)
    frontier_finish = -1.0
    frontier_op = -1
    for begin, end, index in ordered:
        if begin < frontier_finish - 1e-12:
            yield frontier_op, index
        if end > frontier_finish:
            frontier_finish = end
            frontier_op = index

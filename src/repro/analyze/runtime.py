"""Runtime hooks: opt-in verification of every compiled program.

``--check`` on ``run``/``sweep``/``dse run`` flips a process-wide flag
(mirrored into the ``REPRO_CHECK`` environment variable so process-pool
workers inherit it); while it is set, the compile pipeline and the sweep
executor pass every program through :func:`verify_or_raise` -- the full
static verifier plus the race detector -- and abort with
:class:`StaticAnalysisError` on the first error-severity finding.

Verification is memoized per program instance (an attribute stamped on the
program, same trick as the engine's ``_sim_records`` cache), so a cached
program re-simulated across a 96-point sweep is verified once.  The
off-path cost when the flag is unset is one truthiness test; the
``bench_check.py`` benchmark holds it under the same <1% budget as the
disabled-span fast path.

Emits ``check.verify`` / ``check.races`` spans and ``check.programs`` /
``check.findings`` / ``check.errors`` counters on the PR 7 registry.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.analyze.diagnostics import Report, merge_reports
from repro.analyze.races import detect_races
from repro.analyze.verifier import verify_program
from repro.isa.program import QCCDProgram
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import span

#: Environment variable carrying the flag across process boundaries.
ENV_FLAG = "REPRO_CHECK"

_enabled: Optional[bool] = None


class StaticAnalysisError(ValueError):
    """A compiled program failed static verification under ``--check``."""

    def __init__(self, report: Report) -> None:
        super().__init__(report.format())
        self.report = report


def checks_enabled() -> bool:
    """Whether ``--check`` verification is active in this process."""

    if _enabled is not None:
        return _enabled
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def enable_checks(enabled: bool = True) -> None:
    """Turn runtime verification on (or off) for this process and children.

    The environment mirror is what carries the flag into pool workers --
    they are spawned after the CLI parses ``--check`` and re-read the
    variable on import of this module's callers.
    """

    global _enabled
    _enabled = enabled
    if enabled:
        os.environ[ENV_FLAG] = "1"
    else:
        os.environ.pop(ENV_FLAG, None)


def reset_checks() -> None:
    """Forget any explicit setting; fall back to the environment (tests)."""

    global _enabled
    _enabled = None


def verify_or_raise(program: QCCDProgram, device=None, *,
                    races: bool = True) -> None:
    """Verify ``program`` (once per instance), raising on error findings."""

    if getattr(program, "_analyze_ok", None) is program.operations:
        return
    registry = _metrics_registry()
    registry.counter("check.programs").inc()
    with span("check.verify", ops=len(program.operations)):
        report = verify_program(program, device)
    if races:
        with span("check.races"):
            report = merge_reports([report, detect_races(program)])
    registry.counter("check.findings").inc(len(report))
    errors = report.errors
    if errors:
        registry.counter("check.errors").inc(len(errors))
        raise StaticAnalysisError(report)
    program._analyze_ok = program.operations

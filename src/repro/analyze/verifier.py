"""Static program verifier: prove a compiled program legal without simulating.

The verifier replays a :class:`~repro.isa.program.QCCDProgram` against its
:class:`~repro.isa.program.InitialPlacement` symbolically -- chain contents,
transit positions and qubit/ion bindings, exactly the state the compiler's
:class:`~repro.compiler.placement_state.PlacementState` tracked while
emitting -- and checks the paper's legality rules op by op (checks ``QV001``
.. ``QV007``, catalogued in :mod:`repro.analyze.diagnostics` and
``docs/static-analysis.md``):

* **Occupancy.**  No trap ever holds more than ``capacity`` ions, except the
  single transient overfill ion of a pass-through merge (Figure 4): while a
  trap is overfilled only reorder ops (SwapGate/IonSwap) and the relieving
  Split may touch it, and the program may not end overfilled.
* **Conservation.**  An ion is in exactly one chain or in transit; splits
  take the ion from the declared trap's declared end, merges/moves/junction
  crossings act only on in-transit ions, and transit routes are continuous
  (each move departs from where the previous hop arrived).
* **Gate legality.**  Gates, measurements and swaps act only on ions
  co-trapped in the declared trap, and the program-qubit operands match the
  tracked qubit/ion binding (flipped by every gate-based SWAP).
* **Annotations.**  ``chain_length`` / ``chain_size`` / ``ion_distance`` /
  split sides / IS-hop adjacency equal what the replayed chain shows -- the
  simulator's performance and noise models read these without re-deriving
  chain contents, so a wrong annotation silently corrupts results.
* **Dependency coverage.**  Op ids are dense, dependencies are in range, and
  consecutive ops touching the same ion are ordered by a happens-before path
  through dependencies and shared-resource chains -- the exact predecessor
  relation :func:`repro.sim.batch._merged_predecessors` lowers to, so a
  program that passes here cannot be misordered by either engine.
* **Connectivity** (when a device is supplied).  Every trap/segment/junction
  name exists in the topology, moves run along segments that join their
  endpoints with matching lengths, junction degrees agree, and merge/split
  sides agree with the topology's port geometry.

The replay runs in one pass over the op stream (chains are bounded by trap
capacity, so per-op work is O(capacity)); it is cheap enough to run on every
compile under ``--check``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analyze.diagnostics import Report, diag
from repro.isa.operations import (
    GateOp,
    IonSwapOp,
    JunctionCrossOp,
    MergeOp,
    MeasureOp,
    MoveOp,
    SplitOp,
    SwapGateOp,
)
from repro.isa.program import QCCDProgram

#: Op kinds allowed to touch a trap while it transiently holds capacity+1
#: ions: the pass-through reorder (either microarchitecture) and the
#: relieving split itself.
_OVERFILL_OK = (SwapGateOp, IonSwapOp, SplitOp)

#: Cap on the backward reachability search of the dependency-coverage check;
#: generously above any real dependency chain between two uses of one ion.
_REACH_LIMIT = 4096


def _op_location(op_id: int) -> str:
    return f"op {op_id}"


class _Replay:
    """Mutable machine state replayed from the initial placement."""

    __slots__ = ("chains", "position", "trap_of", "qubit_of_ion",
                 "ion_of_qubit", "overfilled", "capacities")

    def __init__(self, program: QCCDProgram,
                 capacities: Optional[Dict[str, int]]) -> None:
        placement = program.placement
        self.chains: Dict[str, List[int]] = {
            trap: list(chain) for trap, chain in placement.trap_chains.items()
        }
        # trap_of: ion -> trap name, or None while in transit.
        self.trap_of: Dict[int, Optional[str]] = {}
        for trap, chain in self.chains.items():
            for ion in chain:
                self.trap_of[ion] = trap
        # position: transit node of each in-transit ion (last node reached).
        self.position: Dict[int, str] = {}
        self.qubit_of_ion: Dict[int, Optional[int]] = {}
        self.ion_of_qubit: Dict[int, int] = {}
        for qubit, ion in placement.qubit_to_ion.items():
            self.qubit_of_ion[ion] = qubit
            self.ion_of_qubit[qubit] = ion
        self.overfilled: Dict[str, bool] = {}
        self.capacities = capacities


def verify_program(program: QCCDProgram, device=None) -> Report:
    """Run every program-level check; returns the findings as a
    :class:`~repro.analyze.diagnostics.Report`.

    ``device`` (a :class:`~repro.hardware.device.QCCDDevice`) enables the
    capacity and connectivity checks; without one the verifier covers
    everything derivable from the op stream and placement alone and notes
    the reduced scope with one ``QV000`` info diagnostic.
    """

    report = Report()
    topology = device.topology if device is not None else None
    capacities = None
    if topology is not None:
        capacities = {trap.name: trap.capacity for trap in topology.traps}
    else:
        report.add(diag("QV000",
                        "no device supplied: trap-capacity and "
                        "route-connectivity checks were skipped",
                        hint="pass the architecture flags (or verify through "
                             "`repro check --app/--suite`) for full coverage"))

    _check_placement(program, capacities, report)
    _check_structure(program, report)
    state = _Replay(program, capacities)
    for op in program.operations:
        _replay_op(op, state, topology, report)
    _check_final_state(state, report)
    _check_dependency_coverage(program, report)
    return report


def quick_validate(program: QCCDProgram) -> Report:
    """The cheap structural subset behind :meth:`QCCDProgram.validate`.

    Covers referenced-ion existence, placement self-consistency and
    dependency-range/density -- the checks every compile pays for; the full
    replay stays behind :func:`verify_program` / ``--check``.
    """

    report = Report()
    _check_placement(program, None, report)
    _check_structure(program, report)
    return report


# --------------------------------------------------------------------------- #
# Placement and structural checks
# --------------------------------------------------------------------------- #
def _check_placement(program: QCCDProgram,
                     capacities: Optional[Dict[str, int]],
                     report: Report) -> None:
    placement = program.placement
    seen: Dict[int, str] = {}
    for trap, chain in placement.trap_chains.items():
        for ion in chain:
            if ion in seen:
                report.add(diag(
                    "QV002", f"ion {ion} appears in two initial chains "
                             f"({seen[ion]} and {trap})",
                    location="placement",
                    hint="an ion must start in exactly one trap chain"))
            seen[ion] = trap
        if capacities is not None:
            capacity = capacities.get(trap)
            if capacity is not None and len(chain) > capacity:
                report.add(diag(
                    "QV001", f"initial chain of {trap} holds {len(chain)} "
                             f"ions but capacity is {capacity}",
                    location="placement",
                    hint="reduce the initial loading or raise trap_capacity"))
    for ion, trap in placement.ion_to_trap.items():
        if seen.get(ion) != trap:
            report.add(diag(
                "QV002", f"ion {ion} maps to trap {trap} but "
                         f"{'sits in ' + seen[ion] if ion in seen else 'is in no chain'}",
                location="placement",
                hint="ion_to_trap must mirror trap_chains"))
    for qubit, ion in placement.qubit_to_ion.items():
        if ion not in seen:
            report.add(diag(
                "QV005", f"qubit {qubit} mapped to unplaced ion {ion}",
                location="placement",
                hint="every program qubit needs a placed ion"))

    placed = set(seen)
    for op in program.operations:
        for ion in _op_ions(op):
            if ion not in placed:
                # Message kept compatible with the historical
                # QCCDProgram.validate() wording.
                report.add(diag(
                    "QV005", f"op {op.op_id} references unknown ion {ion}",
                    location=_op_location(op.op_id),
                    hint="the operation uses an ion the initial placement "
                         "never loaded"))


def _check_structure(program: QCCDProgram, report: Report) -> None:
    for index, op in enumerate(program.operations):
        if op.op_id != index:
            report.add(diag(
                "QV006", f"operation at position {index} has op_id "
                         f"{op.op_id}; ids must be dense",
                location=_op_location(op.op_id),
                hint="renumber the operation stream 0..n-1"))
        for dep in op.dependencies:
            if dep < 0 or dep >= index:
                report.add(diag(
                    "QV006", f"op {index} depends on {dep}, which is not an "
                             f"earlier operation",
                    location=_op_location(index),
                    hint="dependencies must reference earlier ops (this also "
                         "guarantees the DAG is acyclic)"))


def _op_ions(op) -> Tuple[int, ...]:
    ions = getattr(op, "ions", None)
    if ions is not None:
        return tuple(ions)
    ion = getattr(op, "ion", None)
    return (ion,) if ion is not None else ()


# --------------------------------------------------------------------------- #
# The replay
# --------------------------------------------------------------------------- #
def _replay_op(op, state: _Replay, topology, report: Report) -> None:
    if isinstance(op, (GateOp, SwapGateOp)):
        _replay_gate(op, state, report)
    elif isinstance(op, MeasureOp):
        _replay_measure(op, state, report)
    elif isinstance(op, SplitOp):
        _replay_split(op, state, report)
    elif isinstance(op, MoveOp):
        _replay_move(op, state, topology, report)
    elif isinstance(op, JunctionCrossOp):
        _replay_junction(op, state, topology, report)
    elif isinstance(op, MergeOp):
        _replay_merge(op, state, topology, report)
    elif isinstance(op, IonSwapOp):
        _replay_ion_swap(op, state, report)
    if topology is not None and not isinstance(op, (MoveOp, JunctionCrossOp)):
        trap = getattr(op, "trap", "")
        if trap and state.capacities is not None \
                and trap not in state.capacities:
            report.add(diag(
                "QV007", f"op {op.op_id} references unknown trap {trap!r}",
                location=_op_location(op.op_id),
                hint="the device topology has no such trap"))


def _ions_in_trap(op, ions: Tuple[int, ...], state: _Replay,
                  report: Report) -> bool:
    chain = state.chains.get(op.trap)
    if chain is None:
        report.add(diag(
            "QV003", f"op {op.op_id} targets trap {op.trap!r} which holds "
                     f"no chain", location=_op_location(op.op_id),
            hint="the placement never loaded this trap"))
        return False
    ok = True
    for ion in ions:
        if state.trap_of.get(ion) != op.trap:
            where = state.trap_of.get(ion)
            place = "in transit" if where is None and ion in state.position \
                else f"in {where}" if where else "unplaced"
            report.add(diag(
                "QV003", f"op {op.op_id} ({op.kind.value}) needs ion {ion} "
                         f"in {op.trap} but it is {place}",
                location=_op_location(op.op_id),
                hint="gates act only on co-trapped ions; shuttle the ion "
                     "first"))
            ok = False
    return ok


def _check_overfill_gate(op, state: _Replay, report: Report) -> None:
    if state.overfilled.get(op.trap) and not isinstance(op, _OVERFILL_OK):
        report.add(diag(
            "QV001", f"op {op.op_id} ({op.kind.value}) executes on "
                     f"overfilled trap {op.trap}",
            location=_op_location(op.op_id),
            hint="while a pass-through ion is inside, only reorder ops and "
                 "the relieving split may touch the trap"))


def _replay_gate(op, state: _Replay, report: Report) -> None:
    _check_overfill_gate(op, state, report)
    if not _ions_in_trap(op, tuple(op.ions), state, report):
        return
    chain = state.chains[op.trap]
    if op.chain_length != len(chain):
        report.add(diag(
            "QV004", f"op {op.op_id} annotates chain_length "
                     f"{op.chain_length} but {op.trap} holds {len(chain)}",
            location=_op_location(op.op_id),
            hint="the FM gate-time and A(N) error models read this "
                 "annotation; re-derive it from the chain at emission"))
    if len(op.ions) == 2:
        index_a = chain.index(op.ions[0])
        index_b = chain.index(op.ions[1])
        distance = abs(index_a - index_b) - 1
        if op.ion_distance != distance:
            report.add(diag(
                "QV004", f"op {op.op_id} annotates ion_distance "
                         f"{op.ion_distance} but the ions sit {distance} "
                         f"apart",
                location=_op_location(op.op_id),
                hint="AM/PM gate times scale with the true separation"))
    # Qubit/ion binding: GateOp mirrors ions; SwapGateOp records the
    # pre-swap binding, then flips it.
    for ion, qubit in zip(op.ions, op.qubits):
        bound = state.qubit_of_ion.get(ion)
        if bound != qubit:
            report.add(diag(
                "QV005", f"op {op.op_id} says ion {ion} holds qubit "
                         f"{qubit} but the tracked binding is {bound}",
                location=_op_location(op.op_id),
                hint="a missed or extra gate-based SWAP desynchronises the "
                     "qubit/ion binding"))
    if isinstance(op, SwapGateOp):
        ion_a, ion_b = op.ions
        qubit_a = state.qubit_of_ion.get(ion_a)
        qubit_b = state.qubit_of_ion.get(ion_b)
        state.qubit_of_ion[ion_a] = qubit_b
        state.qubit_of_ion[ion_b] = qubit_a
        if qubit_a is not None:
            state.ion_of_qubit[qubit_a] = ion_b
        if qubit_b is not None:
            state.ion_of_qubit[qubit_b] = ion_a


def _replay_measure(op: MeasureOp, state: _Replay, report: Report) -> None:
    _check_overfill_gate(op, state, report)
    if not _ions_in_trap(op, (op.ion,), state, report):
        return
    bound = state.qubit_of_ion.get(op.ion)
    if bound != op.qubit:
        report.add(diag(
            "QV005", f"op {op.op_id} measures qubit {op.qubit} on ion "
                     f"{op.ion} but the tracked binding is {bound}",
            location=_op_location(op.op_id),
            hint="measurement must read the ion currently holding the "
                 "qubit's state"))


def _replay_split(op: SplitOp, state: _Replay, report: Report) -> None:
    chain = state.chains.get(op.trap)
    if chain is None or state.trap_of.get(op.ion) != op.trap:
        report.add(diag(
            "QV002", f"op {op.op_id} splits ion {op.ion} from {op.trap} "
                     f"but the ion is not there",
            location=_op_location(op.op_id),
            hint="an ion can only be split out of the trap that holds it"))
        return
    if op.chain_size != len(chain):
        report.add(diag(
            "QV004", f"op {op.op_id} annotates chain_size {op.chain_size} "
                     f"but {op.trap} holds {len(chain)} ions",
            location=_op_location(op.op_id),
            hint="the heating model divides motional energy by this size"))
    end_ion = chain[0] if op.side == "head" else chain[-1]
    if end_ion != op.ion:
        report.add(diag(
            "QV004", f"op {op.op_id} splits ion {op.ion} from the "
                     f"{op.side} of {op.trap} but ion {end_ion} sits there",
            location=_op_location(op.op_id),
            hint="splits act on chain ends; reorder the departing state "
                 "to the end first"))
        chain.remove(op.ion)
    elif op.side == "head":
        chain.pop(0)
    else:
        chain.pop()
    state.trap_of[op.ion] = None
    state.position[op.ion] = op.trap
    if state.overfilled.get(op.trap) and state.capacities is not None:
        capacity = state.capacities.get(op.trap)
        if capacity is not None and len(chain) <= capacity:
            state.overfilled[op.trap] = False


def _replay_move(op: MoveOp, state: _Replay, topology,
                 report: Report) -> None:
    if state.trap_of.get(op.ion) is not None or op.ion not in state.position:
        report.add(diag(
            "QV002", f"op {op.op_id} moves ion {op.ion} which is not in "
                     f"transit", location=_op_location(op.op_id),
            hint="split the ion off its chain before moving it"))
    else:
        here = state.position[op.ion]
        if op.from_node and here != op.from_node:
            report.add(diag(
                "QV002", f"op {op.op_id} moves ion {op.ion} from "
                         f"{op.from_node} but the ion is at {here}",
                location=_op_location(op.op_id),
                hint="shuttle routes must be continuous hop to hop"))
    if topology is not None:
        _check_move_topology(op, topology, report)
    state.position[op.ion] = op.to_node


def _check_move_topology(op: MoveOp, topology, report: Report) -> None:
    try:
        segment = topology.segment_between(op.from_node, op.to_node)
    except KeyError:
        report.add(diag(
            "QV007", f"op {op.op_id} moves along {op.segment!r} but no "
                     f"segment joins {op.from_node!r} and {op.to_node!r}",
            location=_op_location(op.op_id),
            hint="the route must follow the topology graph"))
        return
    if segment.name != op.segment:
        report.add(diag(
            "QV007", f"op {op.op_id} names segment {op.segment!r} but "
                     f"{op.from_node}-{op.to_node} is {segment.name}",
            location=_op_location(op.op_id),
            hint="the named segment must be the one joining the endpoints"))
    if segment.length != op.length:
        report.add(diag(
            "QV007", f"op {op.op_id} annotates length {op.length} but "
                     f"segment {segment.name} has length {segment.length}",
            location=_op_location(op.op_id),
            hint="move duration scales with the true segment length"))


def _replay_junction(op: JunctionCrossOp, state: _Replay, topology,
                     report: Report) -> None:
    if state.trap_of.get(op.ion) is not None or op.ion not in state.position:
        report.add(diag(
            "QV002", f"op {op.op_id} crosses a junction with ion {op.ion} "
                     f"which is not in transit",
            location=_op_location(op.op_id),
            hint="only a split-off ion can cross a junction"))
        return
    here = state.position[op.ion]
    if here != op.junction:
        report.add(diag(
            "QV007", f"op {op.op_id} crosses {op.junction!r} but ion "
                     f"{op.ion} is at {here!r}",
            location=_op_location(op.op_id),
            hint="a crossing must happen at the junction the route "
                 "reached"))
    if topology is not None:
        try:
            junction = topology.junction(op.junction)
        except KeyError:
            report.add(diag(
                "QV007", f"op {op.op_id} references unknown junction "
                         f"{op.junction!r}",
                location=_op_location(op.op_id),
                hint="the device topology has no such junction"))
            return
        if junction.degree != op.junction_degree:
            report.add(diag(
                "QV007", f"op {op.op_id} annotates degree "
                         f"{op.junction_degree} but {op.junction} has "
                         f"degree {junction.degree}",
                location=_op_location(op.op_id),
                hint="crossing time depends on the true junction degree"))


def _replay_merge(op: MergeOp, state: _Replay, topology,
                  report: Report) -> None:
    if state.trap_of.get(op.ion) is not None or op.ion not in state.position:
        report.add(diag(
            "QV002", f"op {op.op_id} merges ion {op.ion} which is not in "
                     f"transit", location=_op_location(op.op_id),
            hint="merge targets must have been split off and moved here"))
        return
    here = state.position.pop(op.ion)
    if here != op.trap:
        report.add(diag(
            "QV002", f"op {op.op_id} merges ion {op.ion} into {op.trap} "
                     f"but the route ended at {here}",
            location=_op_location(op.op_id),
            hint="the last move must arrive at the merging trap"))
    if topology is not None and here == op.trap:
        _check_port_side(op, state, topology, report)
    chain = state.chains.setdefault(op.trap, [])
    if op.side == "head":
        chain.insert(0, op.ion)
    else:
        chain.append(op.ion)
    state.trap_of[op.ion] = op.trap
    if state.capacities is not None:
        capacity = state.capacities.get(op.trap)
        if capacity is not None and len(chain) > capacity:
            if len(chain) > capacity + 1 or state.overfilled.get(op.trap):
                report.add(diag(
                    "QV001", f"op {op.op_id} merges into {op.trap} at "
                             f"{len(chain)} ions (capacity {capacity}); "
                             f"only one transient overfill ion is legal",
                    location=_op_location(op.op_id),
                    hint="a pass-through chain may hold capacity+1 ions "
                         "only until the relieving split"))
            else:
                state.overfilled[op.trap] = True


def _check_port_side(op: MergeOp, state: _Replay, topology,
                     report: Report) -> None:
    # The route's previous node is recoverable from the merge's position
    # history only through the move stream, so the check reconstructs it
    # from the topology: a merge is legal from any neighbour, but the side
    # must match the port geometry of the arriving segment.  Without the
    # previous node we can only check that *some* neighbour maps to this
    # side; the move-continuity check (QV002) pins the actual route.
    try:
        neighbours = list(topology.graph.neighbors(op.trap))
    except Exception:  # pragma: no cover - graph backends without neighbors
        return
    sides = {topology.port_side(op.trap, n) for n in neighbours}
    if op.side not in sides:
        report.add(diag(
            "QV007", f"op {op.op_id} merges at the {op.side} of {op.trap} "
                     f"but no incident segment attaches there",
            location=_op_location(op.op_id),
            hint="merge sides follow the topology's port geometry"))


def _replay_ion_swap(op: IonSwapOp, state: _Replay, report: Report) -> None:
    if not _ions_in_trap(op, tuple(op.ions), state, report):
        return
    chain = state.chains[op.trap]
    if op.chain_size != len(chain):
        report.add(diag(
            "QV004", f"op {op.op_id} annotates chain_size {op.chain_size} "
                     f"but {op.trap} holds {len(chain)} ions",
            location=_op_location(op.op_id),
            hint="IS-hop heating scales with the true chain size"))
    index_a = chain.index(op.ions[0])
    index_b = chain.index(op.ions[1])
    if abs(index_a - index_b) != 1:
        report.add(diag(
            "QV004", f"op {op.op_id} swaps ions {op.ions[0]} and "
                     f"{op.ions[1]} which are not adjacent",
            location=_op_location(op.op_id),
            hint="one IS hop exchanges neighbouring ions only"))
        return
    chain[index_a], chain[index_b] = chain[index_b], chain[index_a]


def _check_final_state(state: _Replay, report: Report) -> None:
    for ion, node in sorted(state.position.items()):
        if state.trap_of.get(ion) is None:
            report.add(diag(
                "QV002", f"ion {ion} is left in transit at {node} when the "
                         f"program ends",
                location="end of program",
                hint="every split-off ion must merge into a trap before "
                     "the program completes"))
    for trap, over in sorted(state.overfilled.items()):
        if over:
            report.add(diag(
                "QV001", f"trap {trap} is still overfilled at program end",
                location="end of program",
                hint="the pass-through split that relieves the overfill "
                     "never happened"))


# --------------------------------------------------------------------------- #
# Dependency coverage (consistency with the sim/batch lowering)
# --------------------------------------------------------------------------- #
def _check_dependency_coverage(program: QCCDProgram, report: Report) -> None:
    """Consecutive ops on one ion must be ordered dep-wise or resource-wise.

    This mirrors how :func:`repro.sim.batch._merged_predecessors` lowers the
    program: op ``i`` waits on its dependencies and on the previous op in
    program order using each of its resources.  If the previous op touching
    one of ``i``'s ions is reachable through neither relation, both engines
    would happily overlap the two ops -- a compiler bug the timeline cannot
    surface.
    """

    operations = program.operations
    # Merged predecessors, the batch lowering's exact rule.
    last_user: Dict[str, int] = {}
    merged: List[Tuple[int, ...]] = []
    for index, op in enumerate(operations):
        preds = {dep for dep in op.dependencies if 0 <= dep < index}
        for resource in op.resources:
            prev = last_user.get(resource)
            if prev is not None:
                preds.add(prev)
            last_user[resource] = index
        merged.append(tuple(preds))

    last_for_ion: Dict[int, int] = {}
    for index, op in enumerate(operations):
        ions = _op_ions(op)
        for ion in ions:
            prev = last_for_ion.get(ion)
            if prev is not None and prev not in merged[index] \
                    and not _reachable(merged, index, prev):
                report.add(diag(
                    "QV006", f"op {index} touches ion {ion} but has no "
                             f"happens-before path to op {prev}, the "
                             f"previous op on that ion",
                    location=_op_location(index),
                    hint=f"add a dependency on op {prev} (the builder's "
                         f"last-op-per-ion rule) or a shared resource "
                         f"chain"))
        for ion in ions:
            last_for_ion[ion] = index


def _reachable(merged: List[Tuple[int, ...]], start: int, target: int) -> bool:
    """Whether ``target`` is reachable from ``start`` over merged preds."""

    stack = [p for p in merged[start] if p >= target]
    seen = set(stack)
    visited = 0
    while stack:
        node = stack.pop()
        if node == target:
            return True
        visited += 1
        if visited > _REACH_LIMIT:
            return True  # give the program the benefit of the doubt
        for pred in merged[node]:
            if pred >= target and pred not in seen:
                seen.add(pred)
                stack.append(pred)
    return False

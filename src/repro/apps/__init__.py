"""NISQ application benchmarks (paper Table II).

Six applications drive the paper's evaluation; each is generated here from
scratch with the qubit counts and communication patterns of Table II:

==============  ======  ==============  ==========================
Application     Qubits  Two-qubit gates Communication pattern
==============  ======  ==============  ==========================
Supremacy       64      560             Nearest-neighbour (2D grid)
QAOA            64      1260            Nearest-neighbour (ring/line)
SquareRoot      78      ~1028           Short and long range
QFT             64      4032            All distances
Adder           64      ~545            Short range
BV              64      63              Short and long range
==============  ======  ==============  ==========================

Every generator returns a :class:`~repro.ir.circuit.Circuit` already lowered
to single-qubit rotations plus MS-class two-qubit gates, so Table II's
"two-qubit gates" column equals ``circuit.num_two_qubit_gates``.
"""

from repro.apps.qft import qft_circuit
from repro.apps.bv import bernstein_vazirani_circuit
from repro.apps.adder import cuccaro_adder_circuit
from repro.apps.qaoa import qaoa_circuit
from repro.apps.supremacy import supremacy_circuit
from repro.apps.squareroot import squareroot_circuit
from repro.apps.suite import (
    APPLICATION_NAMES,
    build_application,
    table2_suite,
    scaled_suite,
    application_summary,
)

__all__ = [
    "qft_circuit",
    "bernstein_vazirani_circuit",
    "cuccaro_adder_circuit",
    "qaoa_circuit",
    "supremacy_circuit",
    "squareroot_circuit",
    "APPLICATION_NAMES",
    "build_application",
    "table2_suite",
    "scaled_suite",
    "application_summary",
]

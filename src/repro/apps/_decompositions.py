"""Shared gate decompositions used by the benchmark generators.

All applications are emitted in the trapped-ion native set (single-qubit
rotations plus MS-class two-qubit gates), so multi-qubit primitives such as
Toffoli and controlled-phase are decomposed here.  The decompositions are the
textbook ones; only the two-qubit gate counts matter for the architectural
study (each CX/CZ/RZZ is one MS gate on hardware).
"""

from __future__ import annotations

import math

from repro.ir.circuit import Circuit


def controlled_phase(circuit: Circuit, theta: float, control: int, target: int) -> None:
    """CPHASE(theta) decomposed into two CX gates and three RZ rotations."""

    circuit.add("rz", control, params=(theta / 2.0,))
    circuit.add("cx", control, target)
    circuit.add("rz", target, params=(-theta / 2.0,))
    circuit.add("cx", control, target)
    circuit.add("rz", target, params=(theta / 2.0,))


def controlled_z(circuit: Circuit, qubit_a: int, qubit_b: int) -> None:
    """CZ emitted directly (one MS gate on hardware)."""

    circuit.add("cz", qubit_a, qubit_b)


def zz_interaction(circuit: Circuit, theta: float, qubit_a: int, qubit_b: int) -> None:
    """exp(-i theta ZZ/2) emitted as a native RZZ gate (one MS gate)."""

    circuit.add("rzz", qubit_a, qubit_b, params=(theta,))


def toffoli(circuit: Circuit, control_a: int, control_b: int, target: int) -> None:
    """Toffoli (CCX) via the standard 6-CX, 7-T decomposition."""

    circuit.add("h", target)
    circuit.add("cx", control_b, target)
    circuit.add("tdg", target)
    circuit.add("cx", control_a, target)
    circuit.add("t", target)
    circuit.add("cx", control_b, target)
    circuit.add("tdg", target)
    circuit.add("cx", control_a, target)
    circuit.add("t", control_b)
    circuit.add("t", target)
    circuit.add("h", target)
    circuit.add("cx", control_a, control_b)
    circuit.add("t", control_a)
    circuit.add("tdg", control_b)
    circuit.add("cx", control_a, control_b)


def multi_controlled_z(circuit: Circuit, controls, ancillas, target: int) -> None:
    """Multi-controlled Z using a clean-ancilla Toffoli ladder.

    ``controls`` are the control qubits, ``ancillas`` a list of at least
    ``len(controls) - 2`` clean work qubits, and ``target`` the qubit whose
    phase is flipped when every control is 1.  The ladder is uncomputed so the
    ancillas are returned clean.
    """

    controls = list(controls)
    ancillas = list(ancillas)
    if len(controls) < 2:
        raise ValueError("multi_controlled_z needs at least two controls")
    needed = len(controls) - 2
    if len(ancillas) < needed:
        raise ValueError(f"need {needed} ancillas, got {len(ancillas)}")

    if len(controls) == 2:
        # CCZ: conjugate a Toffoli by Hadamards on the target.
        circuit.add("h", target)
        toffoli(circuit, controls[0], controls[1], target)
        circuit.add("h", target)
        return

    ladder = []
    toffoli(circuit, controls[0], controls[1], ancillas[0])
    ladder.append((controls[0], controls[1], ancillas[0]))
    for index in range(2, len(controls) - 1):
        toffoli(circuit, controls[index], ancillas[index - 2], ancillas[index - 1])
        ladder.append((controls[index], ancillas[index - 2], ancillas[index - 1]))

    # The conjunction of all but the last control is now in the top ancilla;
    # a CCZ with the last control applies the phase.
    top = ancillas[len(controls) - 3]
    circuit.add("h", target)
    toffoli(circuit, controls[-1], top, target)
    circuit.add("h", target)

    for control_a, control_b, anc in reversed(ladder):
        toffoli(circuit, control_a, control_b, anc)


def hadamard_all(circuit: Circuit, qubits) -> None:
    """Apply a Hadamard to every qubit in ``qubits``."""

    for qubit in qubits:
        circuit.add("h", qubit)


def rotation_layer(circuit: Circuit, qubits, name: str, angle: float) -> None:
    """Apply the same single-qubit rotation to every qubit in ``qubits``."""

    for qubit in qubits:
        circuit.add(name, qubit, params=(angle,))


PI = math.pi

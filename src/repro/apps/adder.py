"""Ripple-carry adder benchmark (Cuccaro et al.).

The Cuccaro ripple-carry adder computes ``b := a + b`` on two ``n``-bit
registers using one carry-in ancilla and one carry-out qubit, for a total of
``2n + 2`` qubits; ``n = 31`` gives the paper's 64-qubit instance.  All
interactions are between neighbouring register positions, producing the
"short range gates" communication pattern of Table II.

The MAJ/UMA blocks use Toffoli gates, decomposed into six CX gates each, so
the two-qubit gate count is ``16n + 1`` (497 for n = 31; the paper reports 545
for its ScaffCC-generated instance -- same order, same pattern).
"""

from __future__ import annotations

from repro.apps._decompositions import toffoli
from repro.ir.circuit import Circuit


def _maj(circuit: Circuit, carry: int, b: int, a: int) -> None:
    """Majority block of the Cuccaro adder."""

    circuit.add("cx", a, b)
    circuit.add("cx", a, carry)
    toffoli(circuit, carry, b, a)


def _uma(circuit: Circuit, carry: int, b: int, a: int) -> None:
    """Unmajority-and-add block of the Cuccaro adder."""

    toffoli(circuit, carry, b, a)
    circuit.add("cx", a, carry)
    circuit.add("cx", carry, b)


def cuccaro_adder_circuit(num_qubits: int = 64) -> Circuit:
    """Build the ripple-carry adder benchmark.

    Parameters
    ----------
    num_qubits:
        Total qubit count; must be even and at least 6.  The register width is
        ``(num_qubits - 2) // 2``.

    Qubit layout: ``[carry_in, a0, b0, a1, b1, ..., a_{n-1}, b_{n-1}, carry_out]``
    with interleaved registers so that every MAJ/UMA block touches adjacent
    indices (short-range communication).
    """

    if num_qubits < 6:
        raise ValueError("the adder needs at least 6 qubits")
    if num_qubits % 2 != 0:
        raise ValueError("the adder needs an even number of qubits (2n + 2)")
    width = (num_qubits - 2) // 2

    circuit = Circuit(num_qubits, name=f"adder{num_qubits}")
    carry_in = 0
    carry_out = num_qubits - 1

    def a_qubit(i: int) -> int:
        return 1 + 2 * i

    def b_qubit(i: int) -> int:
        return 2 + 2 * i

    # Put the input registers in a non-trivial state so the circuit is not a
    # pure identity (the architectural study only cares about gate structure).
    for i in range(width):
        circuit.add("h", a_qubit(i))
        circuit.add("h", b_qubit(i))

    # Forward MAJ chain.
    _maj(circuit, carry_in, b_qubit(0), a_qubit(0))
    for i in range(1, width):
        _maj(circuit, a_qubit(i - 1), b_qubit(i), a_qubit(i))

    # Carry out.
    circuit.add("cx", a_qubit(width - 1), carry_out)

    # Backward UMA chain.
    for i in range(width - 1, 0, -1):
        _uma(circuit, a_qubit(i - 1), b_qubit(i), a_qubit(i))
    _uma(circuit, carry_in, b_qubit(0), a_qubit(0))
    return circuit

"""Bernstein-Vazirani benchmark.

BV recovers a hidden bit string with a single oracle query.  The circuit uses
``n - 1`` data qubits plus one ancilla (64 qubits total by default); the
oracle applies a CX from every data qubit whose secret bit is 1 onto the
ancilla, producing the "short and long-range gates" pattern of Table II
(every data qubit talks to the one ancilla at the far end).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.circuit import Circuit


def bernstein_vazirani_circuit(num_qubits: int = 64,
                               secret: Optional[Sequence[int]] = None) -> Circuit:
    """Build the BV benchmark.

    Parameters
    ----------
    num_qubits:
        Total qubits including the ancilla (64 in the paper).
    secret:
        The hidden bit string over the ``num_qubits - 1`` data qubits.
        Defaults to all ones, which maximises the two-qubit gate count
        (``num_qubits - 1`` CX gates).
    """

    if num_qubits < 2:
        raise ValueError("BV needs at least 2 qubits (1 data + 1 ancilla)")
    num_data = num_qubits - 1
    if secret is None:
        secret = [1] * num_data
    secret = list(secret)
    if len(secret) != num_data:
        raise ValueError(f"secret must have {num_data} bits, got {len(secret)}")
    if any(bit not in (0, 1) for bit in secret):
        raise ValueError("secret must be a bit string")

    ancilla = num_data
    circuit = Circuit(num_qubits, name=f"bv{num_qubits}")

    # Prepare the ancilla in |-> and the data register in uniform superposition.
    circuit.add("x", ancilla)
    circuit.add("h", ancilla)
    for qubit in range(num_data):
        circuit.add("h", qubit)

    # Oracle: phase kickback through CX for every 1 bit of the secret.
    for qubit, bit in enumerate(secret):
        if bit:
            circuit.add("cx", qubit, ancilla)

    # Undo the data-register Hadamards; the secret is now in the data register.
    for qubit in range(num_data):
        circuit.add("h", qubit)
    return circuit

"""QAOA benchmark (hardware-efficient ansatz).

The paper uses the hardware-efficient QAOA ansatz of Moll et al. [84]:
alternating layers of single-qubit rotations and nearest-neighbour entangling
gates along a line.  With 64 qubits and 20 entangling layers the circuit has
63 * 20 = 1260 two-qubit gates, matching Table II exactly, and a purely
nearest-neighbour communication pattern.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.apps._decompositions import zz_interaction
from repro.ir.circuit import Circuit


def qaoa_circuit(num_qubits: int = 64, layers: int = 20, *,
                 gammas: Optional[Sequence[float]] = None,
                 betas: Optional[Sequence[float]] = None) -> Circuit:
    """Build the hardware-efficient QAOA benchmark.

    Parameters
    ----------
    num_qubits:
        Number of qubits (64 in the paper).
    layers:
        Number of entangling layers (20 gives Table II's 1260 gates).
    gammas / betas:
        Optional per-layer variational angles; defaults are a fixed linear
        ramp so the circuit is deterministic.
    """

    if num_qubits < 2:
        raise ValueError("QAOA needs at least 2 qubits")
    if layers < 1:
        raise ValueError("QAOA needs at least one layer")
    if gammas is None:
        gammas = [0.1 * (index + 1) for index in range(layers)]
    if betas is None:
        betas = [0.05 * (index + 1) for index in range(layers)]
    if len(gammas) != layers or len(betas) != layers:
        raise ValueError("gammas and betas must have one entry per layer")

    circuit = Circuit(num_qubits, name=f"qaoa{num_qubits}x{layers}")
    for qubit in range(num_qubits):
        circuit.add("h", qubit)

    for layer in range(layers):
        gamma, beta = gammas[layer], betas[layer]
        # Cost layer: nearest-neighbour ZZ interactions along the line.
        for qubit in range(num_qubits - 1):
            zz_interaction(circuit, 2.0 * gamma, qubit, qubit + 1)
        # Mixer layer: single-qubit X rotations.
        for qubit in range(num_qubits):
            circuit.add("rx", qubit, params=(2.0 * beta,))
    return circuit


def qaoa_maxcut_ring_circuit(num_qubits: int = 64, layers: int = 20) -> Circuit:
    """MaxCut-on-a-ring QAOA variant (adds the wrap-around edge).

    Provided for experiments beyond the paper's ansatz; the wrap-around edge
    makes the first and last qubit interact, adding one long-range gate per
    layer.
    """

    circuit = qaoa_circuit(num_qubits, layers)
    ring = Circuit(num_qubits, name=f"qaoa-ring{num_qubits}x{layers}")
    gate_iter = iter(circuit.gates)
    layer_edge = 0
    for gate in gate_iter:
        ring.append(gate)
        if gate.name == "rzz":
            layer_edge += 1
            if layer_edge % (num_qubits - 1) == 0:
                gamma = gate.params[0] if gate.params else 2.0 * math.pi / 8
                ring.add("rzz", num_qubits - 1, 0, params=(gamma,))
    return ring

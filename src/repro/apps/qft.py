"""Quantum Fourier Transform benchmark.

The QFT on ``n`` qubits applies a Hadamard to each qubit followed by
controlled-phase rotations between every pair, giving the all-to-all
communication pattern of Table II ("All distances, 64*63 gates").  Each
controlled phase is decomposed into two CX gates, so the two-qubit gate count
is exactly ``n * (n - 1)`` -- 4032 for the paper's 64-qubit instance.
"""

from __future__ import annotations

import math

from repro.apps._decompositions import controlled_phase
from repro.ir.circuit import Circuit


def qft_circuit(num_qubits: int = 64, *, with_swaps: bool = False) -> Circuit:
    """Build the QFT benchmark.

    Parameters
    ----------
    num_qubits:
        Number of qubits (64 in the paper).
    with_swaps:
        Append the final qubit-reversal SWAP network.  The paper's gate count
        (64*63) corresponds to the QFT body only, so this defaults to False.
    """

    if num_qubits < 2:
        raise ValueError("QFT needs at least 2 qubits")
    circuit = Circuit(num_qubits, name=f"qft{num_qubits}")
    for target in range(num_qubits):
        circuit.add("h", target)
        for control_offset, control in enumerate(range(target + 1, num_qubits), start=2):
            theta = 2.0 * math.pi / (2 ** control_offset)
            controlled_phase(circuit, theta, control, target)
    if with_swaps:
        for left in range(num_qubits // 2):
            right = num_qubits - 1 - left
            circuit.add("swap", left, right)
    return circuit

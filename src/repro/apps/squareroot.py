"""SquareRoot (Grover search) benchmark.

The paper's SquareRoot application is ScaffCC's implementation of Grover's
search; its Table II instance uses 78 qubits and ~1028 two-qubit gates with a
mix of short- and long-range interactions.

We reproduce the structure with a textbook Grover iteration over a 40-qubit
search register: the oracle and the diffusion operator are each a
multi-controlled-Z built from a clean-ancilla Toffoli ladder over 38 work
qubits (40 + 38 = 78 qubits).  The Toffoli ladders interleave the search
register with the ancilla register, producing exactly the short- and
long-range communication mix the paper describes, and one iteration contains
on the order of a thousand CX gates.
"""

from __future__ import annotations

from repro.apps._decompositions import hadamard_all, multi_controlled_z
from repro.ir.circuit import Circuit


def squareroot_circuit(num_search_qubits: int = 40, iterations: int = 1) -> Circuit:
    """Build the Grover / SquareRoot benchmark.

    Parameters
    ----------
    num_search_qubits:
        Size of the search register (40 reproduces the paper's 78-qubit
        instance: ``n`` search qubits plus ``n - 2`` ladder ancillas).
    iterations:
        Number of Grover iterations (the paper's gate count corresponds to a
        single iteration).
    """

    if num_search_qubits < 3:
        raise ValueError("the search register needs at least 3 qubits")
    if iterations < 1:
        raise ValueError("iterations must be positive")

    num_ancillas = num_search_qubits - 2
    num_qubits = num_search_qubits + num_ancillas
    search = list(range(num_search_qubits))
    ancillas = list(range(num_search_qubits, num_qubits))

    circuit = Circuit(num_qubits, name=f"squareroot{num_qubits}")
    hadamard_all(circuit, search)

    for _ in range(iterations):
        # Oracle: phase-flip the all-ones state of the search register (an
        # arbitrary marked element; the gate structure is identical for any
        # marked string up to X conjugation).
        multi_controlled_z(circuit, search[:-1], ancillas, search[-1])

        # Diffusion operator: H X (multi-controlled Z) X H.
        hadamard_all(circuit, search)
        for qubit in search:
            circuit.add("x", qubit)
        multi_controlled_z(circuit, search[:-1], ancillas, search[-1])
        for qubit in search:
            circuit.add("x", qubit)
        hadamard_all(circuit, search)
    return circuit

"""The Table II benchmark suite and scaled-down variants.

:func:`table2_suite` builds every application at the parameters the paper
evaluates (Table II).  :func:`scaled_suite` builds structurally identical
circuits at a reduced qubit count so that the test suite and the default
benchmark harness stay fast; the full-scale suite is used by the figure
reproduction scripts and the EXPERIMENTS.md runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps.adder import cuccaro_adder_circuit
from repro.apps.bv import bernstein_vazirani_circuit
from repro.apps.qaoa import qaoa_circuit
from repro.apps.qft import qft_circuit
from repro.apps.squareroot import squareroot_circuit
from repro.apps.supremacy import supremacy_circuit
from repro.ir.circuit import Circuit

#: Canonical application names, in the order of Table II.
APPLICATION_NAMES = ("Supremacy", "QAOA", "SquareRoot", "QFT", "Adder", "BV")

#: Communication pattern column of Table II.
COMMUNICATION_PATTERNS = {
    "Supremacy": "Nearest neighbor gates",
    "QAOA": "Nearest neighbor gates",
    "SquareRoot": "Short and long-range gates",
    "QFT": "All distances",
    "Adder": "Short range gates",
    "BV": "Short and long-range gates",
}

#: Qubit and two-qubit gate counts the paper reports (for EXPERIMENTS.md).
PAPER_TABLE2 = {
    "Supremacy": {"qubits": 64, "two_qubit_gates": 560},
    "QAOA": {"qubits": 64, "two_qubit_gates": 1260},
    "SquareRoot": {"qubits": 78, "two_qubit_gates": 1028},
    "QFT": {"qubits": 64, "two_qubit_gates": 4032},
    "Adder": {"qubits": 64, "two_qubit_gates": 545},
    "BV": {"qubits": 64, "two_qubit_gates": 64},
}


def build_application(name: str, num_qubits: int = None) -> Circuit:
    """Build one application by name, optionally at a non-default size.

    ``num_qubits`` scales the instance: it is the total qubit count for every
    application except SquareRoot, where it is rounded to the nearest feasible
    ladder size.
    """

    builders: Dict[str, Callable[[], Circuit]] = {
        "Supremacy": lambda: supremacy_circuit(num_qubits or 64),
        "QAOA": lambda: qaoa_circuit(num_qubits or 64),
        "SquareRoot": lambda: squareroot_circuit(_search_register(num_qubits)),
        "QFT": lambda: qft_circuit(num_qubits or 64),
        "Adder": lambda: cuccaro_adder_circuit(_even(num_qubits or 64)),
        "BV": lambda: bernstein_vazirani_circuit(num_qubits or 64),
    }
    try:
        return builders[name]()
    except KeyError:
        valid = ", ".join(APPLICATION_NAMES)
        raise ValueError(f"unknown application {name!r}; expected one of {valid}")


def _search_register(num_qubits) -> int:
    """Search-register size for SquareRoot given a total qubit budget."""

    if num_qubits is None:
        return 40
    # total = n + (n - 2)  =>  n = (total + 2) / 2
    return max(3, (num_qubits + 2) // 2)


def _even(num_qubits: int) -> int:
    """Round down to an even number (the adder needs 2n + 2 qubits)."""

    return num_qubits if num_qubits % 2 == 0 else num_qubits - 1


def table2_suite() -> Dict[str, Circuit]:
    """Every Table II application at the paper's parameters."""

    return {name: build_application(name) for name in APPLICATION_NAMES}


def scaled_suite(num_qubits: int = 16) -> Dict[str, Circuit]:
    """Structurally identical applications at a reduced size.

    QAOA and Supremacy keep their layer structure, QFT/BV/Adder shrink with
    the register, and SquareRoot uses a smaller search register.  Useful for
    fast tests and the default benchmark harness.
    """

    if num_qubits < 8:
        raise ValueError("scaled suite needs at least 8 qubits")
    return {
        "Supremacy": supremacy_circuit(num_qubits, cycles=8),
        "QAOA": qaoa_circuit(num_qubits, layers=4),
        "SquareRoot": squareroot_circuit(max(4, (num_qubits + 2) // 2)),
        "QFT": qft_circuit(num_qubits),
        "Adder": cuccaro_adder_circuit(_even(num_qubits)),
        "BV": bernstein_vazirani_circuit(num_qubits),
    }


def application_summary(circuits: Dict[str, Circuit] = None) -> List[Dict[str, object]]:
    """Rows of Table II for a suite (defaults to the full-scale suite)."""

    circuits = circuits or table2_suite()
    rows = []
    for name in APPLICATION_NAMES:
        if name not in circuits:
            continue
        circuit = circuits[name]
        rows.append({
            "application": name,
            "qubits": circuit.num_qubits,
            "two_qubit_gates": circuit.num_two_qubit_gates,
            "communication_pattern": COMMUNICATION_PATTERNS[name],
            "paper_qubits": PAPER_TABLE2[name]["qubits"],
            "paper_two_qubit_gates": PAPER_TABLE2[name]["two_qubit_gates"],
        })
    return rows

"""Quantum-supremacy-style random circuit benchmark.

Google's supremacy experiment ran random circuits on a 2D grid of qubits with
alternating patterns of nearest-neighbour two-qubit gates interleaved with
random single-qubit gates [5, 82].  The paper's instance has 64 qubits (an
8x8 grid) and 560 two-qubit gates with a nearest-neighbour pattern.

We reproduce that structure: each cycle applies random single-qubit gates from
{sqrt(X), sqrt(Y), T} to every qubit and one of four two-qubit patterns
(horizontal/vertical, even/odd offset).  Twenty cycles over an 8x8 grid give
exactly 560 entangling gates.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.ir.circuit import Circuit

#: Single-qubit gate choices applied between entangling cycles.
_SINGLE_QUBIT_CHOICES = (("rx", math.pi / 2), ("ry", math.pi / 2), ("rz", math.pi / 4))


def _grid_shape(num_qubits: int) -> Tuple[int, int]:
    """Pick the most square grid for ``num_qubits``."""

    best = (1, num_qubits)
    for rows in range(1, int(math.isqrt(num_qubits)) + 1):
        if num_qubits % rows == 0:
            best = (rows, num_qubits // rows)
    return best


def _pattern_pairs(rows: int, cols: int, pattern: int) -> List[Tuple[int, int]]:
    """Qubit pairs activated by one of the four coupling patterns."""

    pairs: List[Tuple[int, int]] = []
    horizontal = pattern in (0, 2)
    offset = 0 if pattern in (0, 1) else 1
    if horizontal:
        for row in range(rows):
            for col in range(offset, cols - 1, 2):
                pairs.append((row * cols + col, row * cols + col + 1))
    else:
        for col in range(cols):
            for row in range(offset, rows - 1, 2):
                pairs.append((row * cols + col, (row + 1) * cols + col))
    return pairs


def supremacy_circuit(num_qubits: int = 64, cycles: int = 20, *,
                      seed: int = 2020) -> Circuit:
    """Build the random-circuit benchmark.

    Parameters
    ----------
    num_qubits:
        Number of qubits; arranged on the most square grid that fits
        (8x8 for 64).
    cycles:
        Number of entangling cycles (20 gives 560 two-qubit gates on 8x8).
    seed:
        Seed of the RNG used to draw single-qubit gates, so the circuit is
        deterministic for a given parameter set.
    """

    if num_qubits < 4:
        raise ValueError("the supremacy circuit needs at least 4 qubits")
    if cycles < 1:
        raise ValueError("cycles must be positive")
    rows, cols = _grid_shape(num_qubits)
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"supremacy{num_qubits}x{cycles}")

    for qubit in range(num_qubits):
        circuit.add("h", qubit)

    for cycle in range(cycles):
        for qubit in range(num_qubits):
            name, angle = rng.choice(_SINGLE_QUBIT_CHOICES)
            circuit.add(name, qubit, params=(angle,))
        for qubit_a, qubit_b in _pattern_pairs(rows, cols, cycle % 4):
            circuit.add("cz", qubit_a, qubit_b)
    return circuit

"""Baseline architectures the QCCD design is compared against.

The paper motivates QCCD with the scaling problems of single-trap systems
(Section III.A): in one long chain, gate durations and the laser-instability
error term grow with the chain length, so fidelity collapses well before
50-100 qubits.  :mod:`~repro.baselines.single_trap` implements that baseline
so the collapse can be demonstrated quantitatively alongside the QCCD results.
"""

from repro.baselines.single_trap import simulate_single_trap, single_trap_sweep

__all__ = ["simulate_single_trap", "single_trap_sweep"]

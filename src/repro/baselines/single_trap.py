"""Single-trap baseline: every qubit in one long ion chain.

A single-trap device needs no shuttling (the chain is fully connected), so its
execution model is simple: gates run serially on the chain, each with the
duration and fidelity dictated by the chain length and ion separation.  The
motional energy stays at zero (no splits or merges), yet fidelity still
degrades with qubit count because the laser-instability term ``A(N)`` grows
and, for AM gates, far-apart ion pairs take a long time.

This is the architecture the paper argues cannot scale past ~50 qubits; the
baseline lets the repository demonstrate that argument with numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.ir.circuit import Circuit
from repro.ir.gate import GateKind
from repro.models.fidelity import FidelityModel
from repro.models.gate_times import GateImplementation, gate_time
from repro.models.params import PhysicalModel
from repro.sim.results import SimulationResult


def simulate_single_trap(circuit: Circuit, gate="FM",
                         model: PhysicalModel = None) -> SimulationResult:
    """Simulate ``circuit`` on a single trap holding every qubit in one chain.

    Qubits sit in the chain in index order; every gate executes serially.
    """

    model = model or PhysicalModel()
    model.validate()
    implementation = GateImplementation.from_name(gate)
    fidelity_model = FidelityModel(model.fidelity)
    chain_length = circuit.num_qubits

    duration = 0.0
    log_fidelity = 0.0
    background_total = 0.0
    motional_total = 0.0
    num_ms = 0
    op_counts: Dict = {}

    for ir_gate in circuit.lowered().gates:
        if ir_gate.kind is GateKind.BARRIER:
            continue
        if ir_gate.kind is GateKind.SINGLE_QUBIT:
            duration += model.single_qubit.gate_time
            fidelity = fidelity_model.single_qubit_fidelity()
        elif ir_gate.kind is GateKind.MEASUREMENT:
            duration += model.single_qubit.measurement_time
            fidelity = fidelity_model.measurement_fidelity()
        else:
            distance = abs(ir_gate.qubits[0] - ir_gate.qubits[1]) - 1
            gate_duration = gate_time(implementation, distance=distance,
                                      chain_length=chain_length)
            duration += gate_duration
            breakdown = fidelity_model.two_qubit_error(
                duration=gate_duration, chain_length=chain_length, motional_energy=0.0)
            background_total += breakdown.background
            motional_total += breakdown.motional
            num_ms += 1
            fidelity = breakdown.fidelity
        if fidelity <= 0.0:
            log_fidelity = -math.inf
        elif log_fidelity != -math.inf:
            log_fidelity += math.log(fidelity)

    return SimulationResult(
        duration=duration,
        fidelity=SimulationResult.fidelity_from_log(log_fidelity),
        log_fidelity=log_fidelity,
        computation_time=duration,
        communication_time=0.0,
        op_counts=op_counts,
        mean_background_error=background_total / num_ms if num_ms else 0.0,
        mean_motional_error=motional_total / num_ms if num_ms else 0.0,
        total_background_error=background_total,
        total_motional_error=motional_total,
        max_motional_energy=0.0,
        final_trap_energies={"T0": 0.0},
        peak_occupancy={"T0": circuit.num_qubits},
        num_shuttles=0,
        num_ms_gates=num_ms,
        trap_gate_busy_time={"T0": duration},
        trap_comm_busy_time={"T0": 0.0},
        circuit_name=circuit.name,
        device_name=f"single-trap-{circuit.num_qubits}-{implementation.value}",
    )


def single_trap_sweep(circuit_builder, sizes: Sequence[int],
                      gate="FM", model: PhysicalModel = None) -> List[SimulationResult]:
    """Fidelity of the same application family at growing single-trap sizes.

    ``circuit_builder`` maps a qubit count to a circuit (e.g. ``qft_circuit``).
    The returned list shows the single-trap fidelity collapse with size --
    the motivation for the QCCD architecture.
    """

    return [simulate_single_trap(circuit_builder(size), gate=gate, model=model)
            for size in sizes]

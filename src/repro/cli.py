"""Command-line interface for the QCCD design toolflow.

The CLI mirrors the Python API for the common workflows so that device
designers can explore configurations without writing scripts::

    python -m repro info
    python -m repro table1
    python -m repro table2
    python -m repro run --app QAOA --topology L6 --capacity 20 --gate FM --reorder GS
    python -m repro sweep --figure 6 --small --output fig6.json
    python -m repro sweep --figure 8 --jobs 4
    python -m repro device --topology G2x3 --capacity 20
    python -m repro check-budget

Sweeps share one compiled-program cache per invocation, so design points that
differ only in the two-qubit gate implementation (or that repeat across
figures) are compiled once; ``--jobs N`` additionally fans the sweep out to N
worker processes with identical, deterministic output.

Every subcommand prints human-readable text; ``--output`` additionally writes
the underlying data as JSON (via :mod:`repro.io`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.breakdown import error_contributions, time_breakdown
from repro.apps import APPLICATION_NAMES, build_application, scaled_suite, table2_suite
from repro.io import figure_bundle_to_dict, result_to_dict, save_json
from repro.models.shuttle_times import format_table1
from repro.toolflow import ArchitectureConfig, figure6, figure7, figure8, run_experiment
from repro.toolflow.tables import format_table2_text
from repro.visualize import device_report


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="L6",
                        help="device topology name, e.g. L6, G2x3, R8 (default: L6)")
    parser.add_argument("--capacity", type=int, default=20,
                        help="ions per trap (default: 20)")
    parser.add_argument("--gate", default="FM", choices=["AM1", "AM2", "PM", "FM"],
                        help="two-qubit gate implementation (default: FM)")
    parser.add_argument("--reorder", default="GS", choices=["GS", "IS"],
                        help="chain reordering method (default: GS)")
    parser.add_argument("--buffer", type=int, default=2,
                        help="buffer slots per trap for incoming shuttles (default: 2)")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def _positive_float(value: str) -> float:
    number = float(value)
    if number <= 0:
        raise argparse.ArgumentTypeError("must be a positive number")
    return number


def _config_from_args(args) -> ArchitectureConfig:
    return ArchitectureConfig(topology=args.topology, trap_capacity=args.capacity,
                              gate=args.gate, reorder=args.reorder,
                              buffer_ions=args.buffer)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QCCDSim: design toolflow for QCCD trapped-ion quantum computers",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("info", help="summarise the toolflow and its models")
    subparsers.add_parser("table1", help="print the shuttling operation times (Table I)")

    table2 = subparsers.add_parser("table2", help="print the benchmark suite (Table II)")
    table2.add_argument("--small", action="store_true",
                        help="use the reduced 16-qubit suite")

    run = subparsers.add_parser("run", help="compile and simulate one application")
    run.add_argument("--app", required=True, choices=list(APPLICATION_NAMES),
                     help="application name from Table II")
    run.add_argument("--qubits", type=int, default=None,
                     help="override the application size (total qubits)")
    run.add_argument("--output", default=None, help="write the result as JSON")
    _add_config_arguments(run)

    sweep = subparsers.add_parser("sweep", help="regenerate a figure's data series")
    sweep.add_argument("--figure", required=True, type=int, choices=[6, 7, 8],
                       help="paper figure number to regenerate")
    sweep.add_argument("--small", action="store_true",
                       help="use the reduced suite and a short capacity sweep")
    sweep.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes for the sweep (default: 1 = serial; "
                            "results are deterministic for any value)")
    sweep.add_argument("--output", default=None, help="write the series as JSON")

    device = subparsers.add_parser("device", help="describe a candidate device")
    device.add_argument("--qubits", type=int, default=None,
                        help="ions to load (default: usable capacity)")
    _add_config_arguments(device)

    budget = subparsers.add_parser(
        "check-budget",
        help="guard the compile+simulate hot path against wall-time regressions")
    budget.add_argument("--budget-s", type=_positive_float, default=None,
                        help="wall-time budget in seconds for the quickstart-style "
                             "compile+simulate unit (default: 0.5, or "
                             "REPRO_BUDGET_S)")

    return parser


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_info() -> int:
    print(f"QCCDSim {__version__} -- reproduction of Murali et al., ISCA 2020")
    print()
    print("Applications:", ", ".join(APPLICATION_NAMES))
    print("Topologies  : L<n> (linear), G<r>x<c> (grid), R<n> (ring), or custom")
    print("Gates       : AM1, AM2, PM, FM Molmer-Sorensen implementations")
    print("Reordering  : GS (gate-based swapping), IS (physical ion swapping)")
    print()
    print("Typical workflow: `python -m repro run --app QAOA --topology L6 --capacity 20`")
    return 0


def _cmd_table1() -> int:
    print(format_table1())
    return 0


def _cmd_table2(args) -> int:
    suite = scaled_suite(16) if args.small else table2_suite()
    print(format_table2_text(suite))
    return 0


def _cmd_run(args) -> int:
    circuit = build_application(args.app, num_qubits=args.qubits)
    config = _config_from_args(args)
    print(f"Application : {circuit.name} ({circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates} two-qubit gates)")
    print(f"Architecture: {config.name}")
    record = run_experiment(circuit, config)
    result = record.result
    print()
    print(f"Execution time      : {result.duration_seconds:.4f} s")
    breakdown = time_breakdown(result)
    print(f"  computation       : {breakdown['computation_s']:.4f} s")
    print(f"  communication     : {breakdown['communication_s']:.4f} s "
          f"({100 * breakdown['communication_fraction']:.1f}%)")
    print(f"Application fidelity: {result.fidelity:.4e}")
    errors = error_contributions(result)
    print(f"Mean MS gate error  : {errors['total']:.3e} "
          f"(motional {errors['motional']:.3e}, background {errors['background']:.3e})")
    print(f"Shuttles            : {record.num_shuttles}")
    print(f"Max motional energy : {result.max_motional_energy:.2f} quanta")
    if args.output:
        path = save_json(result_to_dict(result), args.output)
        print(f"\nWrote JSON result to {path}")
    return 0


def _cmd_sweep(args) -> int:
    if args.small:
        suite = scaled_suite(16)
        capacities = (6, 8, 10)
        base_linear = ArchitectureConfig(topology="L4")
        topologies = ("L4", "G2x2")
    else:
        suite = table2_suite()
        capacities = (14, 18, 22, 26, 30, 34)
        base_linear = ArchitectureConfig(topology="L6")
        topologies = ("L6", "G2x3")

    if args.figure == 6:
        bundle = figure6(suite, capacities=capacities,
                         base=base_linear.with_updates(gate="FM", reorder="GS"),
                         jobs=args.jobs)
        series = {"fidelity": bundle["fidelity"], "runtime_s": bundle["runtime_s"]}
    elif args.figure == 7:
        bundle = figure7(suite, capacities=capacities, topologies=topologies,
                         jobs=args.jobs)
        series = {"fidelity": bundle["fidelity"], "runtime_s": bundle["runtime_s"]}
    else:
        bundle = figure8(suite, capacities=capacities, base=base_linear,
                         jobs=args.jobs)
        series = {"fidelity": bundle["fidelity"], "runtime_s": bundle["runtime_s"]}

    print(f"Figure {args.figure} series over capacities {list(capacities)}:")
    for metric, per_app in series.items():
        print(f"\n[{metric}]")
        for app, values in per_app.items():
            print(f"  {app:12s} {values}")
    if args.output:
        path = save_json(figure_bundle_to_dict(bundle), args.output)
        print(f"\nWrote JSON bundle to {path}")
    return 0


def _cmd_device(args) -> int:
    config = _config_from_args(args)
    device = config.build_device(args.qubits)
    print(device_report(device))
    return 0


def _cmd_check_budget(args) -> int:
    from repro.toolflow.budget import check_budget

    outcome = check_budget(args.budget_s)
    status = "OK" if outcome["ok"] else "OVER BUDGET"
    print(f"quickstart compile+simulate: {outcome['elapsed_s'] * 1e3:.1f} ms "
          f"(budget {outcome['budget_s'] * 1e3:.0f} ms) -- {status}")
    return 0 if outcome["ok"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "info":
        return _cmd_info()
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "table2":
        return _cmd_table2(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "device":
        return _cmd_device(args)
    if args.command == "check-budget":
        return _cmd_check_budget(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

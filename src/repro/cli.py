"""Command-line interface for the QCCD design toolflow.

The CLI mirrors the Python API for the common workflows so that device
designers can explore configurations without writing scripts::

    python -m repro info
    python -m repro table1
    python -m repro table2
    python -m repro run --app QAOA --topology L6 --capacity 20 --gate FM --reorder GS
    python -m repro sweep --figure 6 --small --output fig6.json
    python -m repro sweep --figure 8 --jobs 4 --store runs/fig8
    python -m repro device --topology G2x3 --capacity 20
    python -m repro check-budget
    python -m repro check --src src/repro         # determinism linter
    python -m repro check --suite                 # verify the golden suite
    python -m repro run --app QFT --check         # verify every compile

Sweeps share one compiled-program cache per invocation, so design points that
differ only in the two-qubit gate implementation (or that repeat across
figures) are compiled once; ``--jobs N`` additionally fans the sweep out to N
worker processes with identical, deterministic output, and ``--store DIR``
persists every evaluated design point so an interrupted sweep resumes where
it stopped.

Custom design-space studies run through the ``dse`` family (quickstart)::

    # Every point of a space, resumably, 4 worker processes:
    python -m repro dse run --apps QFT,BV --qubits 16 --topologies L3,G2x2 \\
        --capacities 6,8,10 --store runs/study --jobs 4

    # The same study split across two machines, then merged by file drop:
    python -m repro dse run ... --store runs/study --shard 1/2
    python -m repro dse run ... --store runs/study --shard 2/2

    # Or let the dispatcher lease shards to worker processes: workers
    # heartbeat their lease, a killed worker's shard is reclaimed by the
    # survivors, and the merged store exports byte-identically to a serial
    # run of the same space:
    python -m repro dse dispatch --apps QFT,BV --capacities 14,18,22 \\
        --store runs/study --workers 3
    python -m repro dse dispatch ... --print-only   # remote machines: run
    python -m repro dse worker --store runs/study   # one of these per host

    # Adaptive search instead of the full grid (surrogate-guided Bayesian
    # optimization finds the best point in a fraction of the evaluations):
    python -m repro dse run --space space.json --store runs/study \\
        --strategy bayes --seed 7 --metric fidelity

    # The same adaptive search distributed: the dispatcher runs the
    # proposer, workers lease signed proposal batches off the store's
    # proposals/ ledger -- same best point, byte-identical export:
    python -m repro dse dispatch --apps QFT,BV --capacities 14,18,22 \\
        --store runs/study --strategy bayes --workers 3
    python -m repro dse propose --store runs/study   # remote: proposer
    python -m repro dse worker --store runs/study    # remote: per host

    # Multi-objective: search the Pareto frontier (fidelity x runtime, or
    # any subset of fidelity,runtime,comm_fraction,shuttles_per_2q)
    # directly instead of recovering it from the grid -- also
    # dispatchable, with byte-identical exports:
    python -m repro dse run --space space.json --store runs/study \\
        --strategy ehvi --objectives fidelity,runtime --seed 9

    # Inspect, rank, export:
    python -m repro dse status --store runs/study --eta
    python -m repro dse pareto --store runs/study --app qft16
    python -m repro dse pareto --store runs/study --objectives \\
        fidelity,runtime,shuttles_per_2q --hypervolume --output cloud.csv
    python -m repro dse export --store runs/study --output study.json

Every subcommand prints human-readable text; ``--output`` additionally writes
the underlying data as JSON (via :mod:`repro.io`), creating missing parent
directories and exiting non-zero if the file cannot be written.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.breakdown import error_contributions, time_breakdown
from repro.apps import APPLICATION_NAMES, build_application, scaled_suite, table2_suite
from repro.io import figure_bundle_to_dict, result_to_dict, save_json
from repro.models.shuttle_times import format_table1
from repro.toolflow import (ArchitectureConfig, ProgramCache, figure6, figure7,
                            figure8, run_experiment)
from repro.toolflow.tables import format_table2_text
from repro.visualize import device_report


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", default="L6",
                        help="device topology name, e.g. L6, G2x3, R8 (default: L6)")
    parser.add_argument("--capacity", type=int, default=20,
                        help="ions per trap (default: 20)")
    parser.add_argument("--gate", default="FM", choices=["AM1", "AM2", "PM", "FM"],
                        help="two-qubit gate implementation (default: FM)")
    parser.add_argument("--reorder", default="GS", choices=["GS", "IS"],
                        help="chain reordering method (default: GS)")
    parser.add_argument("--buffer", type=int, default=2,
                        help="buffer slots per trap for incoming shuttles (default: 2)")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def _positive_float(value: str) -> float:
    number = float(value)
    if number <= 0:
        raise argparse.ArgumentTypeError("must be a positive number")
    return number


def _config_from_args(args) -> ArchitectureConfig:
    return ArchitectureConfig(topology=args.topology, trap_capacity=args.capacity,
                              gate=args.gate, reorder=args.reorder,
                              buffer_ions=args.buffer)


def _write_json(payload, path) -> bool:
    """Write ``--output`` JSON; report and return ``False`` on failure.

    Parent directories are created as needed; any OS-level write failure
    (unwritable directory, path component that is a file, disk full, ...)
    is reported on stderr instead of crashing with a traceback, and the
    calling subcommand exits non-zero.
    """

    try:
        written = save_json(payload, path)
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=sys.stderr)
        return False
    print(f"\nWrote JSON to {written}")
    return True


def _write_csv(rows, path) -> bool:
    """Write ``--output`` CSV rows; report and return ``False`` on failure.

    Same hardening as :func:`_write_json`: parent directories are created,
    and any OS-level write failure is reported on stderr so the calling
    subcommand can exit non-zero instead of crashing with a traceback.
    """

    import csv
    from pathlib import Path

    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as handle:
            if rows:
                writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
                writer.writeheader()
                writer.writerows(rows)
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=sys.stderr)
        return False
    if rows:
        print(f"\nWrote CSV to {path}")
    else:
        print(f"\nWrote CSV to {path} (no rows -- the file is empty)")
    return True


def _comma_list(text: str):
    """Parse a comma-separated CLI list, dropping empty items."""

    return tuple(item.strip() for item in text.split(",") if item.strip())


def _comma_ints(text: str):
    items = _comma_list(text)
    try:
        return tuple(int(item) for item in items)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")


#: Objective names offered by --metric/--objectives (mirrors
#: repro.dse.pareto.OBJECTIVES without importing the dse package at parser
#: build time).
_OBJECTIVES = ("fidelity", "runtime", "comm_fraction", "shuttles_per_2q")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QCCDSim: design toolflow for QCCD trapped-ion quantum computers",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("info", help="summarise the toolflow and its models")
    subparsers.add_parser("table1", help="print the shuttling operation times (Table I)")

    table2 = subparsers.add_parser("table2", help="print the benchmark suite (Table II)")
    table2.add_argument("--small", action="store_true",
                        help="use the reduced 16-qubit suite")

    run = subparsers.add_parser("run", help="compile and simulate one application")
    run.add_argument("--app", required=True, choices=list(APPLICATION_NAMES),
                     help="application name from Table II")
    run.add_argument("--qubits", type=int, default=None,
                     help="override the application size (total qubits)")
    run.add_argument("--output", default=None, help="write the result as JSON")
    _add_check_argument(run)
    _add_trace_argument(run)
    _add_profile_argument(run)
    _add_config_arguments(run)

    sweep = subparsers.add_parser("sweep", help="regenerate a figure's data series")
    sweep.add_argument("--figure", required=True, type=int, choices=[6, 7, 8],
                       help="paper figure number to regenerate")
    sweep.add_argument("--small", action="store_true",
                       help="use the reduced suite and a short capacity sweep")
    sweep.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes for the sweep (default: 1 = serial; "
                            "results are deterministic for any value)")
    sweep.add_argument("--store", default=None,
                       help="experiment-store directory: evaluated design points "
                            "persist there and interrupted sweeps resume without "
                            "recomputation")
    sweep.add_argument("--output", default=None, help="write the series as JSON")
    _add_check_argument(sweep)
    _add_trace_argument(sweep)
    _add_profile_argument(sweep)

    _add_dse_parsers(subparsers)

    profile = subparsers.add_parser(
        "profile",
        help="aggregate a recorded span trace into a hierarchical profile",
        description="Read the flat span JSONL a --trace run wrote (pass "
                    "either the OUT.spans.jsonl file or the OUT.json trace "
                    "whose .spans.jsonl sits beside it) and print the "
                    "aggregate profile: self/total time and call-duration "
                    "quantiles per span name, the call tree with self time "
                    "telescoping to the traced wall time, and the critical "
                    "path.  Deterministic: the same trace file always "
                    "renders byte-identically.")
    profile.add_argument("trace", metavar="TRACE",
                         help="a .spans.jsonl file, or the Chrome-trace "
                              ".json written by --trace")
    profile.add_argument("--top", type=_positive_int, default=20,
                         help="rows in the flat table (default: 20)")
    profile.add_argument("--collapsed", default=None, metavar="OUT.TXT",
                         help="additionally write collapsed stacks "
                              "('a;b;c <self_us>' lines) for flamegraph "
                              "tooling")
    profile.add_argument("--output", default=None,
                         help="write the full profile structure as JSON")

    trace = subparsers.add_parser(
        "trace",
        help="distributed-trace utilities over store trace shards")
    trace_sub = trace.add_subparsers(dest="trace_command")
    trace_merge = trace_sub.add_parser(
        "merge",
        help="merge a store's per-worker trace shards into one trace bundle",
        description="Read every <store>/traces/*.jsonl span shard traced "
                    "workers flushed, skip torn or corrupt lines with a "
                    "warning, and write one Perfetto-loadable Chrome trace "
                    "(plus .spans.jsonl and .manifest.json) at OUTPUT.  "
                    "Deterministic: the same span set merges "
                    "byte-identically regardless of how it was sharded.")
    trace_merge.add_argument("--store", required=True,
                             help="experiment-store directory holding "
                                  "traces/ shards")
    trace_merge.add_argument("--output", required=True, metavar="OUT.JSON",
                             help="path of the merged Chrome trace")

    bench = subparsers.add_parser(
        "bench",
        help="perf-history utilities over benchmarks/data artefacts")
    bench_sub = bench.add_subparsers(dest="bench_command")
    bench_diff = bench_sub.add_parser(
        "diff",
        help="compare two BENCH_*.json artefacts with regression verdicts",
        description="Pair up the numeric metrics of two benchmark "
                    "artefacts, classify each key by the naming convention "
                    "(time/size suffixes are lower-is-better, "
                    "speedups/hit rates higher-is-better, counts "
                    "informational), and exit non-zero when a directional "
                    "metric moved past --threshold in the worse direction "
                    "-- a machine-checkable CI perf gate.")
    bench_diff.add_argument("old", metavar="OLD", help="baseline BENCH_*.json")
    bench_diff.add_argument("new", metavar="NEW", help="candidate BENCH_*.json")
    bench_diff.add_argument("--threshold", type=_positive_float, default=0.25,
                            help="fractional worsening that counts as a "
                                 "regression (default: 0.25 = 25%%)")
    bench_diff.add_argument("--output", default=None,
                            help="write the comparison report as JSON")

    device = subparsers.add_parser("device", help="describe a candidate device")
    device.add_argument("--qubits", type=int, default=None,
                        help="ions to load (default: usable capacity)")
    _add_config_arguments(device)

    budget = subparsers.add_parser(
        "check-budget",
        help="guard the compile+simulate hot path against wall-time regressions")
    budget.add_argument("--budget-s", type=_positive_float, default=None,
                        help="wall-time budget in seconds for the quickstart-style "
                             "compile+simulate unit (default: 0.5, or "
                             "REPRO_BUDGET_S)")

    check = subparsers.add_parser(
        "check",
        help="static analysis: program verifier, race detector, "
             "determinism linter (docs/static-analysis.md)")
    check.add_argument("--src", nargs="*", default=None, metavar="PATH",
                       help="lint source files/directories for the "
                            "determinism rules (DT*); with no PATH, lints "
                            "the installed repro package")
    check.add_argument("--program", default=None, metavar="FILE",
                       help="verify a serialised program JSON (QV*/RC*; "
                            "device-free -- capacity/connectivity checks "
                            "need --app or --suite)")
    check.add_argument("--app", default=None, choices=list(APPLICATION_NAMES),
                       help="compile one application with the architecture "
                            "flags and verify the program")
    check.add_argument("--qubits", type=int, default=None,
                       help="override the application size for --app")
    check.add_argument("--suite", action="store_true",
                       help="compile and verify the reduced 16-qubit suite "
                            "across GS/IS reordering and L4/G2x2 topologies")
    check.add_argument("--no-races", action="store_true",
                       help="skip the schedule race detector (RC*)")
    check.add_argument("--output", default=None,
                       help="write the findings as JSON")
    _add_config_arguments(check)

    return parser


def _add_check_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--check`` flag (see :mod:`repro.analyze.runtime`)."""

    parser.add_argument(
        "--check", action="store_true",
        help="statically verify every compiled program (verifier + race "
             "detector) and abort on the first error finding; the flag "
             "propagates to --jobs worker processes")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` flag (see :mod:`repro.obs`)."""

    parser.add_argument("--trace", default=None, metavar="OUT.JSON",
                        help="record a span trace of this command: writes "
                             "Chrome-trace JSON (loadable in Perfetto or "
                             "chrome://tracing) plus a flat .spans.jsonl and "
                             "a .manifest.json run summary next to it; the "
                             "files are flushed atomically even if the "
                             "command fails")


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--profile`` flag (see :mod:`repro.obs.profile`)."""

    parser.add_argument("--profile", action="store_true",
                        help="trace this command and print the aggregate "
                             "span profile (self/total per span name, call "
                             "tree, critical path) when it finishes; "
                             "composes with --trace")


def _add_space_arguments(parser: argparse.ArgumentParser) -> None:
    """Design-space flags shared by ``dse run`` and ``dse dispatch``."""

    parser.add_argument("--space", default=None,
                        help="JSON design-space spec file (overrides axis flags)")
    parser.add_argument("--apps", type=_comma_list, default=None,
                        help="comma-separated application names (e.g. QFT,BV)")
    parser.add_argument("--qubits", type=_comma_ints, default=None,
                        help="comma-separated application sizes (default: paper scale)")
    parser.add_argument("--topologies", type=_comma_list, default=("L6",),
                        help="comma-separated topology names (default: L6)")
    parser.add_argument("--capacities", type=_comma_ints,
                        default=(14, 18, 22, 26, 30, 34),
                        help="comma-separated trap capacities (default: paper sweep)")
    parser.add_argument("--gates", type=_comma_list, default=("FM",),
                        help="comma-separated gate implementations (default: FM)")
    parser.add_argument("--reorders", type=_comma_list, default=("GS",),
                        help="comma-separated reorder methods (default: GS)")
    parser.add_argument("--buffers", type=_comma_ints, default=(2,),
                        help="comma-separated buffer sizes (default: 2)")


def _add_dse_parsers(subparsers) -> None:
    """The ``dse`` family: run / dispatch / worker / status / pareto / export."""

    dse = subparsers.add_parser(
        "dse",
        help="design-space exploration: resumable, shardable custom studies",
        description="Explore a custom design space through the persistent "
                    "experiment store.  Points already in the store are never "
                    "recomputed, so killed runs resume for free and shards "
                    "merge by writing into one directory.")
    dse_sub = dse.add_subparsers(dest="dse_command")

    run = dse_sub.add_parser(
        "run", help="evaluate a design space under a search strategy",
        epilog="The space comes from --space (a JSON spec with keys apps, "
               "qubits, topologies, capacities, gates, reorders, buffers) or "
               "from the axis flags below.  All strategies are deterministic "
               "under a fixed --seed for any --jobs or shard split.")
    _add_space_arguments(run)
    run.add_argument("--store", default=None,
                     help="experiment-store directory (omit for a one-off "
                          "in-memory run)")
    run.add_argument("--strategy", default="grid",
                     choices=["grid", "random", "greedy", "halving", "bayes",
                              "adaptive-halving", "ehvi", "parego"],
                     help="search strategy (default: grid = exhaustive; "
                          "ehvi/parego search the Pareto frontier of "
                          "--objectives directly)")
    run.add_argument("--seed", type=int, default=0,
                     help="random seed for the seeded strategies (default: 0)")
    run.add_argument("--samples", type=_positive_int, default=None,
                     help="points to draw for --strategy random")
    run.add_argument("--metric", default="fidelity", choices=list(_OBJECTIVES),
                     help="objective to optimise (default: fidelity)")
    run.add_argument("--objectives", type=_comma_list, default=None,
                     help="comma-separated objective vector for the "
                          "multi-objective strategies (ehvi/parego), e.g. "
                          "fidelity,runtime (default: fidelity,runtime)")
    run.add_argument("--proxy-qubits", type=_positive_int, default=12,
                     help="starting proxy size for --strategy "
                          "halving/adaptive-halving (default: 12)")
    run.add_argument("--batch-size", type=_positive_int, default=4,
                     help="points per proposal batch for --strategy bayes "
                          "(default: 4)")
    run.add_argument("--max-evals", type=_positive_int, default=None,
                     help="evaluation budget for --strategy bayes (default: "
                          "a quarter of the grid)")
    run.add_argument("--surrogate", default=None, choices=["rff", "trees"],
                     help="surrogate model for the adaptive strategies "
                          "(default: rff for bayes, trees for "
                          "adaptive-halving)")
    run.add_argument("--jobs", type=_positive_int, default=1,
                     help="worker processes (default: 1 = serial)")
    run.add_argument("--shard", default=None,
                     help="evaluate only shard i/N of the points (e.g. 2/4); "
                          "each shard appends to its own store file")
    run.add_argument("--top", type=_positive_int, default=5,
                     help="rows to print in the summary table (default: 5)")
    run.add_argument("--output", default=None, help="write the records as JSON")
    _add_check_argument(run)
    _add_trace_argument(run)
    _add_profile_argument(run)

    dispatch = dse_sub.add_parser(
        "dispatch",
        help="run a design space through leased shards and worker processes",
        description="Partition the space into M leased shards (or, with an "
                    "adaptive --strategy, into proposer-written proposal "
                    "batches) and drive N worker processes to completion.  "
                    "Workers coordinate through lease files inside the store "
                    "directory: claims are atomic, heartbeats renew a lease, "
                    "and an expired lease (dead worker) is reclaimed by a "
                    "surviving worker, so a killed worker costs at most one "
                    "lease of redone work -- never data.  The merged store "
                    "exports byte-identically to a single-process run.")
    _add_space_arguments(dispatch)
    dispatch.add_argument("--store", required=True,
                          help="experiment-store directory shared by all "
                               "workers (dedicated to this study)")
    dispatch.add_argument("--strategy", default="grid",
                          choices=["grid", "bayes", "adaptive-halving",
                                   "ehvi", "parego"],
                          help="grid = static leased shards (default); "
                               "bayes/adaptive-halving/ehvi/parego = the "
                               "propose/evaluate protocol (this process runs "
                               "the proposer, workers lease proposal batches)")
    dispatch.add_argument("--seed", type=int, default=0,
                          help="seed for an adaptive --strategy (default: 0)")
    dispatch.add_argument("--metric", default="fidelity",
                          choices=list(_OBJECTIVES),
                          help="objective for an adaptive --strategy "
                               "(default: fidelity)")
    dispatch.add_argument("--objectives", type=_comma_list, default=None,
                          help="comma-separated objective vector for "
                               "--strategy ehvi/parego (default: "
                               "fidelity,runtime)")
    dispatch.add_argument("--batch-size", type=_positive_int, default=4,
                          help="points per proposal batch for --strategy "
                               "bayes (default: 4)")
    dispatch.add_argument("--max-evals", type=_positive_int, default=None,
                          help="evaluation budget for --strategy bayes "
                               "(default: a quarter of the grid)")
    dispatch.add_argument("--surrogate", default=None,
                          choices=["rff", "trees"],
                          help="surrogate model for an adaptive --strategy")
    dispatch.add_argument("--proxy-qubits", type=_positive_int, default=12,
                          help="starting proxy size for --strategy "
                               "adaptive-halving (default: 12)")
    dispatch.add_argument("--workers", type=_positive_int, default=2,
                          help="local worker processes (default: 2)")
    dispatch.add_argument("--shards", type=_positive_int, default=None,
                          help="lease granularity for --strategy grid "
                               "(default: 4x workers)")
    dispatch.add_argument("--ttl-s", type=_positive_float, default=None,
                          help="lease time-to-live in seconds; must exceed "
                               "the slowest task group (one compile plus all "
                               "its gate-variant simulations; default: 60)")
    dispatch.add_argument("--jobs", type=_positive_int, default=1,
                          help="process-pool width inside each worker "
                               "(default: 1)")
    dispatch.add_argument("--throttle-s", type=_positive_float, default=None,
                          help="sleep this long after each completed task "
                               "group in every worker (load limiter)")
    dispatch.add_argument("--timeout-s", type=_positive_float, default=None,
                          help="abort the dispatch after this many seconds")
    dispatch.add_argument("--print-only", action="store_true",
                          help="write the manifest and print the per-machine "
                               "worker command lines instead of spawning "
                               "local workers (remote launch)")
    _add_trace_argument(dispatch)

    worker = dse_sub.add_parser(
        "worker",
        help="join a dispatched run as one worker (internal/remote entry)",
        description="Lease work from a prepared dispatch (see `repro dse "
                    "dispatch`) until the run is done: static shards, or "
                    "proposal batches when the manifest declares an "
                    "adaptive run.  Run one of these per machine against a "
                    "shared store directory.")
    worker.add_argument("--store", required=True,
                        help="experiment-store directory with a dispatch.json")
    worker.add_argument("--owner", default=None,
                        help="lease-owner identity (default: <host>-pid<pid>)")
    worker.add_argument("--jobs", type=_positive_int, default=None,
                        help="override the manifest's per-worker jobs")

    propose = dse_sub.add_parser(
        "propose",
        help="run the proposer side of an adaptive dispatched run",
        description="Drive the propose/evaluate loop of an adaptive "
                    "dispatch (see `repro dse dispatch --strategy bayes "
                    "--print-only`): write signed proposal batches into the "
                    "store's proposals/ ledger, ingest results as workers "
                    "append them, and emit the next batch until the budget "
                    "is spent.  Exactly one proposer per run; killed "
                    "proposers restart from the ledger alone.")
    propose.add_argument("--store", required=True,
                         help="experiment-store directory with an "
                              "adaptive-mode dispatch.json")
    propose.add_argument("--poll-s", type=_positive_float, default=0.2,
                         help="seconds between result polls (default: 0.2)")

    top = dse_sub.add_parser(
        "top",
        help="live fleet dashboard for a dispatched store",
        description="Auto-refreshing terminal view of a dispatched run: "
                    "point/shard progress, fleet and per-worker windowed "
                    "rates with sparklines, cache hit rate, and "
                    "straggler/stall flags (a worker whose rolling rate "
                    "falls k MADs below the fleet median, or whose last "
                    "telemetry event is older than half the lease TTL, is "
                    "flagged before its lease expires).  Keys: q quits, p "
                    "pauses/resumes refresh; Ctrl-C also exits cleanly.")
    top.add_argument("--store", required=True,
                     help="experiment-store directory of the dispatched run")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (scripting/CI)")
    top.add_argument("--interval-s", type=_positive_float, default=1.0,
                     help="seconds between refreshes (default: 1.0)")
    top.add_argument("--bucket-s", type=_positive_float, default=None,
                     help="time-series bucket width in seconds (default: 5)")
    top.add_argument("--window", type=_positive_int, default=None,
                     help="trailing buckets for rolling rates and "
                          "sparklines (default: 12)")
    top.add_argument("--ttl-s", type=_positive_float, default=None,
                     help="lease TTL for the stall detector (default: the "
                          "store manifest's ttl_s)")

    status = dse_sub.add_parser("status", help="summarise an experiment store")
    status.add_argument("--store", required=True, help="experiment-store directory")
    status.add_argument("--space", default=None,
                        help="JSON spec: additionally report completed/pending "
                             "points of this space")
    status.add_argument("--eta", action="store_true",
                        help="estimate remaining wall time from stored "
                             "per-point wall_s timings (pending points come "
                             "from --space or the store's dispatch manifest)")
    status.add_argument("--workers", type=_positive_int, default=None,
                        nargs="?", const=0,
                        help="show the per-worker telemetry of a dispatched "
                             "run; with a count, additionally assume that "
                             "many active workers for --eta (default: "
                             "active leases, else 1)")
    status.add_argument("--by-strategy", action="store_true",
                        help="additionally break the stored points down by "
                             "the strategy that proposed them (schema v3 "
                             "provenance): counts and best per strategy")

    pareto = dse_sub.add_parser(
        "pareto", help="Pareto frontier (and point cloud) of a store")
    pareto.add_argument("--store", required=True, help="experiment-store directory")
    pareto.add_argument("--app", default=None,
                        help="restrict to one application (circuit name)")
    pareto.add_argument("--objectives", type=_comma_list, default=None,
                        help="comma-separated objectives for n-D dominance "
                             "(default: fidelity,runtime)")
    pareto.add_argument("--hypervolume", action="store_true",
                        help="additionally print the normalised hypervolume "
                             "indicator per application (exact 2-D/3-D)")
    pareto.add_argument("--output", default=None,
                        help="write the frontier as JSON, or -- when the "
                             "path ends in .csv -- the full point cloud as "
                             "CSV (stable n-D ordering, with a 'dominated' "
                             "column marking off-frontier points)")

    export = dse_sub.add_parser(
        "export", help="merge and export a store as one canonical JSON file")
    export.add_argument("--store", required=True, help="experiment-store directory")
    export.add_argument("--output", required=True, help="destination JSON file")


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_info() -> int:
    print(f"QCCDSim {__version__} -- reproduction of Murali et al., ISCA 2020")
    print()
    print("Applications:", ", ".join(APPLICATION_NAMES))
    print("Topologies  : L<n> (linear), G<r>x<c> (grid), R<n> (ring), or custom")
    print("Gates       : AM1, AM2, PM, FM Molmer-Sorensen implementations")
    print("Reordering  : GS (gate-based swapping), IS (physical ion swapping)")
    print()
    print("Typical workflow: `python -m repro run --app QAOA --topology L6 --capacity 20`")
    print("Design studies  : `python -m repro dse run --apps QFT,BV "
          "--capacities 14,18,22 --store runs/study` (resumable; see "
          "`repro dse --help`)")
    return 0


def _cmd_table1() -> int:
    print(format_table1())
    return 0


def _cmd_table2(args) -> int:
    suite = scaled_suite(16) if args.small else table2_suite()
    print(format_table2_text(suite))
    return 0


def _cmd_run(args) -> int:
    circuit = build_application(args.app, num_qubits=args.qubits)
    config = _config_from_args(args)
    print(f"Application : {circuit.name} ({circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates} two-qubit gates)")
    print(f"Architecture: {config.name}")
    record = run_experiment(circuit, config)
    result = record.result
    print()
    print(f"Execution time      : {result.duration_seconds:.4f} s")
    breakdown = time_breakdown(result)
    print(f"  computation       : {breakdown['computation_s']:.4f} s")
    print(f"  communication     : {breakdown['communication_s']:.4f} s "
          f"({100 * breakdown['communication_fraction']:.1f}%)")
    print(f"Application fidelity: {result.fidelity:.4e}")
    errors = error_contributions(result)
    print(f"Mean MS gate error  : {errors['total']:.3e} "
          f"(motional {errors['motional']:.3e}, background {errors['background']:.3e})")
    print(f"Shuttles            : {record.num_shuttles}")
    print(f"Max motional energy : {result.max_motional_energy:.2f} quanta")
    if args.output and not _write_json(result_to_dict(result), args.output):
        return 1
    return 0


def _cache_summary_line(cache) -> str:
    """One-line compile-cache + batch-engine summary for sweep commands.

    With ``--jobs N`` the counters include the pool workers' activity (merged
    back per task), so the line is identical for any job count -- sweep
    output stays byte-for-byte independent of ``--jobs``.  The ``entries``
    count is process-local and deliberately not printed.
    """

    stats = cache.stats()
    return (f"Cache: {stats['hits']} hits / {stats['misses']} misses | "
            f"batch: {stats['batch_variants']} variants over "
            f"{stats['batch_plans']} plans "
            f"(+{stats['batch_plan_reuses']} reuses), "
            f"{stats['batch_timelines']} timelines walked, "
            f"{stats['batch_timeline_hits']} dedup hits")


def _cmd_sweep(args) -> int:
    store = _open_store(args.store) if args.store else None
    if args.small:
        suite = scaled_suite(16)
        capacities = (6, 8, 10)
        base_linear = ArchitectureConfig(topology="L4")
        topologies = ("L4", "G2x2")
    else:
        suite = table2_suite()
        capacities = (14, 18, 22, 26, 30, 34)
        base_linear = ArchitectureConfig(topology="L6")
        topologies = ("L6", "G2x3")

    cache = ProgramCache()
    if args.figure == 6:
        bundle = figure6(suite, capacities=capacities,
                         base=base_linear.with_updates(gate="FM", reorder="GS"),
                         jobs=args.jobs, cache=cache, store=store)
        series = {"fidelity": bundle["fidelity"], "runtime_s": bundle["runtime_s"]}
    elif args.figure == 7:
        bundle = figure7(suite, capacities=capacities, topologies=topologies,
                         jobs=args.jobs, cache=cache, store=store)
        series = {"fidelity": bundle["fidelity"], "runtime_s": bundle["runtime_s"]}
    else:
        bundle = figure8(suite, capacities=capacities, base=base_linear,
                         jobs=args.jobs, cache=cache, store=store)
        series = {"fidelity": bundle["fidelity"], "runtime_s": bundle["runtime_s"]}

    print(f"Figure {args.figure} series over capacities {list(capacities)}:")
    for metric, per_app in series.items():
        print(f"\n[{metric}]")
        for app, values in per_app.items():
            print(f"  {app:12s} {values}")
    print()
    print(_cache_summary_line(cache))
    if store is not None:
        print(f"Experiment store: {store.directory} ({len(store)} points)")
        store.close()
    if args.output and not _write_json(figure_bundle_to_dict(bundle), args.output):
        return 1
    return 0


def _space_from_args(args):
    """A DesignSpace from ``--space`` JSON or from the axis flags."""

    from repro.dse import DesignSpace
    from repro.io import load_json

    if args.space:
        return DesignSpace.from_dict(load_json(args.space))
    if not args.apps:
        raise SystemExit("error: provide --space FILE or --apps (e.g. --apps QFT,BV)")
    return DesignSpace(
        apps=args.apps,
        qubits=args.qubits if args.qubits else (None,),
        topologies=args.topologies,
        capacities=args.capacities,
        gates=args.gates,
        reorders=args.reorders,
        buffers=args.buffers,
    )


def _print_record_table(records, limit=None) -> None:
    rows = [record.as_row() for record in records]
    if limit is not None:
        rows = rows[:limit]
    print(f"  {'application':12s} {'architecture':>22s} {'fidelity':>12s} "
          f"{'runtime':>10s} {'shuttles':>9s}")
    for row in rows:
        arch = f"{row['topology']}-cap{row['capacity']}-{row['gate']}-{row['reorder']}"
        print(f"  {row['application']:12s} {arch:>22s} {row['fidelity']:12.4e} "
              f"{row['duration_s']:9.4f}s {row['shuttles']:9d}")


def _cmd_dse_run(args) -> int:
    from repro.dse import DSERunner, Shard, make_strategy

    space = _space_from_args(args)
    try:
        strategy = make_strategy(args.strategy, seed=args.seed, metric=args.metric,
                                 samples=args.samples,
                                 proxy_qubits=args.proxy_qubits,
                                 batch_size=args.batch_size,
                                 max_evals=args.max_evals,
                                 surrogate=args.surrogate,
                                 objectives=args.objectives)
        shard = Shard.parse(args.shard) if args.shard else None
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    store = _open_store(args.store) if args.store else None

    objective_note = (f"objectives {','.join(strategy.objectives)}"
                      if getattr(strategy, "objectives", None)
                      else f"metric {args.metric}")
    print(f"Design space: {space.size} points "
          f"({len(space.apps)} apps x {len(space.qubits)} sizes x "
          f"{len(space.topologies)} topologies x "
          f"{len(space.capacities)} capacities x {len(space.gates)} gates x "
          f"{len(space.reorders)} reorders x {len(space.buffers)} buffers)")
    if store is not None:
        print(f"Store       : {store.directory} ({len(store)} points already "
              f"evaluated)")
    print(f"Strategy    : {strategy.name} (seed {args.seed}, {objective_note})"
          + (f", shard {args.shard}" if shard else ""))

    runner = DSERunner(space, store=store, jobs=args.jobs, shard=shard)
    try:
        result = runner.run(strategy)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    stats = runner.stats
    print(f"\nEvaluated {stats['evaluated']} points, replayed {stats['reused']} "
          f"from the store, left {stats['skipped']} to other shards.")

    evaluated = result.evaluated
    if evaluated:
        # Adaptive strategies revisit points; show each distinct point once.
        seen = set()
        distinct = []
        for record in evaluated:
            row = record.as_row()
            key = (row["application"], row["topology"], row["capacity"],
                   row["gate"], row["reorder"], row["buffer"])
            if key not in seen:
                seen.add(key)
                distinct.append(record)
        ranked = sorted(range(len(distinct)),
                        key=lambda i: (-_objective(distinct[i], args.metric), i))
        print(f"\nTop {min(args.top, len(ranked))} points by {args.metric}:")
        _print_record_table([distinct[i] for i in ranked], limit=args.top)
    if result.best is not None:
        best_row = result.best.as_row()
        print(f"\nBest point  : {best_row['application']} on "
              f"{best_row['topology']}-cap{best_row['capacity']}-"
              f"{best_row['gate']}-{best_row['reorder']} "
              f"(fidelity {best_row['fidelity']:.4e}, "
              f"runtime {best_row['duration_s']:.4f} s)")
    if result.frontier is not None:
        from repro.dse import records_hypervolume

        hv = records_hypervolume(result.evaluated, strategy.objectives)
        print(f"\nPareto frontier over ({', '.join(strategy.objectives)}): "
              f"{len(result.frontier)} points, normalised hypervolume "
              f"{hv:.6f}")
        _print_record_table(result.frontier)
    if runner.store.directory is not None:
        runner.store.close()

    if args.output:
        payload = {
            "space": space.to_dict(),
            "strategy": {"name": strategy.name, "seed": args.seed,
                         "metric": args.metric},
            "trace": result.trace,
            "records": [record.as_row() for record in evaluated],
        }
        if result.frontier is not None:
            payload["strategy"]["objectives"] = list(strategy.objectives)
            payload["frontier"] = [record.as_row()
                                   for record in result.frontier]
        if not _write_json(payload, args.output):
            return 1
    return 0


def _objective(record, metric):
    from repro.dse import objective_value

    return objective_value(record, metric)


def _cmd_dse_status(args) -> int:
    from repro.dse import DSERunner

    store = _open_store(args.store)
    print(f"Experiment store {store.directory}: {len(store)} evaluated points")
    for source, count in sorted(store.source_counts().items()):
        print(f"  {source:24s} {count} rows")
    if store.skipped_lines:
        print(f"  (skipped {store.skipped_lines} truncated/corrupt lines)")
        for source, count in sorted(store.skip_counts().items()):
            print(f"    {source:24s} {count} skipped")
    apps = {}
    for record in store.records():
        apps[record.application] = apps.get(record.application, 0) + 1
    for app, count in sorted(apps.items()):
        print(f"  {app:24s} {count} points")

    timings = store.wall_timings()
    if timings:
        mean_s = sum(timings) / len(timings)
        print(f"Timings: {len(timings)}/{len(store)} rows carry wall_s, "
              f"mean {mean_s:.3f} s/point")

    if getattr(args, "workers", None) is not None:
        _print_worker_telemetry(store)

    if getattr(args, "by_strategy", False):
        _print_by_strategy(store)

    space = None
    space_label = None
    if args.space:
        namespace = argparse.Namespace(space=args.space, apps=None)
        space = _space_from_args(namespace)
        space_label = args.space
    pending = None
    if space is not None:
        runner = DSERunner(space, store=store)
        pending = sum(1 for point in space.points()
                      if runner.fingerprint(point) not in store)
        print(f"\nSpace {space_label}: {space.size - pending}/{space.size} "
              f"points completed, {pending} pending")
    if getattr(args, "eta", False):
        return _print_eta(args, store, space, pending)
    return 0


def _print_worker_telemetry(store) -> None:
    """The ``dse status --workers`` tail: the dispatched fleet's telemetry."""

    from repro.dse.dispatch import telemetry_summary

    workers = telemetry_summary(store.directory)
    if not workers:
        print("\nWorkers: no telemetry recorded (the store was not "
              "dispatched, or predates worker telemetry)")
        return
    print(f"\nWorkers ({len(workers)}):")
    for owner, row in sorted(workers.items()):
        state = "alive" if row["alive"] else "exited"
        age = row["last_seen_age_s"]
        age_note = f"{age:.1f}s ago" if age is not None else "never"
        rate_note = (f", {row['points'] / row['wall_s']:.2f} points/s"
                     if row["wall_s"] and row["points"] else "")
        print(f"  {owner:28s} {state}; last {row['last_event'] or '-'} "
              f"({age_note}); {row['done']} done / {row['lost']} lost of "
              f"{row['claims']} claims, {row['renewals']} heartbeats; "
              f"{row['points']} evaluated + {row['replayed']} replayed"
              f"{rate_note}")


def _print_by_strategy(store) -> None:
    """The ``dse status --by-strategy`` tail: provenance-grouped points."""

    from repro.dse import best_record

    groups = {}
    for record in store.records():
        provenance = record.provenance or {}
        label = provenance.get("strategy") or "(no provenance)"
        groups.setdefault(label, []).append(record)
    print("\nBy strategy (schema v3 provenance):")
    for label, records in sorted(groups.items()):
        full_scale = [r for r in records
                      if (r.provenance or {}).get("proxy_qubits") is None]
        best = best_record(full_scale or records)
        seeds = sorted({(r.provenance or {}).get("seed") for r in records
                        if (r.provenance or {}).get("seed") is not None})
        proxies = sum(1 for r in records
                      if (r.provenance or {}).get("proxy_qubits") is not None)
        detail = f", {proxies} proxy-rung" if proxies else ""
        seed_note = f", seed(s) {seeds}" if seeds else ""
        print(f"  {label:16s} {len(records)} points{detail}{seed_note}; "
              f"best fidelity {best.fidelity:.4e} ({best.application})")


def _print_eta(args, store, space, pending) -> int:
    """The ``dse status --eta`` tail: pending x mean wall_s / active workers."""

    from repro.dse import DesignSpace, ShardLedger, estimate_eta_s
    from repro.dse.dispatch import DEFAULT_TTL_S, format_eta, read_manifest

    # --workers without a count (telemetry display, const 0) does not pin
    # the ETA's active-worker count; only an explicit number does.
    active = args.workers if args.workers else None
    manifest = None
    if space is None or active is None:
        # A dispatched store describes itself: the manifest names the space
        # and the work partition, the ledgers know how many leases are live.
        try:
            manifest = read_manifest(store.directory)
        except ValueError:
            manifest = None
        if manifest is not None:
            if space is None:
                space = DesignSpace.from_dict(manifest["space"])
                pending = None
            if active is None and manifest.get("mode", "shards") == "shards":
                ledger = ShardLedger.for_store(
                    store.directory, manifest["shards"],
                    ttl_s=manifest.get("ttl_s", DEFAULT_TTL_S))
                active = ledger.status_counts()["active"]
            elif active is None:
                from repro.dse import ProposalLedger

                ledger = ProposalLedger(
                    store.directory,
                    ttl_s=manifest.get("ttl_s", DEFAULT_TTL_S))
                active = ledger.active_leases()
    if space is None:
        print("\nETA: unknown -- provide --space FILE (or dispatch through "
              "`repro dse dispatch`, which records the space in the store's "
              "manifest) so pending points can be counted", file=sys.stderr)
        return 1
    if pending is None:
        # Cheap lower bound: every store row is assumed to belong to the
        # space (dispatch stores are dedicated to one study).  An adaptive
        # run stops at its evaluation budget, not the grid size -- and its
        # ledger's complete marker means nothing is pending at all.
        total = space.size
        if manifest is not None and manifest.get("mode") == "adaptive":
            from repro.dse import ProposalLedger
            from repro.dse.adaptive.propose import default_max_evals

            spec = manifest.get("strategy", {})
            if ProposalLedger(store.directory).read_complete() is not None:
                total = len(store)
            elif spec.get("max_evals") is not None:
                total = min(total, int(spec["max_evals"]))
            elif spec.get("name") == "bayes":
                total = min(total, default_max_evals(
                    space.size, int(spec.get("batch_size", 4))))
            else:
                # A multi-fidelity ladder has no fixed budget: its rung
                # sizes depend on results (and proxy rows can outnumber the
                # grid), so pretending pending == grid - stored would
                # report "0 pending" mid-run.  Honest unknown instead.
                print(f"\nETA: unknown -- adaptive strategy "
                      f"{spec.get('name')!r} has no fixed evaluation "
                      f"budget (run `dse status` again once the proposals "
                      f"ledger records completion)")
                return 0
        pending = max(0, total - len(store))
    active = active if active else 1
    eta_s = estimate_eta_s(pending, store.wall_timings(), active)
    print(f"ETA: {pending} pending points / {active} active worker(s) "
          f"~= {format_eta(eta_s)}")
    return 0


def _cmd_dse_dispatch(args) -> int:
    from repro.dse import Dispatcher
    from repro.dse.dispatch import DEFAULT_TTL_S, format_eta

    space = _space_from_args(args)
    if args.objectives and args.strategy not in ("ehvi", "parego"):
        # Same guard as `dse run` (make_strategy): a silently dropped
        # --objectives would dispatch a scalar search the caller believes
        # is multi-objective.
        raise SystemExit(f"error: --objectives only applies to the "
                         f"multi-objective strategies ('ehvi', 'parego'); "
                         f"use --metric with {args.strategy!r}")
    if args.strategy != "grid":
        return _dse_dispatch_adaptive(args, space)
    try:
        dispatcher = Dispatcher(
            space, args.store, workers=args.workers, shards=args.shards,
            ttl_s=args.ttl_s if args.ttl_s is not None else DEFAULT_TTL_S,
            jobs=args.jobs,
            throttle_s=args.throttle_s if args.throttle_s is not None else 0.0)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    print(f"Design space: {space.size} points -> {dispatcher.shards} leased "
          f"shards, {args.workers} worker(s) x {args.jobs} job(s)")
    print(f"Store       : {dispatcher.store_dir}")
    if args.print_only:
        try:
            manifest = dispatcher.prepare()
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        print(f"Manifest    : {manifest}")
        print("\nLaunch one worker per machine (each must mount the store "
              "directory):")
        for line in dispatcher.command_lines():
            print(f"  {line}")
        print("\nWatch progress with "
              f"`python -m repro dse status --store {dispatcher.store_dir} --eta`")
        return 0

    def report(progress):
        print(f"  {progress['points_done']}/{progress['points_total']} points, "
              f"shards {progress['shards']['done']}/{dispatcher.shards} done "
              f"({progress['shards']['active']} active), "
              f"ETA {format_eta(progress['eta_s'])}")

    try:
        summary = dispatcher.run(timeout_s=args.timeout_s, on_progress=report)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    status = "complete" if summary["complete"] else "INCOMPLETE"
    print(f"\nDispatch {status}: {summary['points']} points in "
          f"{summary['elapsed_s']:.1f} s "
          f"(respawned {summary['respawned']} worker(s))")
    _print_trace_merge(summary)
    if summary["complete"]:
        print(f"Export with `python -m repro dse export --store "
              f"{dispatcher.store_dir} --output study.json`")
    return 0 if summary["complete"] else 1


def _print_trace_merge(summary) -> None:
    """Report the automatic shard merge of a traced dispatch, if any."""

    info = summary.get("trace")
    if not info:
        return
    skipped = sum(info["skipped"].values())
    skip_note = f", {skipped} shard line(s) skipped" if skipped else ""
    print(f"Trace merge : {info['spans']} worker spans adopted from "
          f"{info['shards']} shard(s) across {len(info['pids'])} "
          f"process(es){skip_note}")


def _dse_dispatch_adaptive(args, space) -> int:
    """``dse dispatch --strategy bayes|adaptive-halving``: propose/evaluate."""

    from repro.dse import AdaptiveDispatcher
    from repro.dse.dispatch import DEFAULT_TTL_S

    if args.strategy in ("ehvi", "parego"):
        from repro.dse import make_strategy

        # Validation (objective names, --metric misuse, batch size) is
        # make_strategy's -- one guard shared with `dse run`; the resolved
        # objective list (DEFAULT_OBJECTIVES when the flag is omitted)
        # comes from the constructed strategy.
        try:
            validated = make_strategy(args.strategy, seed=args.seed,
                                      metric=args.metric,
                                      batch_size=args.batch_size,
                                      max_evals=args.max_evals,
                                      surrogate=args.surrogate,
                                      objectives=args.objectives)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        strategy = {"name": args.strategy, "seed": args.seed,
                    "objectives": list(validated.objectives),
                    "batch_size": args.batch_size}
        if args.max_evals is not None:
            strategy["max_evals"] = args.max_evals
        if args.surrogate is not None:
            strategy["surrogate"] = args.surrogate
    elif args.strategy == "bayes":
        strategy = {"name": args.strategy, "seed": args.seed,
                    "metric": args.metric, "batch_size": args.batch_size}
        if args.max_evals is not None:
            strategy["max_evals"] = args.max_evals
        if args.surrogate is not None:
            strategy["surrogate"] = args.surrogate
    else:
        strategy = {"name": args.strategy, "seed": args.seed,
                    "metric": args.metric,
                    "proxy_qubits": args.proxy_qubits}
        if args.surrogate is not None:
            strategy["surrogate"] = args.surrogate
    try:
        dispatcher = AdaptiveDispatcher(
            space, args.store, strategy=strategy, workers=args.workers,
            ttl_s=args.ttl_s if args.ttl_s is not None else DEFAULT_TTL_S,
            jobs=args.jobs,
            throttle_s=args.throttle_s if args.throttle_s is not None else 0.0)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    print(f"Design space: {space.size} points, adaptive strategy "
          f"{args.strategy} (seed {args.seed}) -> proposal batches x "
          f"{args.workers} worker(s)")
    print(f"Store       : {dispatcher.store_dir}")
    if args.print_only:
        try:
            manifest = dispatcher.prepare()
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        print(f"Manifest    : {manifest}")
        print("\nRun the proposer on one machine and one worker per machine "
              "(each must mount the store directory):")
        for line in dispatcher.command_lines():
            print(f"  {line}")
        return 0

    try:
        summary = dispatcher.run(timeout_s=args.timeout_s)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    status = "complete" if summary["complete"] else "INCOMPLETE"
    print(f"\nAdaptive dispatch {status}: {summary.get('evaluations', 0)} "
          f"evaluations over {summary.get('batches', 0)} batches in "
          f"{summary['elapsed_s']:.1f} s "
          f"(respawned {summary['respawned']} worker(s))")
    _print_trace_merge(summary)
    best = summary.get("best")
    if best is not None:
        config = best["point"]["config"]
        metric = (strategy["objectives"][0] if "objectives" in strategy
                  else args.metric)
        print(f"Best point  : {best['point']['app']} on "
              f"{config['topology']}-cap{config['trap_capacity']}-"
              f"{config['gate']}-{config['reorder']} "
              f"({metric} objective {best['value']:.4e})")
    frontier = summary.get("frontier")
    if frontier is not None:
        print(f"Frontier    : {len(frontier)} non-dominated point(s) over "
              f"({', '.join(summary.get('objectives', []))})")
        for entry in frontier:
            config = entry["point"]["config"]
            values = ", ".join(f"{value:.4e}" for value in entry["values"])
            print(f"  {entry['point']['app']} "
                  f"{config['topology']}-cap{config['trap_capacity']}-"
                  f"{config['gate']}-{config['reorder']}  [{values}]")
    return 0 if summary["complete"] else 1


def _cmd_dse_propose(args) -> int:
    from repro.dse import run_proposer

    try:
        summary = run_proposer(args.store, poll_s=args.poll_s)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    print(f"proposer: {summary['evaluations']} evaluations over "
          f"{summary['batches']} batches")
    best = summary.get("best")
    if best is not None:
        print(f"best: {best['point']['app']} "
              f"(objective {best['value']:.4e})")
    return 0


def _cmd_dse_worker(args) -> int:
    from repro.toolflow.parallel import shard_worker

    try:
        summary = shard_worker(args.store, owner=args.owner, jobs=args.jobs)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    print(f"worker {summary['owner']}: completed "
          f"{summary['completed'] or '[]'}, lost {summary['lost'] or '[]'}")
    return 0


def _cmd_dse_pareto(args) -> int:
    from repro.dse import (
        cloud_rows,
        parse_objectives,
        per_app_frontiers,
        record_frontier,
        records_hypervolume,
    )

    objectives = None
    if args.objectives:
        try:
            objectives = parse_objectives(args.objectives)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    store = _open_store(args.store)
    records = store.records()
    if args.app:
        records = [r for r in records if r.application == args.app]
        if not records:
            print(f"error: no points for application {args.app!r} in "
                  f"{store.directory}", file=sys.stderr)
            return 1
    if objectives is None:
        # Default view: the classic fidelity-vs-runtime frontier, fastest
        # first (unchanged output for existing tooling).
        frontiers = per_app_frontiers(records)
        label = "fastest first"
        csv_objectives = ("fidelity", "runtime")
    else:
        by_app = {}
        for record in records:
            by_app.setdefault(record.application, []).append(record)
        frontiers = {app: record_frontier(app_records, objectives)
                     for app, app_records in sorted(by_app.items())}
        label = f"objectives {','.join(objectives)}, best first"
        csv_objectives = objectives
    payload = {}
    for app, frontier in frontiers.items():
        print(f"\nPareto frontier for {app} ({len(frontier)} of "
              f"{sum(1 for r in records if r.application == app)} points, "
              f"{label}):")
        _print_record_table(frontier)
        if args.hypervolume:
            hv = records_hypervolume(
                [r for r in records if r.application == app],
                objectives or ("fidelity", "runtime"))
            print(f"  normalised hypervolume: {hv:.6f}")
        payload[app] = [record.as_row() for record in frontier]
    if args.output:
        if str(args.output).endswith(".csv"):
            # The CSV is the *full cloud* in stable n-D order with a
            # `dominated` column, so downstream tooling can plot every
            # point and highlight the frontier without re-deriving
            # dominance.
            if not _write_csv(cloud_rows(records, csv_objectives),
                              args.output):
                return 1
        elif not _write_json(payload, args.output):
            return 1
    return 0


def _cmd_dse_export(args) -> int:
    from repro.io import SCHEMA_VERSION

    store = _open_store(args.store)
    # export_rows is canonical (fingerprint-sorted, key-sorted, volatile
    # timings stripped): the same evaluated space exports byte-identically
    # whether it was run serially, sharded by hand, or dispatched.
    payload = {
        "schema_version": SCHEMA_VERSION,
        "num_points": len(store),
        "rows": store.export_rows(),
    }
    print(f"Exporting {len(store)} points from {store.directory}")
    if not _write_json(payload, args.output):
        return 1
    return 0


def _open_store(path):
    """Open an experiment store, turning load errors into a clean exit."""

    from repro.dse import ExperimentStore

    try:
        return ExperimentStore(path)
    except ValueError as exc:
        raise SystemExit(f"error: cannot read experiment store {path}: {exc}")


def _cmd_dse_top(args) -> int:
    from repro.obs.timeline import (DEFAULT_BUCKET_S, DEFAULT_WINDOW_BUCKETS,
                                    FleetMonitor, render_top)

    monitor = FleetMonitor(
        args.store,
        bucket_s=args.bucket_s if args.bucket_s is not None
        else DEFAULT_BUCKET_S,
        window=args.window if args.window is not None
        else DEFAULT_WINDOW_BUCKETS,
        ttl_s=args.ttl_s)
    try:
        if args.once:
            print(render_top(monitor.snapshot(), window=monitor.window))
            return 0
        return _top_loop(monitor, interval_s=args.interval_s)
    finally:
        monitor.close()


def _top_loop(monitor, *, interval_s: float) -> int:
    """The live ``dse top`` refresh loop: q quits, p pauses, Ctrl-C exits."""

    from repro.obs.timeline import render_top

    paused = False
    try:
        while True:
            if not paused:
                frame = render_top(monitor.snapshot(), window=monitor.window)
                # Clear + home, then the frame; one write per refresh so a
                # slow terminal never shows a half-drawn dashboard.
                sys.stdout.write("\x1b[2J\x1b[H" + frame
                                 + "\n\n[q] quit  [p] pause\n")
                sys.stdout.flush()
            key = _read_key(interval_s)
            if key == "q":
                return 0
            if key == "p":
                paused = not paused
                if paused:
                    sys.stdout.write("[paused -- p resumes]\n")
                    sys.stdout.flush()
    except KeyboardInterrupt:
        print()
        return 0


def _read_key(timeout_s: float) -> Optional[str]:
    """Wait up to ``timeout_s`` for one keypress (None on non-tty stdin).

    Raw-mode reads need termios and a real terminal; when either is
    missing (CI, pipes, Windows), degrade to a plain sleep so the
    dashboard still refreshes -- only the keybindings go dormant.
    """

    import select
    import time as _time

    if not sys.stdin.isatty():
        _time.sleep(timeout_s)
        return None
    try:
        import termios
        import tty
    except ImportError:
        _time.sleep(timeout_s)
        return None
    fd = sys.stdin.fileno()
    saved = termios.tcgetattr(fd)
    try:
        tty.setcbreak(fd)
        ready, _, _ = select.select([sys.stdin], [], [], timeout_s)
        if ready:
            return sys.stdin.read(1).lower()
        return None
    finally:
        termios.tcsetattr(fd, termios.TCSADRAIN, saved)


def _cmd_dse(args, parser) -> int:
    if args.dse_command is None:
        print("usage: repro dse {run,dispatch,propose,worker,top,status,"
              "pareto,export} ... (see `repro dse --help`)", file=sys.stderr)
        return 1
    handlers = {
        "run": _cmd_dse_run,
        "dispatch": _cmd_dse_dispatch,
        "propose": _cmd_dse_propose,
        "worker": _cmd_dse_worker,
        "top": _cmd_dse_top,
        "status": _cmd_dse_status,
        "pareto": _cmd_dse_pareto,
        "export": _cmd_dse_export,
    }
    return handlers[args.dse_command](args)


def _cmd_device(args) -> int:
    config = _config_from_args(args)
    device = config.build_device(args.qubits)
    print(device_report(device))
    return 0


def _cmd_check_budget(args) -> int:
    from repro.toolflow.budget import check_budget

    outcome = check_budget(args.budget_s)
    status = "OK" if outcome["ok"] else "OVER BUDGET"
    print(f"quickstart compile+simulate: {outcome['elapsed_s'] * 1e3:.1f} ms "
          f"(budget {outcome['budget_s'] * 1e3:.0f} ms) -- {status}")
    return 0 if outcome["ok"] else 1


def _arm_checks(args) -> None:
    """Turn on ``--check`` runtime verification for this command."""

    if getattr(args, "check", False):
        from repro.analyze import enable_checks

        enable_checks()


def _verify_compiled(circuit, config, *, races: bool):
    """Compile ``circuit`` under ``config`` and run the program checks."""

    from repro.analyze import detect_races, merge_reports, verify_program
    from repro.compiler import compile_circuit

    device = config.build_device(circuit.num_qubits)
    program = compile_circuit(circuit, device)
    report = verify_program(program, device)
    if races:
        report = merge_reports([report, detect_races(program)])
    return report


def _cmd_check(args) -> int:
    from pathlib import Path

    import repro
    from repro.analyze import (detect_races, lint_paths, merge_reports,
                               verify_program)
    from repro.io import SCHEMA_VERSION

    sections = []
    if args.src is not None:
        paths = list(args.src) or [str(Path(repro.__file__).parent)]
        sections.append((f"lint {' '.join(paths)}", lint_paths(paths)))
    if args.program:
        from repro.io import load_json, program_from_dict

        program = program_from_dict(load_json(args.program))
        report = verify_program(program)
        if not args.no_races:
            report = merge_reports([report, detect_races(program)])
        sections.append((f"verify {args.program}", report))
    if args.app:
        circuit = build_application(args.app, num_qubits=args.qubits)
        config = _config_from_args(args)
        sections.append((
            f"verify {circuit.name} on {config.name}",
            _verify_compiled(circuit, config, races=not args.no_races)))
    if args.suite:
        suite = scaled_suite(16)
        for topology in ("L4", "G2x2"):
            for reorder in ("GS", "IS"):
                config = ArchitectureConfig(topology=topology,
                                            trap_capacity=6, gate="FM",
                                            reorder=reorder)
                for name, circuit in suite.items():
                    sections.append((
                        f"verify {name} on {config.name}",
                        _verify_compiled(circuit, config,
                                         races=not args.no_races)))
    if not sections:
        raise SystemExit("error: provide --src [PATH ...], --program FILE, "
                         "--app NAME and/or --suite")

    total = merge_reports(report for _, report in sections)
    for label, report in sections:
        status = "ok" if report.ok and not len(report) else report.summary()
        print(f"{label}: {status}")
        if len(report):
            for line in report.format().splitlines()[:-1]:
                print(f"  {line}")
    print(f"\ncheck: {total.summary()} across {len(sections)} section(s)")
    if args.output:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "sections": [{"label": label, **report.to_dict()}
                         for label, report in sections],
            "ok": total.ok,
        }
        if not _write_json(payload, args.output):
            return 1
    return 0 if total.ok else 1


def _cmd_profile(args) -> int:
    from pathlib import Path

    from repro.obs import build_profile, format_profile, parse_spans_jsonl

    path = Path(args.trace)
    if path.name.endswith(".json") and not path.name.endswith(".spans.jsonl"):
        # Accept the Chrome-trace path the user passed to --trace; the
        # span JSONL the profiler wants sits beside it.
        sibling = path.with_name(path.name[:-len(".json")] + ".spans.jsonl")
        if sibling.exists():
            path = sibling
    try:
        spans = parse_spans_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read spans from {path}: {exc}", file=sys.stderr)
        return 1
    profile = build_profile(spans)
    print(format_profile(profile, top=args.top))
    if args.collapsed:
        try:
            from repro.obs import atomic_write_text

            atomic_write_text(args.collapsed,
                              "\n".join(profile["collapsed"]) + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.collapsed}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"\nWrote collapsed stacks to {args.collapsed}")
    if args.output and not _write_json(profile, args.output):
        return 1
    return 0


def _cmd_trace(args) -> int:
    if getattr(args, "trace_command", None) != "merge":
        print("usage: repro trace merge --store STORE --output OUT.JSON "
              "(see `repro trace --help`)", file=sys.stderr)
        return 1
    from repro.obs import write_merged_trace

    config = {key: value for key, value in sorted(vars(args).items())}
    try:
        paths, info = write_merged_trace(args.store, args.output,
                                         config=config)
    except (OSError, ValueError) as exc:
        print(f"error: cannot merge trace shards: {exc}", file=sys.stderr)
        return 1
    skipped = sum(info["skipped"].values())
    skip_note = f", {skipped} line(s) skipped" if skipped else ""
    print(f"Merged {info['shards']} shard(s): {info['spans']} spans from "
          f"{len(info['pids'])} process(es){skip_note}")
    print(f"Trace: {paths['trace']} (spans {paths['spans']}, "
          f"manifest {paths['manifest']})")
    return 0


def _cmd_bench(args) -> int:
    if getattr(args, "bench_command", None) != "diff":
        print("usage: repro bench diff OLD NEW (see `repro bench --help`)",
              file=sys.stderr)
        return 1
    from repro.obs import diff_bench_files, format_bench_diff

    try:
        report = diff_bench_files(args.old, args.new,
                                  threshold=args.threshold)
    except (OSError, ValueError) as exc:
        print(f"error: cannot compare benchmark artefacts: {exc}",
              file=sys.stderr)
        return 1
    print(format_bench_diff(report))
    if args.output and not _write_json(report, args.output):
        return 1
    return 1 if report["regressions"] else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    # `repro profile TRACE` names its positional "trace" and `repro trace
    # merge` is the offline merger; only the optional --trace/--profile
    # flags of the pipeline commands arm the tracer.
    trace_path = getattr(args, "trace", None) \
        if args.command not in ("profile", "trace") else None
    show_profile = getattr(args, "profile", False) is True
    if not trace_path and not show_profile:
        return _dispatch_command(args, parser)
    return _traced_command(args, parser, trace_path, show_profile)


def _traced_command(args, parser, trace_path, show_profile=False) -> int:
    """Run one subcommand under the span tracer and flush the trace views.

    The registry is reset first so the manifest's metrics snapshot covers
    exactly this command.  Tracing never changes results: spans observe the
    pipeline, and the store's canonical export is byte-identical with and
    without ``--trace`` (pinned by CI's obs-smoke job).

    The flush runs in a ``finally`` block: a command that *raises* still
    leaves a complete, readable trace of every span that finished (written
    atomically, so no reader ever sees a torn file), and ``--profile``
    still prints its report -- a crashed run is precisely the one whose
    time breakdown is needed.
    """

    from repro.obs import disable_tracing, enable_tracing, reset_registry

    reset_registry()
    enable_tracing()
    code: Optional[int] = None
    try:
        code = _dispatch_command(args, parser)
        return _flush_trace(args, disable_tracing(), trace_path,
                            show_profile, code)
    finally:
        tracer = disable_tracing()
        if code is None and tracer is not None:
            # An exception is in flight; flush best-effort without
            # masking it.
            try:
                _flush_trace(args, tracer, trace_path, show_profile, None)
            except Exception:  # pragma: no cover - double-fault path
                pass


def _flush_trace(args, tracer, trace_path, show_profile,
                 code: Optional[int]) -> int:
    """Write the trace bundle and/or print the profile; returns exit code."""

    from repro.obs import build_profile, format_profile, write_trace

    if trace_path:
        config = {key: value for key, value in sorted(vars(args).items())
                  if key != "trace"}
        extra = {} if code is None else {"exit_code": code}
        try:
            paths = write_trace(trace_path, tracer, config=config,
                                extra=extra)
        except OSError as exc:
            print(f"error: cannot write trace {trace_path}: {exc}",
                  file=sys.stderr)
            return 1
        note = " (command failed; partial trace)" if code is None else ""
        count = len(tracer.spans) + len(tracer.foreign)
        print(f"Trace: {paths['trace']} ({count} spans; "
              f"spans {paths['spans']}, manifest {paths['manifest']})"
              f"{note}")
    if show_profile:
        # records() includes adopted foreign spans, so a dispatch run's
        # profile covers the whole fleet (cross-process critical path).
        profile = build_profile(tracer.records())
        print()
        print(format_profile(profile))
    return code if code is not None else 1


def _dispatch_command(args, parser) -> int:
    from repro.analyze import StaticAnalysisError

    try:
        return _dispatch_command_inner(args, parser)
    except StaticAnalysisError as exc:
        print(f"static analysis failed:\n{exc.report.format()}",
              file=sys.stderr)
        return 1


def _dispatch_command_inner(args, parser) -> int:
    _arm_checks(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "info":
        return _cmd_info()
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "table2":
        return _cmd_table2(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "dse":
        return _cmd_dse(args, parser)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "device":
        return _cmd_device(args)
    if args.command == "check-budget":
        return _cmd_check_budget(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Backend compiler for QCCD-based trapped-ion devices (paper Sections V.A, VI).

The compiler takes a fully unrolled circuit IR and a candidate
:class:`~repro.hardware.device.QCCDDevice` and produces a
:class:`~repro.isa.program.QCCDProgram`:

1. **Mapping** (:mod:`~repro.compiler.mapping`): program qubits are placed
   onto traps with a greedy heuristic that orders qubits by first use and
   leaves buffer slots for incoming shuttles.
2. **Scheduling** (:mod:`~repro.compiler.scheduler`): gates are processed in
   earliest-ready-gate-first order, preferring gates that are already local.
3. **Routing** (:mod:`~repro.compiler.routing`,
   :mod:`~repro.compiler.shuttle`): two-qubit gates between traps trigger a
   shuttle along the shortest path, with split/move/junction/merge primitives
   and pass-through handling for linear topologies.
4. **Chain reordering** (:mod:`~repro.compiler.reorder`): ions are brought to
   the correct chain end before splits, using gate-based swapping (GS) or
   physical ion swapping (IS).

:func:`compile_circuit` is the public entry point.
"""

from repro.compiler.compile import compile_circuit, CompilerOptions
from repro.compiler.placement_state import PlacementState, TrapChain
from repro.compiler.mapping import greedy_mapping, round_robin_mapping

__all__ = [
    "compile_circuit",
    "CompilerOptions",
    "PlacementState",
    "TrapChain",
    "greedy_mapping",
    "round_robin_mapping",
]

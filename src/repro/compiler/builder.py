"""ProgramBuilder: appends primitive operations and tracks dependencies.

Dependencies emitted per operation are

* the last operation touching each involved ion (data/transport order), and
* the last operation touching each involved trap (chain-structure and serial
  gate execution order within a trap; the paper notes gates in a single trap
  execute serially).

Shuttle moves through segments and junctions involve no trap, so independent
shuttles remain free to overlap; the simulator adds segment/junction
exclusivity on top of these dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.operations import (
    GateOp,
    IonSwapOp,
    JunctionCrossOp,
    MergeOp,
    MeasureOp,
    MoveOp,
    Operation,
    SplitOp,
    SwapGateOp,
)


class ProgramBuilder:
    """Accumulates operations with automatic dependency bookkeeping."""

    def __init__(self) -> None:
        self.operations: List[Operation] = []
        self._last_for_ion: Dict[int, int] = {}
        self._last_for_trap: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.operations)

    def _dependencies(self, ions: Iterable[int], traps: Iterable[str]) -> Tuple[int, ...]:
        last_for_ion = self._last_for_ion
        last_for_trap = self._last_for_trap
        deps = {
            last_for_ion[ion] for ion in ions if ion in last_for_ion
        }
        for trap in traps:
            if trap in last_for_trap:
                deps.add(last_for_trap[trap])
        if len(deps) > 1:
            return tuple(sorted(deps))
        return tuple(deps)

    def _register(self, op: Operation, ions: Iterable[int], traps: Iterable[str]) -> Operation:
        self.operations.append(op)
        for ion in ions:
            self._last_for_ion[ion] = op.op_id
        for trap in traps:
            self._last_for_trap[trap] = op.op_id
        return op

    @property
    def next_id(self) -> int:
        """The op_id the next emitted operation will receive."""

        return len(self.operations)

    # ------------------------------------------------------------------ #
    # Emission helpers, one per primitive
    # ------------------------------------------------------------------ #
    def gate(self, *, trap: str, ions: Tuple[int, ...], qubits: Tuple[int, ...],
             name: str, chain_length: int, ion_distance: int = 0) -> GateOp:
        """Emit a single- or two-qubit gate inside ``trap``."""

        op = GateOp(
            op_id=self.next_id,
            dependencies=self._dependencies(ions, [trap]),
            trap=trap, ions=ions, qubits=qubits, name=name,
            chain_length=chain_length, ion_distance=ion_distance,
        )
        return self._register(op, ions, [trap])

    def swap_gate(self, *, trap: str, ions: Tuple[int, int],
                  qubits: Tuple[Optional[int], Optional[int]],
                  chain_length: int, ion_distance: int) -> SwapGateOp:
        """Emit a gate-based SWAP (GS reordering)."""

        op = SwapGateOp(
            op_id=self.next_id,
            dependencies=self._dependencies(ions, [trap]),
            trap=trap, ions=ions, qubits=qubits,
            chain_length=chain_length, ion_distance=ion_distance,
        )
        return self._register(op, ions, [trap])

    def measure(self, *, trap: str, ion: int, qubit: int) -> MeasureOp:
        """Emit a measurement."""

        op = MeasureOp(
            op_id=self.next_id,
            dependencies=self._dependencies([ion], [trap]),
            trap=trap, ion=ion, qubit=qubit,
        )
        return self._register(op, [ion], [trap])

    def split(self, *, trap: str, ion: int, chain_size: int, side: str) -> SplitOp:
        """Emit a split of ``ion`` off ``trap``'s chain."""

        op = SplitOp(
            op_id=self.next_id,
            dependencies=self._dependencies([ion], [trap]),
            trap=trap, ion=ion, chain_size=chain_size, side=side,
        )
        return self._register(op, [ion], [trap])

    def move(self, *, ion: int, segment: str, length: int,
             from_node: str, to_node: str) -> MoveOp:
        """Emit a move through one segment."""

        op = MoveOp(
            op_id=self.next_id,
            dependencies=self._dependencies([ion], []),
            ion=ion, segment=segment, length=length,
            from_node=from_node, to_node=to_node,
        )
        return self._register(op, [ion], [])

    def cross_junction(self, *, ion: int, junction: str, degree: int) -> JunctionCrossOp:
        """Emit a junction crossing."""

        op = JunctionCrossOp(
            op_id=self.next_id,
            dependencies=self._dependencies([ion], []),
            ion=ion, junction=junction, junction_degree=degree,
        )
        return self._register(op, [ion], [])

    def merge(self, *, trap: str, ion: int, side: str) -> MergeOp:
        """Emit a merge of a travelling ion into ``trap``."""

        op = MergeOp(
            op_id=self.next_id,
            dependencies=self._dependencies([ion], [trap]),
            trap=trap, ion=ion, side=side,
        )
        return self._register(op, [ion], [trap])

    def ion_swap(self, *, trap: str, ions: Tuple[int, int], chain_size: int) -> IonSwapOp:
        """Emit a physical swap of two adjacent ions (one IS hop)."""

        op = IonSwapOp(
            op_id=self.next_id,
            dependencies=self._dependencies(ions, [trap]),
            trap=trap, ions=ions, chain_size=chain_size,
        )
        return self._register(op, ions, [trap])

"""Top-level compilation pass: circuit + device -> QCCDProgram.

The pass follows Section VI of the paper:

1. lower the circuit to the trapped-ion native gate set;
2. map program qubits onto traps with the selected heuristic;
3. walk the dependency DAG in earliest-ready-gate-first order;
4. for each two-qubit gate whose operands live in different traps, plan the
   communication (which qubit moves, evictions if the target trap is full) and
   emit the shuttle primitives, inserting chain-reordering operations where
   the departing state is not at the correct chain end;
5. emit the gate itself, annotated with the chain length and ion separation
   the simulator needs to evaluate the performance and fidelity models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.builder import ProgramBuilder
from repro.compiler.mapping import MAPPING_STRATEGIES
from repro.compiler.placement_state import PlacementState
from repro.compiler.routing import Router
from repro.compiler.scheduler import GateScheduler
from repro.compiler.shuttle import emit_shuttle
from repro.hardware.device import QCCDDevice
from repro.ir.circuit import Circuit
from repro.ir.gate import Gate, GateKind
from repro.isa.program import QCCDProgram


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs of the compilation pass.

    Attributes
    ----------
    mapping:
        Initial mapping strategy: ``"greedy"`` (the paper's heuristic),
        ``"round_robin"`` or ``"interaction_aware"``.
    routing:
        Shuttle direction policy: ``"affinity"`` (default; move the operand
        whose interactions pull it toward the destination), ``"space"`` or
        ``"fixed"`` (see :mod:`repro.compiler.routing`).
    lower_to_native:
        Whether to rewrite SWAP gates into three MS-class gates before
        compiling (the paper's IR is already in the native set).
    validate:
        Run the placement-state consistency checks after compilation.
    """

    mapping: str = "greedy"
    routing: str = "affinity"
    lower_to_native: bool = True
    validate: bool = True

    def mapping_fn(self):
        """Resolve the mapping strategy name to its implementation."""

        try:
            return MAPPING_STRATEGIES[self.mapping]
        except KeyError:
            valid = ", ".join(sorted(MAPPING_STRATEGIES))
            raise ValueError(f"unknown mapping strategy {self.mapping!r}; expected one of {valid}")


class _NextUseTracker:
    """Answers "when is this qubit needed next?" for the eviction policy."""

    def __init__(self, circuit: Circuit) -> None:
        self._uses: Dict[int, List[int]] = {}
        for index, gate in enumerate(circuit.gates):
            if gate.kind is GateKind.TWO_QUBIT:
                for qubit in gate.qubits:
                    self._uses.setdefault(qubit, []).append(index)
        self._pointers: Dict[int, int] = {qubit: 0 for qubit in self._uses}
        self._emitted: set = set()

    def mark_emitted(self, gate_index: int) -> None:
        """Record that a gate has been compiled."""

        self._emitted.add(gate_index)

    def next_use(self, qubit: int) -> Optional[int]:
        """Index of the next *uncompiled* two-qubit gate using ``qubit``."""

        uses = self._uses.get(qubit)
        if not uses:
            return None
        pointer = self._pointers[qubit]
        while pointer < len(uses) and uses[pointer] in self._emitted:
            pointer += 1
        self._pointers[qubit] = pointer
        return uses[pointer] if pointer < len(uses) else None


def compile_circuit(circuit: Circuit, device: QCCDDevice,
                    options: Optional[CompilerOptions] = None) -> QCCDProgram:
    """Compile ``circuit`` for ``device`` and return the executable program."""

    options = options or CompilerOptions()
    if options.lower_to_native:
        circuit = circuit.lowered()
    if circuit.num_qubits > device.num_qubits:
        raise ValueError(
            f"circuit uses {circuit.num_qubits} qubits but the device only loads "
            f"{device.num_qubits} ions"
        )

    state: PlacementState = options.mapping_fn()(circuit, device)
    placement = state.snapshot_placement()
    builder = ProgramBuilder()
    next_use = _NextUseTracker(circuit)
    router = Router(state, device, next_use=next_use.next_use,
                    interaction_weights=circuit.interaction_counts(),
                    policy=options.routing)

    def is_local(gate_index: int) -> bool:
        gate = circuit[gate_index]
        if gate.kind is not GateKind.TWO_QUBIT:
            return True
        trap_a = state.trap_of_qubit(gate.qubits[0])
        trap_b = state.trap_of_qubit(gate.qubits[1])
        return trap_a == trap_b

    scheduler = GateScheduler(circuit, is_local=is_local)
    while not scheduler.done():
        index = scheduler.next_gate()
        _emit_gate(circuit[index], builder, state, device, router)
        next_use.mark_emitted(index)
        scheduler.mark_done(index)

    if options.validate:
        state.validate()

    program = QCCDProgram(
        operations=builder.operations,
        placement=placement,
        circuit_name=circuit.name,
        device_name=device.name,
        metadata={
            "num_program_qubits": circuit.num_qubits,
            "num_circuit_two_qubit_gates": circuit.num_two_qubit_gates,
            "mapping": options.mapping,
            "gate": device.gate.value,
            "reorder": device.reorder.value,
        },
    )
    if options.validate:
        program.validate()
    return program


# --------------------------------------------------------------------------- #
def _emit_gate(gate: Gate, builder: ProgramBuilder, state: PlacementState,
               device: QCCDDevice, router: Router) -> None:
    """Emit one IR gate (plus any communication it needs)."""

    kind = gate.kind
    if kind is GateKind.BARRIER:
        return
    if kind is GateKind.SINGLE_QUBIT:
        _emit_single_qubit(gate, builder, state)
        return
    if kind is GateKind.MEASUREMENT:
        _emit_measurement(gate, builder, state)
        return
    _emit_two_qubit(gate, builder, state, device, router)


def _emit_single_qubit(gate: Gate, builder: ProgramBuilder, state: PlacementState) -> None:
    qubit = gate.qubits[0]
    trap = state.trap_of_qubit(qubit)
    ion = state.ion_of_qubit(qubit)
    builder.gate(trap=trap, ions=(ion,), qubits=(qubit,), name=gate.name,
                 chain_length=len(state.chain(trap)))


def _emit_measurement(gate: Gate, builder: ProgramBuilder, state: PlacementState) -> None:
    qubit = gate.qubits[0]
    trap = state.trap_of_qubit(qubit)
    ion = state.ion_of_qubit(qubit)
    builder.measure(trap=trap, ion=ion, qubit=qubit)


def _emit_two_qubit(gate: Gate, builder: ProgramBuilder, state: PlacementState,
                    device: QCCDDevice, router: Router) -> None:
    qubit_a, qubit_b = gate.qubits
    plan = router.plan_two_qubit_gate(qubit_a, qubit_b)
    if plan is not None:
        for request in plan.all_shuttles:
            emit_shuttle(builder, state, device, request.qubit, request.destination)

    trap = state.trap_of_qubit(qubit_a)
    other = state.trap_of_qubit(qubit_b)
    if trap != other:
        raise RuntimeError(
            f"router failed to co-locate qubits {qubit_a} and {qubit_b} "
            f"({trap} vs {other})"
        )
    chain = state.chain(trap)
    ion_a = state.ion_of_qubit(qubit_a)
    ion_b = state.ion_of_qubit(qubit_b)
    builder.gate(
        trap=trap,
        ions=(ion_a, ion_b),
        qubits=(qubit_a, qubit_b),
        name=gate.name,
        chain_length=len(chain),
        ion_distance=chain.distance_between(ion_a, ion_b),
    )

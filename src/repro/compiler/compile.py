"""Top-level compilation pass: circuit + device -> QCCDProgram.

The pass follows Section VI of the paper:

1. lower the circuit to the trapped-ion native gate set;
2. map program qubits onto traps with the selected heuristic;
3. walk the dependency DAG in earliest-ready-gate-first order;
4. for each two-qubit gate whose operands live in different traps, plan the
   communication (which qubit moves, evictions if the target trap is full) and
   emit the shuttle primitives, inserting chain-reordering operations where
   the departing state is not at the correct chain end;
5. emit the gate itself, annotated with the chain length and ion separation
   the simulator needs to evaluate the performance and fidelity models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analyze.runtime import checks_enabled, verify_or_raise
from repro.compiler.builder import ProgramBuilder
from repro.compiler.mapping import MAPPING_STRATEGIES
from repro.compiler.placement_state import PlacementState
from repro.compiler.routing import Router
from repro.compiler.scheduler import GateScheduler
from repro.compiler.shuttle import emit_shuttle
from repro.hardware.device import QCCDDevice
from repro.ir.circuit import Circuit
from repro.ir.gate import Gate, GateKind
from repro.isa.program import QCCDProgram
from repro.obs.trace import span


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs of the compilation pass.

    Attributes
    ----------
    mapping:
        Initial mapping strategy: ``"greedy"`` (the paper's heuristic),
        ``"round_robin"`` or ``"interaction_aware"``.
    routing:
        Shuttle direction policy: ``"affinity"`` (default; move the operand
        whose interactions pull it toward the destination), ``"space"`` or
        ``"fixed"`` (see :mod:`repro.compiler.routing`).
    lower_to_native:
        Whether to rewrite SWAP gates into three MS-class gates before
        compiling (the paper's IR is already in the native set).
    validate:
        Run the placement-state consistency checks after compilation.
    """

    mapping: str = "greedy"
    routing: str = "affinity"
    lower_to_native: bool = True
    validate: bool = True

    def mapping_fn(self):
        """Resolve the mapping strategy name to its implementation."""

        try:
            return MAPPING_STRATEGIES[self.mapping]
        except KeyError:
            valid = ", ".join(sorted(MAPPING_STRATEGIES))
            raise ValueError(f"unknown mapping strategy {self.mapping!r}; expected one of {valid}")


class _NextUseTracker:
    """Answers "when is this qubit needed next?" for the eviction policy."""

    def __init__(self, circuit: Circuit,
                 uses: Optional[Dict[int, List[int]]] = None) -> None:
        if uses is None:
            uses = {}
            for index, gate in enumerate(circuit.gates):
                if gate.kind is GateKind.TWO_QUBIT:
                    for qubit in gate.qubits:
                        uses.setdefault(qubit, []).append(index)
        self._uses: Dict[int, List[int]] = uses
        self._pointers: Dict[int, int] = {qubit: 0 for qubit in self._uses}
        self._emitted: set = set()

    def mark_emitted(self, gate_index: int) -> None:
        """Record that a gate has been compiled."""

        self._emitted.add(gate_index)

    def next_use(self, qubit: int) -> Optional[int]:
        """Index of the next *uncompiled* two-qubit gate using ``qubit``."""

        uses = self._uses.get(qubit)
        if not uses:
            return None
        pointer = self._pointers[qubit]
        while pointer < len(uses) and uses[pointer] in self._emitted:
            pointer += 1
        self._pointers[qubit] = pointer
        return uses[pointer] if pointer < len(uses) else None


def compile_circuit(circuit: Circuit, device: QCCDDevice,
                    options: Optional[CompilerOptions] = None) -> QCCDProgram:
    """Compile ``circuit`` for ``device`` and return the executable program."""

    options = options or CompilerOptions()
    with span("compile", circuit=circuit.name, device=device.name,
              mapping=options.mapping, routing=options.routing) as trace:
        program = _compile_circuit(circuit, device, options)
        trace.set(ops=len(program), shuttles=program.num_shuttles)
        return program


def _compile_circuit(circuit: Circuit, device: QCCDDevice,
                     options: CompilerOptions) -> QCCDProgram:
    if options.lower_to_native:
        with span("compile.lower"):
            circuit = circuit.lowered()
    if circuit.num_qubits > device.num_qubits:
        raise ValueError(
            f"circuit uses {circuit.num_qubits} qubits but the device only loads "
            f"{device.num_qubits} ions"
        )

    with span("compile.map", strategy=options.mapping):
        state: PlacementState = options.mapping_fn()(circuit, device)
    placement = state.snapshot_placement()
    builder = ProgramBuilder()

    # One preprocessing pass derives everything the loop needs per two-qubit
    # gate: operand table (scheduler locality), interaction histogram (router
    # affinity) and per-qubit use lists (eviction policy), with a single kind
    # classification per gate.
    two_qubit_operands: Dict[int, tuple] = {}
    interaction_weights: Dict[tuple, int] = {}
    uses: Dict[int, List[int]] = {}
    for index, gate in enumerate(circuit):
        if gate.kind is not GateKind.TWO_QUBIT:
            continue
        qubit_a, qubit_b = gate.qubits
        two_qubit_operands[index] = gate.qubits
        key = (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)
        interaction_weights[key] = interaction_weights.get(key, 0) + 1
        uses.setdefault(qubit_a, []).append(index)
        uses.setdefault(qubit_b, []).append(index)

    next_use = _NextUseTracker(circuit, uses=uses)
    router = Router(state, device, next_use=next_use.next_use,
                    interaction_weights=interaction_weights,
                    policy=options.routing)
    trap_of_qubit = state.trap_of_qubit

    def is_local(gate_index: int) -> bool:
        operands = two_qubit_operands.get(gate_index)
        if operands is None:
            return True
        return trap_of_qubit(operands[0]) == trap_of_qubit(operands[1])

    scheduler = GateScheduler(circuit, is_local=is_local,
                              two_qubit_operands=two_qubit_operands)
    # One span covers the interleaved schedule/route/reorder loop: gates are
    # scheduled earliest-ready-first, routed (shuttle planning + chain
    # reordering) and emitted in the same pass.
    with span("compile.route", policy=options.routing,
              gates=len(two_qubit_operands)):
        while not scheduler.done():
            index = scheduler.next_gate()
            moved_qubits = _emit_gate(circuit[index], builder, state, device, router)
            if moved_qubits:
                scheduler.note_qubits_moved(moved_qubits)
            next_use.mark_emitted(index)
            scheduler.mark_done(index)

    if options.validate:
        with span("compile.validate"):
            state.validate()

    program = QCCDProgram(
        operations=builder.operations,
        placement=placement,
        circuit_name=circuit.name,
        device_name=device.name,
        metadata={
            "num_program_qubits": circuit.num_qubits,
            "num_circuit_two_qubit_gates": circuit.num_two_qubit_gates,
            "mapping": options.mapping,
            "gate": device.gate.value,
            "reorder": device.reorder.value,
        },
    )
    if options.validate:
        program.validate()
    if checks_enabled():
        verify_or_raise(program, device)
    return program


# --------------------------------------------------------------------------- #
def _emit_gate(gate: Gate, builder: ProgramBuilder, state: PlacementState,
               device: QCCDDevice, router: Router) -> List[int]:
    """Emit one IR gate (plus any communication it needs).

    Returns the program qubits whose trap changed while emitting the gate, so
    the compile loop can invalidate the scheduler's and router's caches.
    """

    kind = gate.kind
    if kind is GateKind.BARRIER:
        return []
    if kind is GateKind.SINGLE_QUBIT:
        _emit_single_qubit(gate, builder, state)
        return []
    if kind is GateKind.MEASUREMENT:
        _emit_measurement(gate, builder, state)
        return []
    return _emit_two_qubit(gate, builder, state, device, router)


def _emit_single_qubit(gate: Gate, builder: ProgramBuilder, state: PlacementState) -> None:
    qubit = gate.qubits[0]
    trap = state.trap_of_qubit(qubit)
    ion = state.ion_of_qubit(qubit)
    builder.gate(trap=trap, ions=(ion,), qubits=(qubit,), name=gate.name,
                 chain_length=len(state.chain(trap)))


def _emit_measurement(gate: Gate, builder: ProgramBuilder, state: PlacementState) -> None:
    qubit = gate.qubits[0]
    trap = state.trap_of_qubit(qubit)
    ion = state.ion_of_qubit(qubit)
    builder.measure(trap=trap, ion=ion, qubit=qubit)


def _emit_two_qubit(gate: Gate, builder: ProgramBuilder, state: PlacementState,
                    device: QCCDDevice, router: Router) -> List[int]:
    qubit_a, qubit_b = gate.qubits
    plan = router.plan_two_qubit_gate(qubit_a, qubit_b)
    moved: List[int] = []
    if plan is not None:
        for request in plan.all_shuttles:
            source = state.trap_of_qubit(request.qubit)
            emit_shuttle(builder, state, device, request.qubit, request.destination)
            router.note_qubit_moved(request.qubit, source, request.destination)
            moved.append(request.qubit)

    trap = state.trap_of_qubit(qubit_a)
    other = state.trap_of_qubit(qubit_b)
    if trap != other:
        raise RuntimeError(
            f"router failed to co-locate qubits {qubit_a} and {qubit_b} "
            f"({trap} vs {other})"
        )
    chain = state.chain(trap)
    ion_a = state.ion_of_qubit(qubit_a)
    ion_b = state.ion_of_qubit(qubit_b)
    builder.gate(
        trap=trap,
        ions=(ion_a, ion_b),
        qubits=(qubit_a, qubit_b),
        name=gate.name,
        chain_length=len(chain),
        ion_distance=chain.distance_between(ion_a, ion_b),
    )
    return moved

"""Initial qubit-to-trap mapping heuristics (paper Section VI).

The default heuristic is the paper's: order program qubits by the sequence in
which the application first uses them, then fill traps in topology order,
leaving ``buffer_ions`` free slots per trap for incoming shuttles.  Because
most NISQ circuits (QAOA ring ansatz, Supremacy grids, adders) interact
neighbouring qubit indices, first-use order co-locates interacting qubits.

Two alternatives are provided for ablation studies:

* :func:`round_robin_mapping` -- deal qubits across traps one at a time
  (deliberately poor locality; useful as a stress baseline).
* :func:`interaction_aware_mapping` -- greedy clustering by interaction count
  (a heavier heuristic in the spirit of [74]).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.compiler.placement_state import PlacementState
from repro.hardware.device import QCCDDevice
from repro.ir.circuit import Circuit


def first_use_order(circuit: Circuit) -> List[int]:
    """Program qubits ordered by the position of their first gate.

    Qubits that never appear in a gate are appended afterwards in index order
    so that every program qubit receives an ion.
    """

    order: List[int] = []
    seen = set()
    for gate in circuit.gates:
        for qubit in gate.qubits:
            if qubit not in seen:
                seen.add(qubit)
                order.append(qubit)
    for qubit in range(circuit.num_qubits):
        if qubit not in seen:
            order.append(qubit)
    return order


def _check_fits(circuit: Circuit, device: QCCDDevice) -> None:
    usable = device.usable_capacity()
    if circuit.num_qubits > usable:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but the device only has "
            f"{usable} usable slots ({device.topology.num_traps} traps of capacity "
            f"{device.trap_capacity} with {device.buffer_ions} buffer slots each)"
        )


def _fill_traps(order: Sequence[int], device: QCCDDevice) -> PlacementState:
    """Place qubits in ``order`` into traps in topology order."""

    state = PlacementState(device)
    traps = list(device.topology.traps)
    trap_index = 0
    placed_in_trap = 0
    for qubit in order:
        while True:
            trap = traps[trap_index]
            limit = trap.usable_capacity(device.buffer_ions)
            if placed_in_trap < limit:
                break
            trap_index += 1
            placed_in_trap = 0
            if trap_index >= len(traps):
                raise ValueError("ran out of trap capacity while mapping")
        state.load_ion(ion=qubit, trap_name=traps[trap_index].name, qubit=qubit)
        placed_in_trap += 1
    return state


def greedy_mapping(circuit: Circuit, device: QCCDDevice) -> PlacementState:
    """The paper's greedy mapping: first-use order, traps filled in sequence."""

    _check_fits(circuit, device)
    return _fill_traps(first_use_order(circuit), device)


def round_robin_mapping(circuit: Circuit, device: QCCDDevice) -> PlacementState:
    """Deal qubits across traps round-robin (ablation baseline)."""

    _check_fits(circuit, device)
    state = PlacementState(device)
    traps = list(device.topology.traps)
    capacities = {t.name: t.usable_capacity(device.buffer_ions) for t in traps}
    counts = defaultdict(int)
    trap_cycle = 0
    for qubit in first_use_order(circuit):
        placed = False
        for offset in range(len(traps)):
            trap = traps[(trap_cycle + offset) % len(traps)]
            if counts[trap.name] < capacities[trap.name]:
                state.load_ion(ion=qubit, trap_name=trap.name, qubit=qubit)
                counts[trap.name] += 1
                trap_cycle = (trap_cycle + offset + 1) % len(traps)
                placed = True
                break
        if not placed:
            raise ValueError("ran out of trap capacity while mapping")
    return state


def interaction_aware_mapping(circuit: Circuit, device: QCCDDevice) -> PlacementState:
    """Greedy clustering by interaction weight.

    Qubits are considered in first-use order; each qubit is placed in the trap
    (with free usable space) that maximises the total interaction count with
    qubits already placed there, breaking ties toward the first-use trap
    order.  This approximates the qubit-allocation heuristics of [74] without
    an expensive search.
    """

    _check_fits(circuit, device)
    interactions = circuit.interaction_counts()
    weight: Dict[int, Dict[int, int]] = defaultdict(dict)
    for (a, b), count in interactions.items():
        weight[a][b] = count
        weight[b][a] = count

    state = PlacementState(device)
    traps = list(device.topology.traps)
    capacities = {t.name: t.usable_capacity(device.buffer_ions) for t in traps}
    members: Dict[str, List[int]] = {t.name: [] for t in traps}

    for qubit in first_use_order(circuit):
        best_trap = None
        best_score = -1
        for trap in traps:
            if len(members[trap.name]) >= capacities[trap.name]:
                continue
            score = sum(weight[qubit].get(other, 0) for other in members[trap.name])
            if score > best_score:
                best_score = score
                best_trap = trap
        if best_trap is None:
            raise ValueError("ran out of trap capacity while mapping")
        state.load_ion(ion=qubit, trap_name=best_trap.name, qubit=qubit)
        members[best_trap.name].append(qubit)
    return state


#: Registry used by the compiler options.
MAPPING_STRATEGIES = {
    "greedy": greedy_mapping,
    "round_robin": round_robin_mapping,
    "interaction_aware": interaction_aware_mapping,
}

"""Placement state: where every ion and program qubit is during compilation.

The compiler maintains a mutable view of the machine: the ordered ion chain of
every trap, which trap (or transit) every ion is in, and the binding between
program qubits and physical ions.  Gate-based swapping changes the binding
(states move between ions); ion swapping and shuttling change the physical
arrangement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.device import QCCDDevice
from repro.isa.program import InitialPlacement


class TrapChain:
    """The ordered ion chain of one trap (index 0 = head, last = tail)."""

    def __init__(self, trap_name: str, capacity: int, ions: Optional[List[int]] = None) -> None:
        self.trap_name = trap_name
        self.capacity = capacity
        self._ions: List[int] = list(ions or [])
        if len(self._ions) > capacity:
            raise ValueError(f"chain of {len(self._ions)} ions exceeds capacity {capacity}")
        if len(set(self._ions)) != len(self._ions):
            raise ValueError("duplicate ion in chain")

    # ------------------------------------------------------------------ #
    @property
    def ions(self) -> Tuple[int, ...]:
        """Chain contents, head to tail."""

        return tuple(self._ions)

    def __len__(self) -> int:
        return len(self._ions)

    def __contains__(self, ion: int) -> bool:
        return ion in self._ions

    @property
    def free_space(self) -> int:
        """Number of additional ions the trap can accept."""

        return self.capacity - len(self._ions)

    def index_of(self, ion: int) -> int:
        """Position of ``ion`` in the chain (0 = head)."""

        try:
            return self._ions.index(ion)
        except ValueError:
            raise KeyError(f"ion {ion} not in trap {self.trap_name}") from None

    def end_index(self, side: str) -> int:
        """Chain index of the ``"head"`` or ``"tail"`` end."""

        if side == "head":
            return 0
        if side == "tail":
            return len(self._ions) - 1
        raise ValueError("side must be 'head' or 'tail'")

    def ion_at_end(self, side: str) -> int:
        """The ion currently sitting at the given end."""

        if not self._ions:
            raise ValueError(f"trap {self.trap_name} is empty")
        return self._ions[self.end_index(side)]

    def distance_between(self, ion_a: int, ion_b: int) -> int:
        """Number of ions strictly between two chain members."""

        return abs(self.index_of(ion_a) - self.index_of(ion_b)) - 1

    # ------------------------------------------------------------------ #
    def insert(self, ion: int, side: str, allow_overfill: bool = False) -> None:
        """Merge ``ion`` into the chain at one end.

        ``allow_overfill`` permits a transient one-ion overshoot, used only
        when an ion passes *through* an intermediate trap of a linear
        topology: it merges, is reordered to the far end and immediately
        splits back out (Figure 4).
        """

        if ion in self._ions:
            raise ValueError(f"ion {ion} already in trap {self.trap_name}")
        limit = self.capacity + 1 if allow_overfill else self.capacity
        if len(self._ions) + 1 > limit:
            raise ValueError(f"trap {self.trap_name} over capacity")
        if side == "head":
            self._ions.insert(0, ion)
        elif side == "tail":
            self._ions.append(ion)
        else:
            raise ValueError("side must be 'head' or 'tail'")

    def remove(self, ion: int) -> int:
        """Split ``ion`` out of the chain; returns its former index."""

        index = self.index_of(ion)
        self._ions.pop(index)
        return index

    def swap_adjacent(self, ion_a: int, ion_b: int) -> None:
        """Physically exchange two adjacent ions (one IS hop)."""

        index_a, index_b = self.index_of(ion_a), self.index_of(ion_b)
        if abs(index_a - index_b) != 1:
            raise ValueError("ion swap requires adjacent ions")
        self._ions[index_a], self._ions[index_b] = self._ions[index_b], self._ions[index_a]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TrapChain({self.trap_name}, {self._ions})"


class PlacementState:
    """Mutable machine state used while compiling one circuit."""

    def __init__(self, device: QCCDDevice) -> None:
        self.device = device
        self.chains: Dict[str, TrapChain] = {
            trap.name: TrapChain(trap.name, trap.capacity)
            for trap in device.topology.traps
        }
        self._ion_trap: Dict[int, Optional[str]] = {}
        self._qubit_of_ion: Dict[int, Optional[int]] = {}
        self._ion_of_qubit: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Loading / bookkeeping
    # ------------------------------------------------------------------ #
    def load_ion(self, ion: int, trap_name: str, qubit: Optional[int] = None,
                 side: str = "tail") -> None:
        """Place a new ion into a trap (initial loading only)."""

        if ion in self._ion_trap:
            raise ValueError(f"ion {ion} already loaded")
        chain = self.chains[trap_name]
        if chain.free_space <= 0:
            raise ValueError(f"trap {trap_name} is full")
        chain.insert(ion, side)
        self._ion_trap[ion] = trap_name
        self._qubit_of_ion[ion] = qubit
        if qubit is not None:
            self._ion_of_qubit[qubit] = ion

    @property
    def ions(self) -> Tuple[int, ...]:
        """All loaded ion ids."""

        return tuple(sorted(self._ion_trap))

    def trap_of_ion(self, ion: int) -> Optional[str]:
        """Trap currently holding ``ion`` (``None`` while in transit)."""

        return self._ion_trap[ion]

    def trap_of_qubit(self, qubit: int) -> Optional[str]:
        """Trap currently holding program qubit ``qubit``."""

        # Hot path (the scheduler's locality probe): inline both lookups.
        try:
            return self._ion_trap[self._ion_of_qubit[qubit]]
        except KeyError:
            raise KeyError(f"program qubit {qubit} is not mapped to any ion") from None

    def ion_of_qubit(self, qubit: int) -> int:
        """Physical ion currently holding program qubit ``qubit``."""

        try:
            return self._ion_of_qubit[qubit]
        except KeyError:
            raise KeyError(f"program qubit {qubit} is not mapped to any ion") from None

    def qubit_of_ion(self, ion: int) -> Optional[int]:
        """Program qubit held by ``ion`` (``None`` for spare ions)."""

        return self._qubit_of_ion.get(ion)

    def chain(self, trap_name: str) -> TrapChain:
        """The chain of ``trap_name``."""

        return self.chains[trap_name]

    def free_space(self, trap_name: str) -> int:
        """Free slots in ``trap_name``."""

        return self.chains[trap_name].free_space

    def occupancy(self) -> Dict[str, int]:
        """Current ions per trap."""

        return {name: len(chain) for name, chain in self.chains.items()}

    # ------------------------------------------------------------------ #
    # Mutations mirroring the primitive operations
    # ------------------------------------------------------------------ #
    def split(self, trap_name: str, ion: int) -> None:
        """Remove ``ion`` from its trap; it is now in transit."""

        chain = self.chains[trap_name]
        chain.remove(ion)
        self._ion_trap[ion] = None

    def merge(self, trap_name: str, ion: int, side: str,
              allow_overfill: bool = False) -> None:
        """Insert a travelling ``ion`` into ``trap_name`` at ``side``."""

        if self._ion_trap.get(ion) is not None:
            raise ValueError(f"ion {ion} is not in transit")
        self.chains[trap_name].insert(ion, side, allow_overfill=allow_overfill)
        self._ion_trap[ion] = trap_name

    def swap_states(self, ion_a: int, ion_b: int) -> None:
        """Gate-based swap: exchange the program qubits held by two ions."""

        qubit_a = self._qubit_of_ion.get(ion_a)
        qubit_b = self._qubit_of_ion.get(ion_b)
        self._qubit_of_ion[ion_a] = qubit_b
        self._qubit_of_ion[ion_b] = qubit_a
        if qubit_a is not None:
            self._ion_of_qubit[qubit_a] = ion_b
        if qubit_b is not None:
            self._ion_of_qubit[qubit_b] = ion_a

    def swap_positions(self, trap_name: str, ion_a: int, ion_b: int) -> None:
        """Ion swap: physically exchange two adjacent ions in a chain."""

        self.chains[trap_name].swap_adjacent(ion_a, ion_b)

    # ------------------------------------------------------------------ #
    def snapshot_placement(self) -> InitialPlacement:
        """Freeze the current state as an :class:`InitialPlacement`."""

        return InitialPlacement(
            qubit_to_ion=dict(self._ion_of_qubit),
            ion_to_trap={ion: trap for ion, trap in self._ion_trap.items() if trap is not None},
            trap_chains={name: chain.ions for name, chain in self.chains.items()},
        )

    def validate(self) -> None:
        """Internal consistency checks (used heavily by tests).

        * every loaded ion is either in exactly one chain or in transit;
        * qubit->ion and ion->qubit maps are mutually consistent;
        * no chain exceeds its capacity.
        """

        seen: Dict[int, str] = {}
        for name, chain in self.chains.items():
            if len(chain) > chain.capacity:
                raise AssertionError(f"trap {name} over capacity")
            for ion in chain.ions:
                if ion in seen:
                    raise AssertionError(f"ion {ion} in two chains")
                seen[ion] = name
        for ion, trap in self._ion_trap.items():
            if trap is None:
                if ion in seen:
                    raise AssertionError(f"ion {ion} marked in transit but found in {seen[ion]}")
            elif seen.get(ion) != trap:
                raise AssertionError(f"ion {ion} bookkeeping mismatch")
        for qubit, ion in self._ion_of_qubit.items():
            if self._qubit_of_ion.get(ion) != qubit:
                raise AssertionError(f"qubit {qubit} / ion {ion} binding mismatch")

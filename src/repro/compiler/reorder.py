"""Chain reordering: position a qubit's state at a chain end before a split.

Split and merge operations act on the ends of an ion chain, so before a qubit
can leave a trap its state must reach the end facing the outgoing segment
(Section IV.C, Figure 5).  Two microarchitectures are modelled:

* **GS (gate-based swapping).**  One SWAP gate (three MS gates) exchanges the
  quantum state of the departing qubit with whatever ion already sits at the
  required end.  Because traps are fully connected, a single SWAP always
  suffices, but its duration and error follow the two-qubit gate model.
* **IS (ion swapping).**  The physical ion is walked to the end one hop at a
  time; every hop costs a split, a 180-degree rotation and a merge and heats
  the chain.
"""

from __future__ import annotations

from repro.compiler.builder import ProgramBuilder
from repro.compiler.placement_state import PlacementState
from repro.hardware.device import QCCDDevice, ReorderMethod


def reorder_to_end(builder: ProgramBuilder, state: PlacementState, device: QCCDDevice,
                   qubit: int, trap_name: str, side: str) -> int:
    """Bring ``qubit``'s state to the ``side`` end of ``trap_name``'s chain.

    Returns the number of reordering operations emitted (0 when the qubit is
    already at the requested end).  After the call,
    ``state.ion_of_qubit(qubit)`` is the ion at the requested end.
    """

    chain = state.chain(trap_name)
    ion = state.ion_of_qubit(qubit)
    if state.trap_of_ion(ion) != trap_name:
        raise ValueError(f"qubit {qubit} is not in trap {trap_name}")
    position = chain.index_of(ion)
    target = chain.end_index(side)
    if position == target:
        return 0

    if device.reorder is ReorderMethod.GS:
        end_ion = chain.ion_at_end(side)
        distance = chain.distance_between(ion, end_ion)
        builder.swap_gate(
            trap=trap_name,
            ions=(ion, end_ion),
            qubits=(qubit, state.qubit_of_ion(end_ion)),
            chain_length=len(chain),
            ion_distance=distance,
        )
        state.swap_states(ion, end_ion)
        return 1

    # Ion swapping: hop the physical ion toward the end one neighbour at a time.
    emitted = 0
    step = 1 if target > position else -1
    while position != target:
        neighbour = chain.ions[position + step]
        builder.ion_swap(trap=trap_name, ions=(ion, neighbour), chain_size=len(chain))
        state.swap_positions(trap_name, ion, neighbour)
        position += step
        emitted += 1
    return emitted

"""Routing decisions: who moves where for a two-qubit gate across traps.

When a two-qubit gate's operands sit in different traps, the compiler must
pick which operand to shuttle and, if the receiving trap is full, which
resident ion to evict (and to which trap).  The policies are deliberately
simple, deterministic greedy heuristics in the spirit of Section VI:

* **Destination choice**: shuttle the operand whose interaction affinity pulls
  it toward the other trap -- the qubit that will mostly talk to qubits in the
  destination anyway should be the one that moves, which keeps future gates
  local and avoids ping-ponging ions back and forth.  Ties fall back to the
  trap with more free space; a full trap can never be the destination unless
  an eviction frees a slot first.
* **Eviction victim**: the resident qubit whose next use lies farthest in the
  future (never-used-again qubits are ideal victims), excluding the gate's own
  operands.
* **Eviction destination**: the nearest trap (by shuttle distance) with free
  space, excluding the two gate traps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.compiler.placement_state import PlacementState
from repro.hardware.device import QCCDDevice

#: Returns the next gate index at which ``qubit`` is used, or ``None``.
NextUseFn = Callable[[int], Optional[int]]

#: Undirected interaction histogram of the circuit: ``{(min, max): count}``.
InteractionWeights = Dict[Tuple[int, int], int]


@dataclass(frozen=True)
class ShuttleRequest:
    """One planned shuttle: bring ``qubit`` into trap ``destination``."""

    qubit: int
    destination: str


@dataclass(frozen=True)
class CommunicationPlan:
    """Shuttles needed before a cross-trap two-qubit gate can execute.

    ``evictions`` must be performed before ``primary`` (they free the space
    the primary shuttle merges into).  ``gate_trap`` is where the gate will
    run once every shuttle has completed.
    """

    gate_trap: str
    primary: ShuttleRequest
    evictions: Tuple[ShuttleRequest, ...] = field(default=())

    @property
    def all_shuttles(self) -> Tuple[ShuttleRequest, ...]:
        """Evictions first, then the primary shuttle."""

        return self.evictions + (self.primary,)


#: Available routing policies:
#: * ``"affinity"`` -- move the operand whose interactions pull it toward the
#:   destination (minimises future communication; the default).
#: * ``"space"`` -- move into whichever trap has more free slots.
#: * ``"fixed"`` -- always move the first operand into the second operand's
#:   trap when it has room (the simplest policy; useful as an ablation
#:   baseline for how much routing intelligence matters).
ROUTING_POLICIES = ("affinity", "space", "fixed")


class Router:
    """Greedy communication planner over a live placement state."""

    def __init__(self, state: PlacementState, device: QCCDDevice,
                 next_use: Optional[NextUseFn] = None,
                 interaction_weights: Optional[InteractionWeights] = None,
                 policy: str = "affinity") -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; expected one of {ROUTING_POLICIES}"
            )
        self.state = state
        self.device = device
        self.next_use = next_use or (lambda qubit: None)
        self.interaction_weights = interaction_weights or {}
        self.policy = policy
        # Trap-to-trap distances are static; cache them once.
        self._distances = device.topology.distance_matrix()

    # ------------------------------------------------------------------ #
    def _weight(self, qubit_a: int, qubit_b: int) -> int:
        key = (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)
        return self.interaction_weights.get(key, 0)

    def _affinity(self, qubit: int, trap_name: str) -> int:
        """Total interaction count between ``qubit`` and the residents of a trap."""

        total = 0
        for ion in self.state.chain(trap_name).ions:
            other = self.state.qubit_of_ion(ion)
            if other is None or other == qubit:
                continue
            total += self._weight(qubit, other)
        return total

    def _move_gain(self, qubit: int, source: str, destination: str) -> int:
        """How much moving ``qubit`` improves its locality (higher is better)."""

        return self._affinity(qubit, destination) - self._affinity(qubit, source)

    def plan_two_qubit_gate(self, qubit_a: int, qubit_b: int) -> Optional[CommunicationPlan]:
        """Plan the shuttles needed to co-locate ``qubit_a`` and ``qubit_b``.

        Returns ``None`` when the qubits already share a trap.
        """

        trap_a = self.state.trap_of_qubit(qubit_a)
        trap_b = self.state.trap_of_qubit(qubit_b)
        if trap_a is None or trap_b is None:
            raise ValueError("both qubits must be resident in traps")
        if trap_a == trap_b:
            return None

        free_a = self.state.free_space(trap_a)
        free_b = self.state.free_space(trap_b)

        if free_a > 0 or free_b > 0:
            move_a_to_b = self._prefer_moving_first(qubit_a, qubit_b, trap_a, trap_b,
                                                    free_a, free_b)
            if move_a_to_b:
                return CommunicationPlan(gate_trap=trap_b,
                                         primary=ShuttleRequest(qubit_a, trap_b))
            return CommunicationPlan(gate_trap=trap_a,
                                     primary=ShuttleRequest(qubit_b, trap_a))

        # Both traps full: free a slot in trap_b, then move qubit_a there.
        eviction = self._plan_eviction(trap_b, protected=(qubit_a, qubit_b))
        return CommunicationPlan(gate_trap=trap_b,
                                 primary=ShuttleRequest(qubit_a, trap_b),
                                 evictions=(eviction,))

    def _prefer_moving_first(self, qubit_a: int, qubit_b: int, trap_a: str, trap_b: str,
                             free_a: int, free_b: int) -> bool:
        """Whether the first operand should be the one that moves.

        At least one trap is known to have space; a trap without space can
        never be chosen as the destination.
        """

        if free_b <= 0:
            return False
        if free_a <= 0:
            return True
        if self.policy == "fixed":
            return True
        if self.policy == "space":
            return free_b >= free_a
        gain_a = self._move_gain(qubit_a, trap_a, trap_b)
        gain_b = self._move_gain(qubit_b, trap_b, trap_a)
        if gain_a != gain_b:
            return gain_a > gain_b
        return free_b >= free_a

    # ------------------------------------------------------------------ #
    def _plan_eviction(self, trap_name: str, protected: Tuple[int, ...]) -> ShuttleRequest:
        """Pick a victim qubit in ``trap_name`` and a trap to send it to."""

        victim = self._choose_victim(trap_name, protected)
        destination = self._nearest_trap_with_space(trap_name, exclude=(trap_name,))
        if destination is None:
            raise RuntimeError(
                "no trap in the device has free space; the device is loaded beyond "
                "its usable capacity"
            )
        return ShuttleRequest(victim, destination)

    def _choose_victim(self, trap_name: str, protected: Tuple[int, ...]) -> int:
        """The resident qubit whose next use is farthest in the future."""

        candidates: List[Tuple[float, int]] = []
        for ion in self.state.chain(trap_name).ions:
            qubit = self.state.qubit_of_ion(ion)
            if qubit is None or qubit in protected:
                continue
            upcoming = self.next_use(qubit)
            score = float("inf") if upcoming is None else float(upcoming)
            candidates.append((score, qubit))
        if not candidates:
            raise RuntimeError(f"trap {trap_name} has no evictable qubit")
        # Farthest next use wins; ties broken by qubit index for determinism.
        candidates.sort(key=lambda item: (-item[0], item[1]))
        return candidates[0][1]

    def _nearest_trap_with_space(self, origin: str,
                                 exclude: Tuple[str, ...]) -> Optional[str]:
        """Closest trap (by shuttle distance) with at least one free slot."""

        best: Optional[Tuple[int, str]] = None
        for trap in self.device.topology.traps:
            if trap.name in exclude:
                continue
            if self.state.free_space(trap.name) <= 0:
                continue
            distance = self._distances[(origin, trap.name)]
            if best is None or (distance, trap.name) < best:
                best = (distance, trap.name)
        return best[1] if best else None

"""Routing decisions: who moves where for a two-qubit gate across traps.

When a two-qubit gate's operands sit in different traps, the compiler must
pick which operand to shuttle and, if the receiving trap is full, which
resident ion to evict (and to which trap).  The policies are deliberately
simple, deterministic greedy heuristics in the spirit of Section VI:

* **Destination choice**: shuttle the operand whose interaction affinity pulls
  it toward the other trap -- the qubit that will mostly talk to qubits in the
  destination anyway should be the one that moves, which keeps future gates
  local and avoids ping-ponging ions back and forth.  Ties fall back to the
  trap with more free space; a full trap can never be the destination unless
  an eviction frees a slot first.
* **Eviction victim**: the resident qubit whose next use lies farthest in the
  future (never-used-again qubits are ideal victims), excluding the gate's own
  operands.
* **Eviction destination**: the nearest trap (by shuttle distance) with free
  space, excluding the two gate traps.

Performance: the router keeps an incremental per-(qubit, trap) affinity table
instead of rescanning the destination chain's residents for every cross-trap
gate.  The table is seeded from the initial placement and updated in O(degree
of the moved qubit in the interaction graph) whenever the compile loop reports
a shuttle via :meth:`Router.note_qubit_moved`.  Eviction destinations come
from a static per-origin trap list presorted by (shuttle distance, name), so
the nearest trap with free space is found by an early-exit walk instead of a
full scan of every trap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.compiler.placement_state import PlacementState
from repro.hardware.device import QCCDDevice

#: Returns the next gate index at which ``qubit`` is used, or ``None``.
NextUseFn = Callable[[int], Optional[int]]

#: Undirected interaction histogram of the circuit: ``{(min, max): count}``.
InteractionWeights = Dict[Tuple[int, int], int]


@dataclass(frozen=True)
class ShuttleRequest:
    """One planned shuttle: bring ``qubit`` into trap ``destination``."""

    qubit: int
    destination: str


@dataclass(frozen=True)
class CommunicationPlan:
    """Shuttles needed before a cross-trap two-qubit gate can execute.

    ``evictions`` must be performed before ``primary`` (they free the space
    the primary shuttle merges into).  ``gate_trap`` is where the gate will
    run once every shuttle has completed.
    """

    gate_trap: str
    primary: ShuttleRequest
    evictions: Tuple[ShuttleRequest, ...] = field(default=())

    @property
    def all_shuttles(self) -> Tuple[ShuttleRequest, ...]:
        """Evictions first, then the primary shuttle."""

        return self.evictions + (self.primary,)


#: Available routing policies:
#: * ``"affinity"`` -- move the operand whose interactions pull it toward the
#:   destination (minimises future communication; the default).
#: * ``"space"`` -- move into whichever trap has more free slots.
#: * ``"fixed"`` -- always move the first operand into the second operand's
#:   trap when it has room (the simplest policy; useful as an ablation
#:   baseline for how much routing intelligence matters).
ROUTING_POLICIES = ("affinity", "space", "fixed")


class Router:
    """Greedy communication planner over a live placement state."""

    def __init__(self, state: PlacementState, device: QCCDDevice,
                 next_use: Optional[NextUseFn] = None,
                 interaction_weights: Optional[InteractionWeights] = None,
                 policy: str = "affinity") -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; expected one of {ROUTING_POLICIES}"
            )
        self.state = state
        self.device = device
        self.next_use = next_use or (lambda qubit: None)
        self.interaction_weights = interaction_weights or {}
        self.policy = policy
        # Trap-to-trap distances are static; cache them once.
        self._distances = device.topology.distance_matrix()
        # Static eviction-destination order: per origin, every trap presorted
        # by (distance, name) so the nearest trap with space is an early-exit
        # walk rather than a scan over every trap.
        trap_names = [trap.name for trap in device.topology.traps]
        self._traps_by_distance: Dict[str, Tuple[str, ...]] = {
            origin: tuple(name for _, name in sorted(
                (self._distances[(origin, name)], name) for name in trap_names
            ))
            for origin in trap_names
        }
        # Interaction-graph adjacency: qubit -> ((neighbour, weight), ...).
        neighbours: Dict[int, List[Tuple[int, int]]] = {}
        for (qubit_a, qubit_b), weight in self.interaction_weights.items():
            neighbours.setdefault(qubit_a, []).append((qubit_b, weight))
            neighbours.setdefault(qubit_b, []).append((qubit_a, weight))
        self._neighbours: Dict[int, Tuple[Tuple[int, int], ...]] = {
            qubit: tuple(entries) for qubit, entries in neighbours.items()
        }
        # Incremental affinity table: qubit -> {trap: total interaction weight
        # with the qubits currently resident in that trap}.  Seeded from the
        # live placement; zero entries are simply absent.
        self._affinity_table: Dict[int, Dict[str, int]] = {}
        for trap_name, chain in state.chains.items():
            for ion in chain.ions:
                resident = state.qubit_of_ion(ion)
                if resident is None:
                    continue
                self._credit_residency(resident, trap_name, +1)

    # ------------------------------------------------------------------ #
    def _credit_residency(self, qubit: int, trap_name: str, sign: int) -> None:
        """Add (or remove) ``qubit``'s weights to its neighbours' affinity
        for ``trap_name``."""

        for neighbour, weight in self._neighbours.get(qubit, ()):
            row = self._affinity_table.setdefault(neighbour, {})
            row[trap_name] = row.get(trap_name, 0) + sign * weight

    def note_qubit_moved(self, qubit: int, source: Optional[str], destination: str) -> None:
        """Update the affinity table after ``qubit`` shuttled between traps.

        The compile loop calls this once per executed shuttle.  Only the
        qubit's interaction-graph neighbours are touched; the moved qubit's
        own affinities are unchanged (they sum over *other* residents).
        """

        if source == destination:
            return
        if source is not None:
            self._credit_residency(qubit, source, -1)
        self._credit_residency(qubit, destination, +1)

    def _weight(self, qubit_a: int, qubit_b: int) -> int:
        key = (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)
        return self.interaction_weights.get(key, 0)

    def _affinity(self, qubit: int, trap_name: str) -> int:
        """Total interaction count between ``qubit`` and the residents of a trap."""

        return self._affinity_table.get(qubit, {}).get(trap_name, 0)

    def _move_gain(self, qubit: int, source: str, destination: str) -> int:
        """How much moving ``qubit`` improves its locality (higher is better)."""

        return self._affinity(qubit, destination) - self._affinity(qubit, source)

    def plan_two_qubit_gate(self, qubit_a: int, qubit_b: int) -> Optional[CommunicationPlan]:
        """Plan the shuttles needed to co-locate ``qubit_a`` and ``qubit_b``.

        Returns ``None`` when the qubits already share a trap.
        """

        trap_a = self.state.trap_of_qubit(qubit_a)
        trap_b = self.state.trap_of_qubit(qubit_b)
        if trap_a is None or trap_b is None:
            raise ValueError("both qubits must be resident in traps")
        if trap_a == trap_b:
            return None

        free_a = self.state.free_space(trap_a)
        free_b = self.state.free_space(trap_b)

        if free_a > 0 or free_b > 0:
            move_a_to_b = self._prefer_moving_first(qubit_a, qubit_b, trap_a, trap_b,
                                                    free_a, free_b)
            if move_a_to_b:
                return CommunicationPlan(gate_trap=trap_b,
                                         primary=ShuttleRequest(qubit_a, trap_b))
            return CommunicationPlan(gate_trap=trap_a,
                                     primary=ShuttleRequest(qubit_b, trap_a))

        # Both traps full: free a slot in trap_b, then move qubit_a there.
        eviction = self._plan_eviction(trap_b, protected=(qubit_a, qubit_b))
        return CommunicationPlan(gate_trap=trap_b,
                                 primary=ShuttleRequest(qubit_a, trap_b),
                                 evictions=(eviction,))

    def _prefer_moving_first(self, qubit_a: int, qubit_b: int, trap_a: str, trap_b: str,
                             free_a: int, free_b: int) -> bool:
        """Whether the first operand should be the one that moves.

        At least one trap is known to have space; a trap without space can
        never be chosen as the destination.
        """

        if free_b <= 0:
            return False
        if free_a <= 0:
            return True
        if self.policy == "fixed":
            return True
        if self.policy == "space":
            return free_b >= free_a
        gain_a = self._move_gain(qubit_a, trap_a, trap_b)
        gain_b = self._move_gain(qubit_b, trap_b, trap_a)
        if gain_a != gain_b:
            return gain_a > gain_b
        return free_b >= free_a

    # ------------------------------------------------------------------ #
    def _plan_eviction(self, trap_name: str, protected: Tuple[int, ...]) -> ShuttleRequest:
        """Pick a victim qubit in ``trap_name`` and a trap to send it to."""

        victim = self._choose_victim(trap_name, protected)
        destination = self._nearest_trap_with_space(trap_name, exclude=(trap_name,))
        if destination is None:
            raise RuntimeError(
                "no trap in the device has free space; the device is loaded beyond "
                "its usable capacity"
            )
        return ShuttleRequest(victim, destination)

    def _choose_victim(self, trap_name: str, protected: Tuple[int, ...]) -> int:
        """The resident qubit whose next use is farthest in the future."""

        candidates: List[Tuple[float, int]] = []
        for ion in self.state.chain(trap_name).ions:
            qubit = self.state.qubit_of_ion(ion)
            if qubit is None or qubit in protected:
                continue
            upcoming = self.next_use(qubit)
            score = float("inf") if upcoming is None else float(upcoming)
            candidates.append((score, qubit))
        if not candidates:
            raise RuntimeError(f"trap {trap_name} has no evictable qubit")
        # Farthest next use wins; ties broken by qubit index for determinism.
        candidates.sort(key=lambda item: (-item[0], item[1]))
        return candidates[0][1]

    def _nearest_trap_with_space(self, origin: str,
                                 exclude: Tuple[str, ...]) -> Optional[str]:
        """Closest trap (by shuttle distance) with at least one free slot."""

        free_space = self.state.free_space
        for trap_name in self._traps_by_distance[origin]:
            if trap_name in exclude:
                continue
            if free_space(trap_name) > 0:
                return trap_name
        return None

"""Gate scheduling order: earliest ready gate first (paper Section VI).

The scheduler walks the circuit's dependency DAG and repeatedly picks a gate
whose predecessors have all been emitted.  Among ready gates it prefers

1. gates that are *local* (both operands already co-located in one trap) --
   they cost no communication and executing them first cannot increase the
   shuttle count of the remaining gates;
2. earlier program order (the "earliest ready gate").

The preference function is injected so the compile loop can describe locality
against its live placement state without the scheduler importing it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Set

from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG


class GateScheduler:
    """Iterator over gate indices in earliest-ready-gate-first order."""

    def __init__(self, circuit: Circuit,
                 is_local: Optional[Callable[[int], bool]] = None) -> None:
        self.circuit = circuit
        self.dag = DependencyDAG(circuit)
        self._is_local = is_local or (lambda index: True)
        self._remaining_preds = self.dag.in_degrees()
        self._ready: List[int] = [i for i, deg in enumerate(self._remaining_preds) if deg == 0]
        heapq.heapify(self._ready)
        self._emitted: Set[int] = set()

    # ------------------------------------------------------------------ #
    def __bool__(self) -> bool:
        return bool(self._ready)

    @property
    def num_emitted(self) -> int:
        """Gates already handed out."""

        return len(self._emitted)

    def done(self) -> bool:
        """Whether every gate has been scheduled."""

        return len(self._emitted) == self.dag.num_gates

    def ready_gates(self) -> List[int]:
        """Currently ready gate indices, in program order."""

        return sorted(self._ready)

    def next_gate(self) -> int:
        """Pop the next gate to compile.

        Local ready gates are preferred; ties broken by program order.  The
        scan over the ready list is linear, which is fine because the ready
        list stays small (bounded by circuit width).
        """

        if not self._ready:
            raise RuntimeError("no ready gates; scheduling is complete or stuck")
        ready_sorted = sorted(self._ready)
        chosen = None
        for index in ready_sorted:
            if self._is_local(index):
                chosen = index
                break
        if chosen is None:
            chosen = ready_sorted[0]
        self._ready.remove(chosen)
        heapq.heapify(self._ready)
        return chosen

    def mark_done(self, index: int) -> None:
        """Record that ``index`` has been emitted; unlock its successors."""

        if index in self._emitted:
            raise ValueError(f"gate {index} already marked done")
        self._emitted.add(index)
        for successor in self.dag.successors(index):
            self._remaining_preds[successor] -= 1
            if self._remaining_preds[successor] == 0:
                heapq.heappush(self._ready, successor)

    def schedule(self) -> List[int]:
        """Convenience: the full schedule as a list of gate indices."""

        order = []
        while not self.done():
            index = self.next_gate()
            order.append(index)
            self.mark_done(index)
        return order

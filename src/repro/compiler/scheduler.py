"""Gate scheduling order: earliest ready gate first (paper Section VI).

The scheduler walks the circuit's dependency DAG and repeatedly picks a gate
whose predecessors have all been emitted.  Among ready gates it prefers

1. gates that are *local* (both operands already co-located in one trap) --
   they cost no communication and executing them first cannot increase the
   shuttle count of the remaining gates;
2. earlier program order (the "earliest ready gate").

The preference function is injected so the compile loop can describe locality
against its live placement state without the scheduler importing it.

Implementation: ready gates live in a *two-tier heap* -- one min-heap of
locally-executable gates and one of gates that would need communication.
``next_gate`` pops the smallest local gate, falling back to the smallest
remote gate, in O(log W) for ready-list width W.  Locality of a ready gate
only changes when one of its operands moves between traps, so the compile
loop reports shuttled qubits via :meth:`note_qubits_moved` and only the
affected gates are re-classified (lazy invalidation: the entry in the stale
tier is skipped when it surfaces).  This replaces the seed implementation's
per-pop ``sorted()`` scan plus full ``heapq.heapify`` rebuild while emitting
gates in exactly the same order.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set

from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG
from repro.ir.gate import GateKind


class GateScheduler:
    """Iterator over gate indices in earliest-ready-gate-first order."""

    def __init__(self, circuit: Circuit,
                 is_local: Optional[Callable[[int], bool]] = None,
                 two_qubit_operands: Optional[Dict[int, tuple]] = None) -> None:
        self.circuit = circuit
        self.dag = DependencyDAG(circuit)
        self._is_local = is_local or (lambda index: True)
        self._remaining_preds = self.dag.in_degrees()
        self._emitted: Set[int] = set()
        #: Ready gate indices (the union of both heap tiers, without stale
        #: duplicates).
        self._ready: Set[int] = set()
        #: Current locality classification of every ready gate.
        self._local_flag: Dict[int, bool] = {}
        #: Two-qubit ready gates indexed by operand qubit, for invalidation.
        self._by_qubit: Dict[int, Set[int]] = {}
        self._local_heap: List[int] = []
        self._remote_heap: List[int] = []
        #: Operand qubits of every two-qubit gate (locality can only change
        #: for these); computed once instead of re-classifying gate names, or
        #: supplied by a caller that already has the table (the compile loop).
        if two_qubit_operands is None:
            two_qubit_operands = {
                index: gate.qubits for index, gate in enumerate(circuit.gates)
                if gate.kind is GateKind.TWO_QUBIT
            }
        self._two_qubit_operands = two_qubit_operands
        for index, degree in enumerate(self._remaining_preds):
            if degree == 0:
                self._push_ready(index)

    # ------------------------------------------------------------------ #
    def _push_ready(self, index: int) -> None:
        """Classify a newly-ready gate and push it into the right tier."""

        self._ready.add(index)
        local = bool(self._is_local(index))
        self._local_flag[index] = local
        if local:
            heapq.heappush(self._local_heap, index)
        else:
            heapq.heappush(self._remote_heap, index)
        operands = self._two_qubit_operands.get(index)
        if operands is not None:
            for qubit in operands:
                self._by_qubit.setdefault(qubit, set()).add(index)

    def note_qubits_moved(self, qubits) -> None:
        """Re-classify ready gates whose operand ``qubits`` changed traps.

        The compile loop calls this after emitting the shuttles of a gate;
        only gates touching a moved qubit can flip between the local and
        remote tiers.  Entries left behind in the old tier become stale and
        are skipped when popped.
        """

        for qubit in qubits:
            for index in self._by_qubit.get(qubit, ()):
                local = bool(self._is_local(index))
                if local == self._local_flag[index]:
                    continue
                self._local_flag[index] = local
                if local:
                    heapq.heappush(self._local_heap, index)
                else:
                    heapq.heappush(self._remote_heap, index)

    def _valid_top(self, heap: List[int], want_local: bool) -> Optional[int]:
        """Smallest non-stale entry of ``heap``, discarding stale heads."""

        while heap:
            index = heap[0]
            if index in self._ready and self._local_flag[index] == want_local:
                return index
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------ #
    def __bool__(self) -> bool:
        return bool(self._ready)

    @property
    def num_emitted(self) -> int:
        """Gates already handed out."""

        return len(self._emitted)

    def done(self) -> bool:
        """Whether every gate has been scheduled."""

        return len(self._emitted) == self.dag.num_gates

    def ready_gates(self) -> List[int]:
        """Currently ready gate indices, in program order."""

        return sorted(self._ready)

    def next_gate(self) -> int:
        """Pop the next gate to compile.

        The smallest-index local ready gate wins; if no ready gate is local,
        the smallest-index ready gate overall (which then sits at the top of
        the remote tier).
        """

        if not self._ready:
            raise RuntimeError("no ready gates; scheduling is complete or stuck")
        chosen = self._valid_top(self._local_heap, want_local=True)
        if chosen is None:
            chosen = self._valid_top(self._remote_heap, want_local=False)
        if chosen is None:  # pragma: no cover - defensive; _ready is non-empty
            raise RuntimeError("scheduler heaps out of sync with ready set")
        heap = self._local_heap if self._local_flag[chosen] else self._remote_heap
        heapq.heappop(heap)
        self._ready.discard(chosen)
        del self._local_flag[chosen]
        operands = self._two_qubit_operands.get(chosen)
        if operands is not None:
            for qubit in operands:
                self._by_qubit[qubit].discard(chosen)
        return chosen

    def mark_done(self, index: int) -> None:
        """Record that ``index`` has been emitted; unlock its successors."""

        if index in self._emitted:
            raise ValueError(f"gate {index} already marked done")
        self._emitted.add(index)
        for successor in self.dag.successors(index):
            self._remaining_preds[successor] -= 1
            if self._remaining_preds[successor] == 0:
                self._push_ready(successor)

    def schedule(self) -> List[int]:
        """Convenience: the full schedule as a list of gate indices."""

        order = []
        while not self.done():
            index = self.next_gate()
            order.append(index)
            self.mark_done(index)
        return order

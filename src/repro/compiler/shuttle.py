"""Shuttle emission: move one qubit's state from its trap to a destination trap.

A shuttle is lowered to the primitive sequence of Figure 2d / Figure 4:

1. reorder the departing qubit to the chain end facing the outgoing segment,
2. split it off the source chain,
3. move it segment by segment, crossing junctions where paths branch and
   passing *through* intermediate traps in linear topologies (merge, reorder
   to the far end, split again),
4. merge it into the destination chain at the end facing the incoming segment.

The placement state is updated as operations are emitted so that the compiler
always sees the machine exactly as the simulator will replay it.
"""

from __future__ import annotations

from typing import List

from repro.compiler.builder import ProgramBuilder
from repro.compiler.placement_state import PlacementState
from repro.compiler.reorder import reorder_to_end
from repro.hardware.device import QCCDDevice


def _node_sequence(device: QCCDDevice, source: str, destination: str) -> List[str]:
    """Nodes visited by the shortest path, source and destination included."""

    path = device.topology.shortest_path(source, destination)
    nodes = [source]
    for segment in path.segments:
        nodes.append(segment.other_end(nodes[-1]))
    return nodes


def emit_shuttle(builder: ProgramBuilder, state: PlacementState, device: QCCDDevice,
                 qubit: int, destination: str) -> None:
    """Emit every primitive needed to bring ``qubit`` into trap ``destination``."""

    topology = device.topology
    source = state.trap_of_qubit(qubit)
    if source is None:
        raise ValueError(f"qubit {qubit} is in transit; cannot start a new shuttle")
    if source == destination:
        return
    if state.free_space(destination) <= 0:
        raise ValueError(
            f"destination trap {destination} is full; the router must evict first"
        )

    nodes = _node_sequence(device, source, destination)

    # Depart: reorder to the exit end, then split.
    exit_side = topology.port_side(source, nodes[1])
    reorder_to_end(builder, state, device, qubit, source, exit_side)
    ion = state.ion_of_qubit(qubit)
    builder.split(trap=source, ion=ion, chain_size=len(state.chain(source)), side=exit_side)
    state.split(source, ion)

    # Travel node by node.
    for index in range(1, len(nodes)):
        previous, node = nodes[index - 1], nodes[index]
        segment = topology.segment_between(previous, node)
        builder.move(ion=ion, segment=segment.name, length=segment.length,
                     from_node=previous, to_node=node)

        if index == len(nodes) - 1:
            entry_side = topology.port_side(destination, previous)
            builder.merge(trap=destination, ion=ion, side=entry_side)
            state.merge(destination, ion, entry_side)
        elif topology.is_trap(node):
            # Pass-through trap (linear topologies, Figure 4): merge, bring the
            # state to the far end, split back out.  The chain may transiently
            # hold capacity+1 ions while the travelling ion is inside.
            entry_side = topology.port_side(node, previous)
            next_side = topology.port_side(node, nodes[index + 1])
            builder.merge(trap=node, ion=ion, side=entry_side)
            state.merge(node, ion, entry_side, allow_overfill=True)
            reorder_to_end(builder, state, device, qubit, node, next_side)
            ion = state.ion_of_qubit(qubit)
            builder.split(trap=node, ion=ion, chain_size=len(state.chain(node)),
                          side=next_side)
            state.split(node, ion)
        else:
            junction = topology.junction(node)
            builder.cross_junction(ion=ion, junction=junction.name, degree=junction.degree)

"""Design-space exploration: spaces, stores, strategies, runners, frontiers.

This package layers a general exploration engine over the fast
compile/simulate core:

* :mod:`~repro.dse.space` -- :class:`DesignSpace`, the declarative cross
  product of sweep axes, with validation, enumeration and stable point
  fingerprints.
* :mod:`~repro.dse.store` -- :class:`ExperimentStore`, an append-only JSONL
  store keyed by point fingerprint: dedup, resume-after-kill, shard merge.
* :mod:`~repro.dse.strategies` -- exhaustive grid, seeded random sampling,
  greedy coordinate descent and successive halving, all deterministic under
  a fixed seed for any worker count.
* :mod:`~repro.dse.runner` -- :class:`DSERunner`, which drives points through
  the parallel sweep executor with store replay, gate fan-out and
  ``--shard i/N`` support.
* :mod:`~repro.dse.pareto` -- best-point selection and fidelity-vs-runtime
  Pareto frontiers.
* :mod:`~repro.dse.dispatch` -- filesystem-coordinated distributed
  execution: a :class:`ShardLedger` of lease files (atomic claims,
  heartbeat renewal, expiry-based reclaim of dead workers) and a
  :class:`Dispatcher` that partitions a space into leased shards, runs
  local worker processes (``repro dse dispatch``) or prints remote launch
  commands, and watches progress with a ``wall_s``-driven ETA.
* :mod:`~repro.dse.adaptive` -- model-based search: incremental surrogate
  regressors, expected-improvement/UCB batch proposers, a surrogate-ranked
  multi-fidelity ladder, and the distributed propose/evaluate protocol
  (a signed proposal ledger inside the store directory; ``repro dse
  dispatch --strategy bayes``, ``repro dse propose``).
* :mod:`~repro.dse.moo` -- multi-objective frontier search: named objective
  vectors, the incremental Pareto archive, exact 2-D/3-D hypervolume, and
  the EHVI/ParEGO proposers (``repro dse run|dispatch --strategy
  ehvi|parego --objectives fidelity,runtime``).

The paper's Figures 6-8 are expressed as design spaces and executed through
this engine (see :mod:`repro.toolflow.sweep`); ``python -m repro dse`` is the
command-line entry point for custom studies.
"""

from repro.dse.adaptive import (
    AdaptiveDispatcher,
    AdaptiveHalvingProposer,
    BayesProposer,
    ProposalLedger,
    run_adaptive_worker,
    run_proposer,
)
from repro.dse.dispatch import (
    DEFAULT_TTL_S,
    Dispatcher,
    LeaseDir,
    LeaseLost,
    LeaseState,
    ShardLedger,
    estimate_eta_s,
    read_manifest,
    run_worker,
    spawn_worker_process,
    write_manifest,
)
from repro.dse.pareto import (
    OBJECTIVES,
    best_record,
    frontier_rows,
    objective_value,
    pareto_frontier,
    per_app_frontiers,
)
from repro.dse.moo import (
    DEFAULT_OBJECTIVES,
    EHVIProposer,
    ParEGOProposer,
    ParetoArchive,
    cloud_rows,
    dominates,
    hypervolume,
    objective_vector,
    parse_objectives,
    record_frontier,
    records_hypervolume,
)
from repro.dse.runner import DSERunner, Shard
from repro.dse.space import AXES, DesignPoint, DesignSpace, point_from_spec
from repro.dse.store import (
    CachedRecord,
    CachedResult,
    ExperimentStore,
    StoreCorruptionWarning,
    record_to_row,
    row_to_record,
)
from repro.dse.strategies import (
    ADAPTIVE_STRATEGY_NAMES,
    MOO_STRATEGY_NAMES,
    STRATEGY_NAMES,
    AdaptiveHalving,
    BayesianOptimization,
    CoordinateDescent,
    EHVISearch,
    ExhaustiveGrid,
    ParEGOSearch,
    RandomSampling,
    Strategy,
    StrategyResult,
    SuccessiveHalving,
    make_strategy,
)

__all__ = [
    "ADAPTIVE_STRATEGY_NAMES",
    "AXES",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_TTL_S",
    "MOO_STRATEGY_NAMES",
    "OBJECTIVES",
    "STRATEGY_NAMES",
    "AdaptiveDispatcher",
    "AdaptiveHalving",
    "AdaptiveHalvingProposer",
    "BayesProposer",
    "BayesianOptimization",
    "CachedRecord",
    "CachedResult",
    "CoordinateDescent",
    "DSERunner",
    "DesignPoint",
    "DesignSpace",
    "Dispatcher",
    "EHVIProposer",
    "EHVISearch",
    "ExhaustiveGrid",
    "ExperimentStore",
    "LeaseDir",
    "LeaseLost",
    "LeaseState",
    "ParEGOProposer",
    "ParEGOSearch",
    "ParetoArchive",
    "ProposalLedger",
    "RandomSampling",
    "Shard",
    "ShardLedger",
    "StoreCorruptionWarning",
    "Strategy",
    "StrategyResult",
    "SuccessiveHalving",
    "best_record",
    "cloud_rows",
    "dominates",
    "estimate_eta_s",
    "frontier_rows",
    "hypervolume",
    "make_strategy",
    "objective_value",
    "objective_vector",
    "parse_objectives",
    "pareto_frontier",
    "per_app_frontiers",
    "point_from_spec",
    "read_manifest",
    "record_frontier",
    "record_to_row",
    "records_hypervolume",
    "row_to_record",
    "run_adaptive_worker",
    "run_proposer",
    "run_worker",
    "spawn_worker_process",
    "write_manifest",
]

"""Adaptive, model-based design-space search.

This package layers surrogate-guided optimization over the exploration
engine of :mod:`repro.dse`: instead of fixing every evaluated point up
front (grid, random, halving ladders), an adaptive run alternates between
*proposing* a small batch of candidate points -- chosen by a surrogate
model trained on every result seen so far -- and *evaluating* that batch
through the ordinary compile/simulate pipeline and experiment store.

* :mod:`~repro.dse.adaptive.model` -- pure-python incremental surrogate
  regressors over encoded design points: random-Fourier-feature ridge
  regression (:class:`RFFSurrogate`) and a bagged regression-tree ensemble
  with predictive variance (:class:`TreeEnsembleSurrogate`), both
  bit-deterministic under a fixed seed.
* :mod:`~repro.dse.adaptive.propose` -- expected-improvement and UCB
  acquisition, the :class:`BayesProposer` batch proposer, and the
  :class:`AdaptiveHalvingProposer` multi-fidelity scheduler that promotes
  points through the scaled-proxy ladder on surrogate rank instead of a
  fixed eta.
* :mod:`~repro.dse.adaptive.protocol` -- the distributed propose/evaluate
  split: the proposer writes signed proposal batches into a
  ``proposals/`` ledger inside the store directory (same atomic
  create/rename lease discipline as the shard ledger), workers lease
  batches and append results to the store, and the proposer ingests them
  incrementally to emit the next batch.  A killed proposer or worker is
  recoverable from the ledger alone.

The ``bayes`` and ``adaptive-halving`` strategies of
:mod:`repro.dse.strategies` drive these proposers single-process through
:class:`~repro.dse.runner.DSERunner`; ``repro dse dispatch --strategy
bayes`` and ``repro dse propose`` drive them across a worker fleet.
Either way the proposal sequence depends only on (space, strategy, seed)
and the deterministic evaluation results, so serial, ``--jobs N`` and
dispatched runs -- even with workers killed mid-batch -- explore the same
points and report the same best.
"""

from repro.dse.adaptive.model import (
    PointEncoder,
    RFFSurrogate,
    TreeEnsembleSurrogate,
    make_surrogate,
)
from repro.dse.adaptive.propose import (
    AdaptiveHalvingProposer,
    BayesProposer,
    ProposalBatch,
    default_max_evals,
    expected_improvement,
    make_proposer,
    upper_confidence_bound,
)
from repro.dse.adaptive.protocol import (
    AdaptiveDispatcher,
    ProposalLedger,
    run_adaptive_worker,
    run_proposer,
)

__all__ = [
    "AdaptiveDispatcher",
    "AdaptiveHalvingProposer",
    "BayesProposer",
    "PointEncoder",
    "ProposalBatch",
    "ProposalLedger",
    "RFFSurrogate",
    "TreeEnsembleSurrogate",
    "default_max_evals",
    "expected_improvement",
    "make_proposer",
    "make_surrogate",
    "run_adaptive_worker",
    "run_proposer",
    "upper_confidence_bound",
]

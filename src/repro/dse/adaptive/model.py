"""Incremental surrogate models over encoded design points.

The adaptive strategies need a cheap predictor of "how good is this design
point?" that can be refreshed after every evaluated batch.  Two pure-python
regressors provide that, both trained online from store rows and both
bit-deterministic under a fixed seed (all randomness comes from
``random.Random(seed)``, all accumulation happens in a fixed order):

* :class:`RFFSurrogate` -- Bayesian ridge regression on a random-Fourier-
  feature map (a stationary-kernel approximation).  Observations update the
  sufficient statistics ``A = lambda*I + sum(phi phi^T)`` and
  ``b = sum(phi*y)`` incrementally; predictions solve the ridge system via
  a cached Cholesky factor and report the posterior predictive variance.
* :class:`TreeEnsembleSurrogate` -- a bagged ensemble of depth-bounded
  regression trees; the prediction is the bag mean and the predictive
  spread is the disagreement across trees.  Better than the RFF model on
  axis-aligned, interaction-heavy landscapes (capacity thresholds, gate
  cliffs); refit lazily from the accumulated observations.

:class:`PointEncoder` maps :class:`~repro.dse.space.DesignPoint` objects to
fixed-length float vectors: numeric axes (capacity, buffer, qubits) are
min-max normalised over the space's axis values, categorical axes (app,
topology, gate, reorder) are one-hot.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.space import DesignSpace

#: Surrogate names accepted by :func:`make_surrogate` and the CLI.
SURROGATE_NAMES = ("rff", "trees")


class PointEncoder:
    """Encode design points of one space as fixed-length float vectors."""

    #: (axis, how to read it off a point) for the numeric axes.
    _NUMERIC = (
        ("capacity", lambda point: point.config.trap_capacity),
        ("buffer", lambda point: point.config.buffer_ions),
        ("qubits", lambda point: point.qubits),
    )
    #: Same for the categorical axes.
    _CATEGORICAL = (
        ("app", lambda point: point.app),
        ("topology", lambda point: point.config.topology),
        ("gate", lambda point: point.config.gate),
        ("reorder", lambda point: point.config.reorder),
    )

    def __init__(self, space: DesignSpace) -> None:
        self._ranges: Dict[str, Tuple[float, float]] = {}
        for axis, _ in self._NUMERIC:
            values = [float(v) for v in space.axis_values(axis)
                      if v is not None]
            low = min(values) if values else 0.0
            high = max(values) if values else 0.0
            self._ranges[axis] = (low, high)
        self._categories: Dict[str, Tuple] = {
            axis: tuple(space.axis_values(axis))
            for axis, _ in self._CATEGORICAL
        }
        self.dim = len(self._NUMERIC) + sum(
            len(values) for values in self._categories.values())

    def encode(self, point) -> Tuple[float, ...]:
        """The feature vector of one point (proxy-sized points included).

        Numeric values outside the axis range (multi-fidelity proxy sizes)
        extrapolate linearly; a ``None`` qubit count (the application's
        default, i.e. the largest scale) encodes as 1.0.
        """

        features: List[float] = []
        for axis, read in self._NUMERIC:
            value = read(point)
            low, high = self._ranges[axis]
            if value is None:
                features.append(1.0)
            elif high > low:
                features.append((float(value) - low) / (high - low))
            else:
                features.append(0.0)
        for axis, read in self._CATEGORICAL:
            value = read(point)
            for candidate in self._categories[axis]:
                features.append(1.0 if value == candidate else 0.0)
        return tuple(features)


# --------------------------------------------------------------------------- #
# Small dense linear algebra (pure python, deterministic).
# --------------------------------------------------------------------------- #
def _cholesky(matrix: List[List[float]]) -> List[List[float]]:
    """Lower-triangular Cholesky factor of a symmetric PD matrix.

    The ridge term keeps the system comfortably positive definite; a tiny
    jitter guards the diagonal against float cancellation anyway.
    """

    n = len(matrix)
    lower = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1):
            total = matrix[i][j]
            row_i, row_j = lower[i], lower[j]
            for k in range(j):
                total -= row_i[k] * row_j[k]
            if i == j:
                lower[i][j] = math.sqrt(max(total, 1e-12))
            else:
                lower[i][j] = total / lower[j][j]
    return lower


def _solve_cholesky(lower: List[List[float]], rhs: Sequence[float]) -> List[float]:
    """Solve ``L L^T x = rhs`` by forward then backward substitution."""

    n = len(lower)
    forward = [0.0] * n
    for i in range(n):
        total = rhs[i]
        row = lower[i]
        for k in range(i):
            total -= row[k] * forward[k]
        forward[i] = total / row[i]
    back = [0.0] * n
    for i in range(n - 1, -1, -1):
        total = forward[i]
        for k in range(i + 1, n):
            total -= lower[k][i] * back[k]
        back[i] = total / lower[i][i]
    return back


def _forward_solve(lower: List[List[float]], rhs: Sequence[float]) -> List[float]:
    """Solve ``L v = rhs`` (used for the predictive-variance quadratic form)."""

    n = len(lower)
    out = [0.0] * n
    for i in range(n):
        total = rhs[i]
        row = lower[i]
        for k in range(i):
            total -= row[k] * out[k]
        out[i] = total / row[i]
    return out


# --------------------------------------------------------------------------- #
class RFFSurrogate:
    """Bayesian ridge regression on linear + random Fourier features.

    The feature map is ``[1, x, cos(Wx + b)]``: a constant absorbs the
    objective's mean, the raw (linear) terms capture additive main effects
    -- which is what lets a handful of observations already rank "FM is the
    best gate" or "capacity helps" across the one-hot axes -- and the
    ``features`` cosine features approximate an RBF kernel of the given
    ``lengthscale`` for the interactions.  ``observe`` updates the
    sufficient statistics in O(size^2); ``predict`` factorises lazily and
    returns the posterior mean and predictive standard deviation.
    """

    name = "rff"

    def __init__(self, dim: int, *, features: int = 32,
                 lengthscale: float = 1.5, ridge: float = 1e-2,
                 seed: int = 0) -> None:
        if dim < 1:
            raise ValueError("encoded dimension must be positive")
        if features < 1:
            raise ValueError("feature count must be positive")
        rng = random.Random(seed)
        self.dim = dim
        self.features = features
        self._weights = [[rng.gauss(0.0, 1.0 / lengthscale) for _ in range(dim)]
                         for _ in range(features)]
        self._phases = [rng.uniform(0.0, 2.0 * math.pi) for _ in range(features)]
        size = 1 + dim + features  # constant + linear + cosine features
        self._gram = [[ridge if i == j else 0.0 for j in range(size)]
                      for i in range(size)]
        self._moment = [0.0] * size
        self._sum_y = 0.0
        self._sum_y2 = 0.0
        self.observations = 0
        self._factor: Optional[List[List[float]]] = None
        self._theta: Optional[List[float]] = None

    def _features_of(self, x: Sequence[float]) -> List[float]:
        scale = math.sqrt(2.0 / self.features)
        phi = [1.0]
        phi.extend(x)
        for weights, phase in zip(self._weights, self._phases):
            total = phase
            for w, value in zip(weights, x):
                total += w * value
            phi.append(scale * math.cos(total))
        return phi

    def observe(self, x: Sequence[float], y: float) -> None:
        """Fold one observation into the sufficient statistics."""

        phi = self._features_of(x)
        gram = self._gram
        for i, phi_i in enumerate(phi):
            row = gram[i]
            self._moment[i] += phi_i * y
            for j, phi_j in enumerate(phi):
                row[j] += phi_i * phi_j
        self._sum_y += y
        self._sum_y2 += y * y
        self.observations += 1
        self._factor = None
        self._theta = None

    def _fit(self) -> None:
        self._factor = _cholesky(self._gram)
        self._theta = _solve_cholesky(self._factor, self._moment)

    def _noise_scale(self) -> float:
        """Residual-spread estimate scaling the predictive variance."""

        if self.observations < 2:
            return 1.0
        mean = self._sum_y / self.observations
        var = max(self._sum_y2 / self.observations - mean * mean, 1e-12)
        return math.sqrt(var)

    def predict(self, x: Sequence[float]) -> Tuple[float, float]:
        """``(mean, std)`` of the posterior prediction at ``x``."""

        if self.observations == 0:
            return 0.0, 1.0
        if self._factor is None:
            self._fit()
        phi = self._features_of(x)
        mean = sum(t * p for t, p in zip(self._theta, phi))
        solved = _forward_solve(self._factor, phi)
        quad = sum(value * value for value in solved)
        std = self._noise_scale() * math.sqrt(max(quad, 0.0))
        return mean, std


# --------------------------------------------------------------------------- #
class _TreeNode:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value: float) -> None:
        self.feature = -1
        self.threshold = 0.0
        self.left = None
        self.right = None
        self.value = value


def _build_tree(xs: List[Sequence[float]], ys: List[float], indices: List[int],
                depth: int, max_depth: int, min_leaf: int) -> _TreeNode:
    mean = sum(ys[i] for i in indices) / len(indices)
    node = _TreeNode(mean)
    if depth >= max_depth or len(indices) < 2 * min_leaf:
        return node
    best = None  # (sse, feature, threshold, left_indices, right_indices)
    dim = len(xs[indices[0]])
    for feature in range(dim):
        ordered = sorted(indices, key=lambda i: (xs[i][feature], i))
        values = [xs[i][feature] for i in ordered]
        # Prefix sums give each split's SSE in O(1).
        prefix_y = [0.0]
        prefix_y2 = [0.0]
        for i in ordered:
            prefix_y.append(prefix_y[-1] + ys[i])
            prefix_y2.append(prefix_y2[-1] + ys[i] * ys[i])
        total_y, total_y2 = prefix_y[-1], prefix_y2[-1]
        # min_leaf >= 1 keeps every split strictly interior, so both sides
        # of the comparison below always exist.
        for split in range(min_leaf, len(ordered) - min_leaf + 1):
            if values[split - 1] == values[split]:
                continue  # cannot separate equal feature values
            left_n, right_n = split, len(ordered) - split
            left_y, left_y2 = prefix_y[split], prefix_y2[split]
            right_y, right_y2 = total_y - left_y, total_y2 - left_y2
            sse = (left_y2 - left_y * left_y / left_n) + \
                  (right_y2 - right_y * right_y / right_n)
            if best is None or sse < best[0] - 1e-15:
                threshold = 0.5 * (values[split - 1] + values[split])
                best = (sse, feature, threshold,
                        ordered[:split], ordered[split:])
    if best is None:
        return node
    _, node.feature, node.threshold, left_idx, right_idx = best
    node.left = _build_tree(xs, ys, left_idx, depth + 1, max_depth, min_leaf)
    node.right = _build_tree(xs, ys, right_idx, depth + 1, max_depth, min_leaf)
    return node


def _tree_predict(node: _TreeNode, x: Sequence[float]) -> float:
    while node.left is not None:
        node = node.left if x[node.feature] <= node.threshold else node.right
    return node.value


class TreeEnsembleSurrogate:
    """Bagged regression trees with disagreement-based predictive variance.

    Observations accumulate; the bag is refit lazily (dirty flag) the next
    time a prediction is requested.  Each tree trains on a seeded bootstrap
    resample, so the ensemble is bit-deterministic for a fixed
    (seed, observation sequence).
    """

    name = "trees"

    def __init__(self, dim: int, *, trees: int = 12, max_depth: int = 4,
                 min_leaf: int = 1, seed: int = 0) -> None:
        if dim < 1:
            raise ValueError("encoded dimension must be positive")
        if trees < 2:
            raise ValueError("an ensemble needs at least two trees")
        if min_leaf < 1:
            raise ValueError("min_leaf must be at least 1")
        self.dim = dim
        self.trees = trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self._xs: List[Sequence[float]] = []
        self._ys: List[float] = []
        self._fitted: Optional[List[_TreeNode]] = None

    @property
    def observations(self) -> int:
        return len(self._ys)

    def observe(self, x: Sequence[float], y: float) -> None:
        self._xs.append(tuple(x))
        self._ys.append(float(y))
        self._fitted = None

    def _fit(self) -> None:
        n = len(self._ys)
        indices = list(range(n))
        forest = []
        for tree in range(self.trees):
            # Integer seed mix: stable across processes and Python versions
            # (tuple seeding would hash, which TypeErrors on 3.11+).
            rng = random.Random(self.seed * 1_000_003 + tree * 8191 + n)
            sample = sorted(rng.choices(indices, k=n))
            forest.append(_build_tree(self._xs, self._ys, sample, 0,
                                      self.max_depth, self.min_leaf))
        self._fitted = forest

    def predict(self, x: Sequence[float]) -> Tuple[float, float]:
        """``(mean, std)``: bag mean and across-tree disagreement."""

        if not self._ys:
            return 0.0, 1.0
        if self._fitted is None:
            self._fit()
        values = [_tree_predict(tree, x) for tree in self._fitted]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, math.sqrt(var)


def make_surrogate(name: str, dim: int, *, seed: int = 0):
    """Build a surrogate model by CLI name."""

    if name == "rff":
        return RFFSurrogate(dim, seed=seed)
    if name == "trees":
        return TreeEnsembleSurrogate(dim, seed=seed)
    raise ValueError(f"unknown surrogate {name!r}; "
                     f"expected one of {SURROGATE_NAMES}")

"""Acquisition functions and batch proposers for adaptive search.

A *proposer* owns the decision side of an adaptive run: it enumerates the
candidate points of a :class:`~repro.dse.space.DesignSpace` once, then
alternates ``next_batch()`` (which points to evaluate next) with
``ingest()`` (fold the batch's objective values back in).  Crucially, the
proposal sequence is a pure function of (space, seed, ingested values):
evaluation results are deterministic, so any executor -- serial,
``--jobs N``, or a fleet of workers leasing batches off the proposal
ledger -- reproduces the identical sequence and best point, and a restarted
proposer regenerates its own history from the ledger.

* :class:`BayesProposer` -- classic batch Bayesian optimization: a seeded
  random initial batch, then batches of the top acquisition scorers
  (expected improvement or UCB) under a surrogate model, within a fixed
  evaluation budget (default: a quarter of the grid).
* :class:`AdaptiveHalvingProposer` -- multi-fidelity search over the
  scaled-proxy ladder of :class:`~repro.dse.strategies.SuccessiveHalving`,
  but the survivor set of each rung is chosen by surrogate rank: a
  candidate survives while its upper confidence bound reaches the rung's
  best observed score, instead of a fixed ``1/eta`` fraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import random

from repro.dse.adaptive.model import PointEncoder, make_surrogate
from repro.dse.space import DesignPoint, DesignSpace
from repro.obs.metrics import registry as _metrics_registry

#: Strategy names implemented by proposers (mirrored in STRATEGY_NAMES).
PROPOSER_NAMES = ("bayes", "adaptive-halving")

#: Acquisition functions understood by :class:`BayesProposer`.
ACQUISITIONS = ("ei", "ucb")


def _norm_cdf(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _norm_pdf(z: float) -> float:
    return math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)


def expected_improvement(mean: float, std: float, best: float) -> float:
    """Expected improvement of a candidate over the incumbent ``best``."""

    if std <= 0.0:
        return max(0.0, mean - best)
    z = (mean - best) / std
    return (mean - best) * _norm_cdf(z) + std * _norm_pdf(z)


def upper_confidence_bound(mean: float, std: float, beta: float = 2.0) -> float:
    """Optimism-in-the-face-of-uncertainty score ``mean + beta * std``."""

    return mean + beta * std


def _record_proposal(batch: Optional[ProposalBatch], elapsed_s: float) -> None:
    """Meter one ``next_batch`` call on the process metrics registry."""

    if batch is None:
        return
    registry = _metrics_registry()
    registry.counter("dse.propose.batches").inc()
    registry.counter("dse.propose.points").inc(len(batch.keys))
    registry.histogram("dse.propose.latency_s").observe(elapsed_s)


def _record_ingest(values: Sequence[float]) -> None:
    """Meter one ``ingest`` call on the process metrics registry."""

    registry = _metrics_registry()
    registry.counter("dse.ingest.batches").inc()
    registry.counter("dse.ingest.values").inc(len(values))


def default_max_evals(space_size: int, batch_size: int = 4) -> int:
    """The bayes evaluation budget when none is given: a quarter of the grid
    (floored at two batches, capped at the grid itself).

    Shared by :class:`BayesProposer` and the progress tooling (``dse status
    --eta``), so budget estimates never require constructing a proposer.
    """

    return min(max(2 * batch_size, space_size // 4), space_size)


@dataclass(frozen=True)
class ProposalBatch:
    """One proposed batch: which candidates to evaluate at which fidelity.

    ``keys`` are stable candidate indices into the proposer's enumeration
    (used for dedup and provenance); ``points`` are the concrete (possibly
    proxy-sized) design points to run.  ``rung`` / ``proxy_qubits`` are the
    multi-fidelity coordinates (``None`` on full-scale batches), stamped
    into the evaluated rows' provenance.
    """

    number: int
    keys: Tuple[int, ...]
    points: Tuple[DesignPoint, ...]
    rung: Optional[int] = None
    proxy_qubits: Optional[int] = None


class BayesProposer:
    """Batch Bayesian optimization over a design space.

    Parameters
    ----------
    space, seed, metric:
        What is optimised.  The metric only names the objective for
        provenance; the *values* arrive via :meth:`ingest` (higher is
        better, as produced by :func:`repro.dse.pareto.objective_value`).
    batch_size:
        Points per proposal batch (also the size of the seeded random
        initialisation batch).
    max_evals:
        Total evaluation budget.  Defaults to a quarter of the grid --
        the operating point the adaptive subsystem is built for.
    surrogate:
        ``"rff"`` or ``"trees"`` (see :mod:`repro.dse.adaptive.model`).
    acquisition:
        ``"ei"`` (expected improvement, default) or ``"ucb"``.
    """

    strategy_name = "bayes"

    def __init__(self, space: DesignSpace, *, seed: int = 0,
                 metric: str = "fidelity", batch_size: int = 4,
                 max_evals: Optional[int] = None, surrogate: str = "rff",
                 acquisition: str = "ei", ucb_beta: float = 2.0) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be a positive integer")
        if acquisition not in ACQUISITIONS:
            raise ValueError(f"unknown acquisition {acquisition!r}; "
                             f"expected one of {ACQUISITIONS}")
        self.space = space
        self.seed = seed
        self.metric = metric
        self.batch_size = batch_size
        self.candidates: List[DesignPoint] = list(space.points())
        if max_evals is None:
            max_evals = default_max_evals(space.size, batch_size)
        self.max_evals = min(max_evals, len(self.candidates))
        if self.max_evals < 1:
            raise ValueError("max_evals must allow at least one evaluation")
        self.surrogate_name = surrogate
        self.acquisition = acquisition
        self.ucb_beta = ucb_beta
        self._encoder = PointEncoder(space)
        self._features = [self._encoder.encode(point)
                          for point in self.candidates]
        self._surrogate = make_surrogate(surrogate, self._encoder.dim,
                                         seed=seed)
        self._rng = random.Random(seed)
        self._observed: Dict[int, float] = {}
        self._proposed: set = set()
        self._batches = 0

    # ------------------------------------------------------------------ #
    def spec(self) -> Dict[str, object]:
        """JSON-safe constructor spec (the manifest's ``strategy`` entry)."""

        return {
            "name": self.strategy_name,
            "seed": self.seed,
            "metric": self.metric,
            "batch_size": self.batch_size,
            "max_evals": self.max_evals,
            "surrogate": self.surrogate_name,
            "acquisition": self.acquisition,
            "ucb_beta": self.ucb_beta,
        }

    @property
    def evaluations(self) -> int:
        return len(self._proposed)

    def next_batch(self) -> Optional[ProposalBatch]:
        """The next batch to evaluate, or ``None`` when the budget is spent."""

        started = perf_counter()
        batch = self._next_batch()
        _record_proposal(batch, perf_counter() - started)
        return batch

    def _next_batch(self) -> Optional[ProposalBatch]:
        remaining = self.max_evals - len(self._proposed)
        unproposed = [index for index in range(len(self.candidates))
                      if index not in self._proposed]
        if remaining <= 0 or not unproposed:
            return None
        count = min(self.batch_size, remaining, len(unproposed))
        if not self._observed:
            # Seeded random initialisation; sorted so the batch runs in
            # enumeration order (deterministic and gate-fold friendly).
            keys = sorted(self._rng.sample(unproposed, count))
        else:
            scored = self._scores(unproposed)
            ranked = sorted(range(len(unproposed)),
                            key=lambda i: (-scored[i], unproposed[i]))
            keys = sorted(unproposed[i] for i in ranked[:count])
        self._proposed.update(keys)
        self._batches += 1
        return ProposalBatch(
            number=self._batches,
            keys=tuple(keys),
            points=tuple(self.candidates[key] for key in keys),
        )

    def _scores(self, unproposed: Sequence[int]) -> List[float]:
        best = max(self._observed.values())
        scores = []
        for index in unproposed:
            mean, std = self._surrogate.predict(self._features[index])
            if self.acquisition == "ei":
                scores.append(expected_improvement(mean, std, best))
            else:
                scores.append(upper_confidence_bound(mean, std, self.ucb_beta))
        return scores

    def ingest(self, batch: ProposalBatch, values: Sequence[float]) -> None:
        """Fold one evaluated batch back in (objective values, batch order)."""

        if len(values) != len(batch.keys):
            raise ValueError(f"batch {batch.number} has {len(batch.keys)} "
                             f"points but {len(values)} values")
        for key, value in zip(batch.keys, values):
            self._observed[key] = float(value)
            self._surrogate.observe(self._features[key], float(value))
        _record_ingest(values)

    def best(self) -> Optional[Tuple[int, float]]:
        """``(candidate index, value)`` of the best observation (ties: earliest)."""

        if not self._observed:
            return None
        best_key = min(self._observed,
                       key=lambda key: (-self._observed[key], key))
        return best_key, self._observed[best_key]

    def trace_entry(self, batch: ProposalBatch) -> Dict[str, object]:
        """A report row describing one ingested batch."""

        best = self.best()
        return {"batch": batch.number, "proposed": len(batch.keys),
                "evaluations": self.evaluations,
                "best": None if best is None else best[1]}


class AdaptiveHalvingProposer:
    """Multi-fidelity scheduler: surrogate-ranked promotion up a proxy ladder.

    Rung ``r`` evaluates the surviving candidates with their applications
    rebuilt at ``proxy_qubits * 2**r`` qubits (the same ladder as
    :class:`~repro.dse.strategies.SuccessiveHalving`).  After each rung a
    fresh surrogate is fit on the rung's scores, and a candidate is
    promoted while its upper confidence bound reaches the rung's best
    observed score -- so the survivor count adapts to how separable the
    rung's results are (a clear leader eliminates aggressively, a noisy
    rung keeps contenders) instead of a fixed ``1/eta``.  Survivors are
    capped at half the rung (progress is guaranteed) and floored at
    ``min_survivors``; the final rung runs at the space's true size.
    """

    strategy_name = "adaptive-halving"

    def __init__(self, space: DesignSpace, *, seed: int = 0,
                 metric: str = "fidelity", proxy_qubits: int = 12,
                 surrogate: str = "trees", min_survivors: int = 1,
                 ucb_beta: float = 1.0) -> None:
        if proxy_qubits < 8:
            raise ValueError("proxy_qubits must be at least 8 "
                             "(the smallest scaled suite)")
        if min_survivors < 1:
            raise ValueError("min_survivors must be positive")
        self.space = space
        self.seed = seed
        self.metric = metric
        self.proxy_qubits = proxy_qubits
        self.surrogate_name = surrogate
        self.min_survivors = min_survivors
        self.ucb_beta = ucb_beta
        self.candidates: List[DesignPoint] = list(space.points())
        # The proxy ladder only makes sense below the true size; None means
        # "application default" (paper scale, 64-78 qubits).
        real_sizes = [qubits for qubits in space.qubits if qubits is not None]
        self._size_cap = min(real_sizes) if real_sizes else None
        self._encoder = PointEncoder(space)
        self._survivors = list(range(len(self.candidates)))
        self._rung = 0
        self._size = proxy_qubits
        self._final_scores: Optional[Dict[int, float]] = None
        self._batches = 0
        self._done = False
        self.trace: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    def spec(self) -> Dict[str, object]:
        return {
            "name": self.strategy_name,
            "seed": self.seed,
            "metric": self.metric,
            "proxy_qubits": self.proxy_qubits,
            "surrogate": self.surrogate_name,
            "min_survivors": self.min_survivors,
            "ucb_beta": self.ucb_beta,
        }

    @property
    def evaluations(self) -> int:
        return sum(entry["proposed"] for entry in self.trace)

    def _at_final_rung(self) -> bool:
        if len(self._survivors) <= self.min_survivors:
            return True
        return self._size_cap is not None and self._size >= self._size_cap

    def next_batch(self) -> Optional[ProposalBatch]:
        started = perf_counter()
        batch = self._next_batch()
        _record_proposal(batch, perf_counter() - started)
        return batch

    def _next_batch(self) -> Optional[ProposalBatch]:
        if self._done:
            return None
        self._batches += 1
        if self._at_final_rung():
            return ProposalBatch(
                number=self._batches,
                keys=tuple(self._survivors),
                points=tuple(self.candidates[key] for key in self._survivors),
                rung=self._rung,
                proxy_qubits=None,  # full scale
            )
        return ProposalBatch(
            number=self._batches,
            keys=tuple(self._survivors),
            points=tuple(self.candidates[key].with_qubits(self._size)
                         for key in self._survivors),
            rung=self._rung,
            proxy_qubits=self._size,
        )

    def ingest(self, batch: ProposalBatch, values: Sequence[float]) -> None:
        if len(values) != len(batch.keys):
            raise ValueError(f"batch {batch.number} has {len(batch.keys)} "
                             f"points but {len(values)} values")
        scores = dict(zip(batch.keys, (float(v) for v in values)))
        _record_ingest(values)
        if batch.proxy_qubits is None:
            self._final_scores = scores
            self._done = True
            self.trace.append({"rung": self._rung, "proxy_qubits": None,
                               "proposed": len(batch.keys),
                               "kept": len(batch.keys)})
            return
        kept = self._promote(batch, scores)
        _metrics_registry().counter("dse.rung.promotions").inc(len(kept))
        self.trace.append({"rung": self._rung,
                           "proxy_qubits": batch.proxy_qubits,
                           "proposed": len(batch.keys), "kept": len(kept)})
        self._survivors = kept
        self._rung += 1
        self._size *= 2

    def _promote(self, batch: ProposalBatch,
                 scores: Dict[int, float]) -> List[int]:
        """Surrogate-ranked survivor selection for one proxy rung."""

        surrogate = make_surrogate(
            self.surrogate_name, self._encoder.dim,
            seed=self.seed * 1009 + self._rung)
        features = {key: self._encoder.encode(self.candidates[key])
                    for key in batch.keys}
        for key in batch.keys:  # deterministic ingestion order
            surrogate.observe(features[key], scores[key])
        best_observed = max(scores.values())
        optimistic = []
        for key in batch.keys:
            mean, std = surrogate.predict(features[key])
            bound = upper_confidence_bound(mean, std, self.ucb_beta)
            if bound >= best_observed - 1e-12:
                optimistic.append(key)
        # Rank promotion candidates by observed score (surrogate chose who
        # *may* win; the rung's data orders them), then bound the count:
        # at most half the rung (guaranteed progress), at least
        # min_survivors (never eliminate everyone on model overconfidence).
        cap = max(self.min_survivors, math.ceil(len(batch.keys) / 2))
        ranked = sorted(batch.keys, key=lambda key: (-scores[key], key))
        chosen = [key for key in ranked if key in set(optimistic)][:cap]
        for key in ranked:  # refill to the floor from the rung ranking
            if len(chosen) >= self.min_survivors:
                break
            if key not in chosen:
                chosen.append(key)
        return sorted(chosen)

    def best(self) -> Optional[Tuple[int, float]]:
        """Best *full-scale* candidate (ties: earliest); None before the end."""

        if not self._final_scores:
            return None
        best_key = min(self._final_scores,
                       key=lambda key: (-self._final_scores[key], key))
        return best_key, self._final_scores[best_key]

    def trace_entry(self, batch: ProposalBatch) -> Dict[str, object]:
        return dict(self.trace[-1], batch=batch.number) if self.trace else {}


def make_proposer(space: DesignSpace, spec: Dict[str, object]):
    """Build a proposer from a manifest/strategy spec dictionary.

    Covers the whole adaptive family: the scalar proposers here and the
    multi-objective ones of :mod:`repro.dse.moo.propose` (``ehvi``,
    ``parego``), so the distributed protocol needs a single factory.
    """

    from repro.dse.moo.propose import MOO_PROPOSER_NAMES, make_moo_proposer

    spec = dict(spec)
    name = spec.pop("name", None)
    if name == "bayes":
        return BayesProposer(space, **spec)
    if name == "adaptive-halving":
        return AdaptiveHalvingProposer(space, **spec)
    if name in MOO_PROPOSER_NAMES:
        return make_moo_proposer(space, dict(spec, name=name))
    raise ValueError(f"unknown adaptive strategy {name!r}; expected one of "
                     f"{PROPOSER_NAMES + MOO_PROPOSER_NAMES}")

"""The distributed propose/evaluate protocol for adaptive search.

PR 3's shard dispatcher cannot run adaptive strategies: static shards fix
every point before any result exists, while an adaptive search must *see*
results to choose its next points.  This module splits the two roles over
the shared store directory, with no coordination machinery beyond what the
shard ledger already established:

* The **proposer** (one process, ``repro dse propose`` or the strategy
  side of ``repro dse dispatch --strategy bayes``) writes numbered,
  *signed* proposal files into ``<store>/proposals/`` -- atomic temp-write
  + rename, a SHA-256 content signature over the canonical payload so a
  torn or tampered proposal is detected rather than half-read.  Each
  logical batch is split into ``parts`` leaseable slices so the whole
  worker fleet shares it.  The proposer then watches the experiment store
  (incremental :meth:`~repro.dse.store.ExperimentStore.reload`, O(new
  rows) per tick) until every point of the outstanding batch has a row,
  ingests the objective values, and emits the next batch.  A signed
  ``complete.json`` marker ends the run and records the best point.
* **Workers** (any number, ``repro dse worker`` -- the same entry point as
  shard runs; the manifest's ``mode: "adaptive"`` routes them here) lease
  proposal parts through a :class:`~repro.dse.dispatch.LeaseDir` exactly
  like shards: atomic claim, heartbeat renewal after every persisted task
  group, expiry-based takeover of a SIGKILLed worker's part, done markers.
  Results are appended to the store as always (per-owner writer files,
  fingerprint dedup).

Crash recovery needs the ledger alone: a killed worker's part expires and
is re-leased; a killed proposer restarts, replays its own proposal files
in order (regenerating each batch deterministically and verifying it
against the stored files), re-ingests their results from the store and
continues where it stopped.  Because proposals are a pure function of
(space, strategy, seed, ingested values) and evaluation is deterministic,
a dispatched adaptive run -- even with kills on either side -- exports
byte-identically to a single-process run of the same strategy.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.dse.adaptive.propose import ProposalBatch, make_proposer
from repro.dse.dispatch import (
    DEFAULT_TTL_S,
    LeaseClock,
    LeaseDir,
    LeaseLost,
    WorkerTelemetry,
    _filename_safe,
    _live_phase,
    default_owner,
    read_manifest,
    spawn_worker_process,
    write_manifest,
)
from repro.dse.pareto import objective_value
from repro.dse.runner import DSERunner
from repro.dse.space import DesignSpace, point_from_spec
from repro.dse.store import ExperimentStore, row_to_record
from repro.obs.distributed import TraceContext, TraceShardWriter, adopt_shards
from repro.obs.trace import current_tracer
from repro.obs.trace import span as _span

#: Subdirectory of the store directory holding the proposal ledger.
PROPOSAL_DIR = "proposals"

#: File name of the proposer's end-of-run marker.
COMPLETE_NAME = "complete.json"


class ProposalTampered(ValueError):
    """A proposal file failed its content-signature check."""


def _signature(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of a payload, signature field excluded."""

    body = {key: value for key, value in payload.items() if key != "signature"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ProposalLedger:
    """The ``proposals/`` directory: signed proposal files plus lease files.

    Part ``p`` of logical batch ``n`` lives in
    ``batch-<n:06d>-part<p:02d>.json``; its lease and done marker use the
    same name through a :class:`~repro.dse.dispatch.LeaseDir`, so the
    claim/heartbeat/takeover discipline is byte-for-byte the shard
    ledger's.  All writes are atomic (private temp file + ``os.replace``)
    and all payloads carry a content signature checked on read.
    """

    def __init__(self, store_dir, *, ttl_s: float = DEFAULT_TTL_S,
                 clock: Optional[LeaseClock] = None) -> None:
        self.store_dir = Path(store_dir)
        self.directory = self.store_dir / PROPOSAL_DIR
        self.leases = LeaseDir(self.directory, ttl_s=ttl_s, clock=clock)
        self.ttl_s = self.leases.ttl_s
        self.clock = self.leases.clock

    # ------------------------------------------------------------------ #
    @staticmethod
    def work_name(number: int, part: int) -> str:
        return f"batch-{number:06d}-part{part:02d}"

    def work_path(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    def work_names(self) -> List[str]:
        """Every proposal part present, in (batch, part) order."""

        if not self.directory.exists():
            return []
        return sorted(path.stem for path in self.directory.glob("batch-*.json"))

    def batch_numbers(self) -> List[int]:
        """Logical batch numbers present, ascending."""

        numbers = {int(name.split("-")[1]) for name in self.work_names()}
        return sorted(numbers)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _slices(batch: ProposalBatch, parts: int) -> List[Tuple[int, slice]]:
        """The contiguous per-part slices of one logical batch.

        Contiguity keeps enumeration-adjacent points together, which is
        what lets a worker fold gate variants into one compilation.
        """

        count = len(batch.keys)
        parts = max(1, min(int(parts), count))
        base, extra = divmod(count, parts)
        slices = []
        start = 0
        for part in range(1, parts + 1):
            stop = start + base + (1 if part <= extra else 0)
            slices.append((part, slice(start, stop)))
            start = stop
        return slices

    def _part_payload(self, batch: ProposalBatch, meta: Dict[str, object],
                      parts: int, part: int, span: slice) -> Dict[str, object]:
        from repro.io.serialization import SCHEMA_VERSION

        payload = {
            "schema_version": SCHEMA_VERSION,
            "batch": batch.number,
            "part": part,
            "parts": parts,
            "keys": list(batch.keys[span]),
            "points": [point.spec() for point in batch.points[span]],
            "rung": batch.rung,
            "proxy_qubits": batch.proxy_qubits,
        }
        payload.update(meta)
        payload["signature"] = _signature(payload)
        return payload

    def _write_part(self, payload: Dict[str, object]) -> Path:
        name = self.work_name(payload["batch"], payload["part"])
        path = self.work_path(name)
        tmp = self.directory / \
            f".{path.name}.{_filename_safe(default_owner())}.tmp"
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def write_batch(self, batch: ProposalBatch, meta: Dict[str, object], *,
                    parts: int = 1) -> List[Path]:
        """Persist one logical batch as up to ``parts`` leaseable slices.

        Every slice is individually signed and written atomically (private
        temp file + rename).
        """

        self.directory.mkdir(parents=True, exist_ok=True)
        return [self._write_part(self._part_payload(batch, meta, parts,
                                                    part, span))
                for part, span in self._slices(batch, parts)]

    def verify_or_repair_batch(self, batch: ProposalBatch,
                               meta: Dict[str, object], *,
                               parts: int = 1) -> None:
        """Reconcile stored parts of a batch with the regenerated one.

        The proposer-restart path: a proposer killed between the per-part
        renames of :meth:`write_batch` leaves a logical batch with some
        parts missing.  Parts that exist must match the regenerated slice
        byte-for-byte in content (keys and points) -- anything else means
        the ledger belongs to a different (space, strategy, seed) and is a
        hard error.  Missing or torn parts are simply (re)written, which is
        idempotent: the regenerated content is identical to what the dead
        proposer would have written.
        """

        self.directory.mkdir(parents=True, exist_ok=True)
        for part, span in self._slices(batch, parts):
            expected = self._part_payload(batch, meta, parts, part, span)
            name = self.work_name(batch.number, part)
            if self.work_path(name).exists():
                try:
                    stored = self.read_work(name)
                except ProposalTampered:
                    stored = None  # torn copy: rewrite below
                if stored is not None:
                    if (stored["keys"] != expected["keys"]
                            or stored["points"] != expected["points"]):
                        raise ValueError(
                            f"proposal ledger in {self.directory} does not "
                            f"match this (space, strategy, seed): batch "
                            f"{batch.number} part {part} differs; was the "
                            f"store produced by a different run?")
                    continue
            self._write_part(expected)

    def read_work(self, name: str) -> Dict[str, object]:
        """Load and signature-check one proposal part."""

        from repro.io.serialization import check_schema_version

        path = self.work_path(name)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise ValueError(f"no proposal part {name} at {path}")
        except json.JSONDecodeError as err:
            raise ProposalTampered(f"{path}: unparseable proposal "
                                   f"({err})") from err
        if payload.get("signature") != _signature(payload):
            raise ProposalTampered(
                f"{path}: signature mismatch -- the proposal was torn or "
                f"tampered with; delete it to let the proposer rewrite it")
        check_schema_version(payload, source=str(path))
        return payload

    @staticmethod
    def batch_from_payload(payload: Dict[str, object]) -> ProposalBatch:
        """Rebuild a (part-sized) :class:`ProposalBatch` from a payload."""

        return ProposalBatch(
            number=payload["batch"],
            keys=tuple(payload["keys"]),
            points=tuple(point_from_spec(spec) for spec in payload["points"]),
            rung=payload.get("rung"),
            proxy_qubits=payload.get("proxy_qubits"),
        )

    def read_logical_batch(self, number: int) -> Dict[str, object]:
        """The merged payload of every part of one logical batch."""

        names = [name for name in self.work_names()
                 if int(name.split("-")[1]) == number]
        if not names:
            raise ValueError(f"no proposal batch {number} in {self.directory}")
        merged: Dict[str, object] = {"batch": number, "keys": [], "points": []}
        for name in names:
            payload = self.read_work(name)
            merged["keys"].extend(payload["keys"])
            merged["points"].extend(payload["points"])
            merged["rung"] = payload.get("rung")
            merged["proxy_qubits"] = payload.get("proxy_qubits")
        return merged

    # ------------------------------------------------------------------ #
    def claim_next(self, owner: str) -> Optional[str]:
        """Claim the first available proposal part for ``owner`` (or None)."""

        for name in self.work_names():
            if self.leases.is_done(name):
                continue
            if self.leases.claim(name, owner):
                return name
        return None

    def renew(self, name: str, owner: str) -> bool:
        return self.leases.renew(name, owner)

    def release(self, name: str, owner: str, *, done: bool = True) -> None:
        self.leases.release(name, owner, done=done)

    def is_done(self, name: str) -> bool:
        return self.leases.is_done(name)

    def active_leases(self) -> int:
        """Parts currently under a fresh lease (for progress reporting)."""

        return sum(1 for name in self.work_names()
                   if self.leases.status_of(name)[0] == "active")

    # ------------------------------------------------------------------ #
    @property
    def complete_path(self) -> Path:
        return self.directory / COMPLETE_NAME

    def write_complete(self, payload: Dict[str, object]) -> Path:
        from repro.io.serialization import SCHEMA_VERSION

        body = {"schema_version": SCHEMA_VERSION}
        body.update(payload)
        body["signature"] = _signature(body)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.directory / \
            f".{COMPLETE_NAME}.{_filename_safe(default_owner())}.tmp"
        tmp.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.complete_path)
        return self.complete_path

    def read_complete(self) -> Optional[Dict[str, object]]:
        try:
            payload = json.loads(self.complete_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if payload.get("signature") != _signature(payload):
            return None  # torn write in flight; treat as not-yet-complete
        return payload

    def all_done(self) -> bool:
        """True when the run is complete and every proposal part is done."""

        if self.read_complete() is None:
            return False
        return all(self.leases.is_done(name) for name in self.work_names())


# --------------------------------------------------------------------------- #
# Proposer side
# --------------------------------------------------------------------------- #
def run_proposer(store_dir, *, manifest: Optional[Dict] = None,
                 poll_s: float = 0.2,
                 tick: Optional[Callable[[], None]] = None) -> Dict[str, object]:
    """Drive an adaptive run's proposal loop to completion.

    Requires an adaptive-mode dispatch manifest in ``store_dir`` (written
    by ``repro dse dispatch --strategy bayes ...`` or
    :meth:`AdaptiveDispatcher.prepare`).  Existing proposal files are
    replayed first -- each logical batch is regenerated from the
    deterministic proposer and verified against the stored files, so a
    restarted proposer continues exactly where its predecessor was killed.
    ``tick`` (if given) is invoked on every wait poll; raising from it
    aborts the loop (the dispatcher uses this for timeouts and worker
    respawn).

    Returns ``{"batches", "evaluations", "best", "trace"}`` where ``best``
    echoes the complete-marker payload.
    """

    store_dir = Path(store_dir)
    manifest = manifest if manifest is not None else read_manifest(store_dir)
    if manifest.get("mode", "shards") != "adaptive":
        raise ValueError(
            f"store {store_dir} is not an adaptive dispatch (manifest mode "
            f"is {manifest.get('mode', 'shards')!r}); prepare it with "
            f"`repro dse dispatch --strategy bayes ...` first")
    space = DesignSpace.from_dict(manifest["space"])
    strategy_spec = dict(manifest["strategy"])
    parts = int(strategy_spec.pop("parts", 1))
    proposer = make_proposer(space, strategy_spec)
    ledger = ProposalLedger(store_dir,
                            ttl_s=manifest.get("ttl_s", DEFAULT_TTL_S))
    store = ExperimentStore(store_dir)
    # Fingerprint-only runner: builds and memoises circuits to key the
    # store, but never evaluates anything (the workers do).
    index = DSERunner(space, store=store)
    existing = set(ledger.batch_numbers())
    meta = {"strategy": proposer.strategy_name, "seed": proposer.seed,
            "metric": proposer.metric}
    if hasattr(proposer, "objectives"):
        # Multi-objective runs: the objective list rides in every proposal
        # part so workers stamp it into row provenance exactly like the
        # in-process strategy driver does -- serial and dispatched runs of
        # one study then persist identical raw rows, not only identical
        # canonical exports.
        meta["objectives"] = list(proposer.objectives)

    trace: List[Dict[str, object]] = []
    while True:
        with _span("dse.propose.batch") as batch_span:
            batch = proposer.next_batch()
            if batch is None:
                break
            batch_span.set(batch=batch.number, points=len(batch.keys))
            if batch.number in existing:
                # Replay: verify the stored parts against the regenerated
                # batch and rewrite any the dead proposer did not get to (a
                # kill can land between the per-part renames of write_batch).
                ledger.verify_or_repair_batch(batch, meta, parts=parts)
            else:
                ledger.write_batch(batch, meta, parts=parts)
        with _span("dse.propose.await", batch=batch.number,
                   points=len(batch.keys)):
            values = _await_batch(store, index, batch, proposer,
                                  poll_s=poll_s, tick=tick)
        proposer.ingest(batch, values)
        trace.append(proposer.trace_entry(batch))

    best = proposer.best()
    best_payload = None
    if best is not None:
        key, value = best
        best_payload = {"key": key, "value": value,
                        "point": proposer.candidates[key].spec()}
    complete = {
        "batches": len(trace),
        "evaluations": proposer.evaluations,
        "best": best_payload,
    }
    if hasattr(proposer, "frontier"):
        # Multi-objective runs: the complete marker records the Pareto
        # archive (key, canonical objective values, point spec), so the
        # frontier of a finished dispatched run is readable without
        # reconstructing a proposer.
        complete["objectives"] = list(proposer.objectives)
        complete["frontier"] = [
            {"key": key, "values": list(vector),
             "point": proposer.candidates[key].spec()}
            for key, vector in proposer.frontier()]
    ledger.write_complete(complete)
    summary = dict(complete)
    summary["trace"] = trace
    return summary


def _await_batch(store: ExperimentStore, index: DSERunner,
                 batch: ProposalBatch, proposer, *, poll_s: float,
                 tick: Optional[Callable[[], None]]) -> List[object]:
    """Block until every point of ``batch`` has a store row; return values.

    Scalar proposers get one :func:`~repro.dse.pareto.objective_value` per
    point; multi-objective proposers (an ``objectives`` attribute) get the
    full :func:`~repro.dse.moo.objectives.objective_vector` -- exactly what
    the in-process strategy drivers feed ``ingest``, so the proposal
    sequence is identical either way.
    """

    fingerprints = [index.fingerprint(point) for point in batch.points]
    while any(fp not in store for fp in fingerprints):
        if tick is not None:
            tick()
        time.sleep(poll_s)
        store.reload()  # incremental: O(rows appended since last poll)
    records = [row_to_record(store.get(fp)) for fp in fingerprints]
    objectives = getattr(proposer, "objectives", None)
    if objectives is not None:
        from repro.dse.moo.objectives import objective_vector

        return [objective_vector(record, objectives) for record in records]
    return [objective_value(record, proposer.metric) for record in records]


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def run_adaptive_worker(store_dir, *, manifest: Optional[Dict] = None,
                        owner: Optional[str] = None,
                        jobs: Optional[int] = None, circuits=None,
                        idle_wait_s: Optional[float] = None) -> Dict[str, object]:
    """Lease and evaluate proposal parts until the proposer declares done.

    The adaptive counterpart of the shard worker loop (and what
    :func:`repro.dse.dispatch.run_worker` delegates to for adaptive
    manifests): claim the first unleased, not-done proposal part; evaluate
    its points through a :class:`~repro.dse.runner.DSERunner` with
    heartbeat renewal after every persisted task group (a reclaimed lease
    aborts the part via :class:`~repro.dse.dispatch.LeaseLost`); mark it
    done; repeat.  When nothing is claimable the worker waits -- for the
    proposer to emit the next batch, for a dead worker's lease to expire,
    or for the complete marker, which (once every part is done) ends the
    loop.

    One store view and one compiled-program cache persist across parts;
    the store is refreshed with the incremental ``reload`` before each
    part, so rows flushed by other workers (including a dead worker's
    partial batch) replay instead of recomputing.
    """

    from repro.toolflow.parallel import ProgramCache

    store_dir = Path(store_dir)
    manifest = manifest if manifest is not None else read_manifest(store_dir)
    space = DesignSpace.from_dict(manifest["space"])
    ledger = ProposalLedger(store_dir,
                            ttl_s=manifest.get("ttl_s", DEFAULT_TTL_S))
    owner = owner or default_owner()
    jobs = int(manifest.get("jobs", 1)) if jobs is None else int(jobs)
    throttle_s = float(manifest.get("throttle_s", 0.0))
    if idle_wait_s is None:
        idle_wait_s = max(0.05, min(1.0, ledger.ttl_s / 4))

    telemetry = WorkerTelemetry(store_dir, owner, clock=ledger.clock)
    # Join the dispatcher's trace when one was stamped into our environment
    # (the same propagation the shards-mode worker does).
    trace_ctx = TraceContext.from_env()
    shard_writer = None
    if trace_ctx is not None:
        trace_ctx.arm()
        shard_writer = TraceShardWriter(store_dir, owner)
    telemetry.emit("worker_start", mode="adaptive", jobs=jobs,
                   pid=os.getpid())
    cache = ProgramCache()
    completed: List[str] = []
    lost: List[str] = []
    seen_counters: Dict[str, int] = {}

    def counters_delta() -> Dict[str, int]:
        # Same per-done metrics movement the shards-mode worker ships, so
        # the timeline's cache-rate series works for adaptive fleets too.
        current = cache.metrics.counters()
        moved = {name: value - seen_counters.get(name, 0)
                 for name, value in current.items()
                 if value != seen_counters.get(name, 0)}
        seen_counters.clear()
        seen_counters.update(current)
        return moved

    with ExperimentStore(store_dir,
                         writer=f"adaptive-{_filename_safe(owner)}") as store:
        while True:
            claimed = ledger.claim_next(owner)
            if claimed is None:
                if ledger.all_done():
                    break
                time.sleep(idle_wait_s)
                continue
            telemetry.emit("claim", work=claimed, **_live_phase())
            part_started = time.perf_counter()

            payload = ledger.read_work(claimed)
            points = [point_from_spec(spec) for spec in payload["points"]]

            def heartbeat(name: str = claimed) -> None:
                if not ledger.renew(name, owner):
                    raise LeaseLost(f"lease on proposal part {name} was "
                                    f"reclaimed from {owner}")
                telemetry.emit("renew", work=name, **_live_phase())
                if throttle_s:
                    time.sleep(throttle_s)

            store.reload()  # replay rows other workers flushed meanwhile
            runner = DSERunner(space, store=store, jobs=jobs, cache=cache,
                               circuits=circuits, heartbeat=heartbeat)
            runner.provenance = {
                "strategy": payload.get("strategy"),
                "seed": payload.get("seed"),
                "rung": payload.get("rung"),
                "proxy_qubits": payload.get("proxy_qubits"),
            }
            if payload.get("objectives") is not None:
                # Multi-objective batches: mirror the serial strategy
                # driver's stamp so raw rows match serial runs exactly.
                runner.provenance["objectives"] = payload["objectives"]
            try:
                with _span("dse.part", part=claimed, owner=owner,
                           points=len(points)):
                    runner.evaluate(points)
            except LeaseLost:
                lost.append(claimed)
                telemetry.emit("lease_lost", work=claimed)
                if shard_writer is not None:
                    shard_writer.flush(current_tracer())
                continue
            ledger.release(claimed, owner, done=True)
            completed.append(claimed)
            telemetry.emit("done", work=claimed,
                           points=runner.stats.get("evaluated", 0),
                           replayed=runner.stats.get("reused", 0),
                           wall_s=round(time.perf_counter() - part_started, 6),
                           counters=counters_delta())
            if shard_writer is not None:
                # Per-part flush: the shard file is always a complete
                # atomic snapshot, so a SIGKILL costs only the spans since
                # the last finished part.
                shard_writer.flush(current_tracer())
    telemetry.emit("worker_exit", completed=len(completed), lost=len(lost),
                   counters=cache.metrics.counters())
    if shard_writer is not None:
        shard_writer.flush(current_tracer())
    return {"owner": owner, "completed": completed, "lost": lost}


# --------------------------------------------------------------------------- #
# Dispatcher: proposer + local worker fleet
# --------------------------------------------------------------------------- #
class AdaptiveDispatcher:
    """Drive a distributed adaptive run: one proposer, N leased workers.

    The adaptive sibling of :class:`~repro.dse.dispatch.Dispatcher`: writes
    an adaptive-mode manifest (each proposal batch split into ``workers``
    leaseable parts, so the whole fleet shares a batch), spawns N local
    ``repro dse worker`` processes (which the manifest routes into the
    proposal-part loop), and runs the proposal loop *in this process*.
    Workers that exited abnormally are respawned within a budget; a worker
    SIGKILLed mid-part loses only its lease, which a survivor reclaims
    after one TTL.  For remote fleets use :meth:`prepare` +
    ``repro dse worker --store DIR`` per machine and ``repro dse propose
    --store DIR`` wherever the proposer should live (see
    :meth:`command_lines`).
    """

    def __init__(self, space: DesignSpace, store_dir, *,
                 strategy: Dict[str, object], workers: int = 2,
                 ttl_s: float = DEFAULT_TTL_S, jobs: int = 1,
                 throttle_s: float = 0.0, poll_s: float = 0.2,
                 respawn: bool = True, max_respawns: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.space = space
        self.store_dir = Path(store_dir)
        self.strategy = dict(strategy)
        self.strategy.setdefault("parts", int(workers))
        if self.strategy.get("max_evals") is None:
            # Record the resolved budget in the manifest so progress
            # tooling (``dse status --eta``) can read it without
            # constructing a proposer.  Identical to the proposer's own
            # default, so determinism is unaffected.
            name = self.strategy.get("name")
            batch_size = self.strategy.get("batch_size", 4)
            if name == "bayes":
                from repro.dse.adaptive.propose import default_max_evals

                self.strategy["max_evals"] = default_max_evals(
                    space.size, batch_size)
            elif name in ("ehvi", "parego"):
                from repro.dse.moo.propose import default_moo_max_evals

                self.strategy["max_evals"] = default_moo_max_evals(
                    space.size, batch_size)
        self.workers = int(workers)
        self.ttl_s = float(ttl_s)
        self.jobs = int(jobs)
        self.throttle_s = float(throttle_s)
        self.poll_s = float(poll_s)
        self.respawn = respawn
        self.max_respawns = (self.workers if max_respawns is None
                             else int(max_respawns))
        self.respawned = 0
        self.ledger = ProposalLedger(self.store_dir, ttl_s=self.ttl_s)
        self._procs: List = []

    def prepare(self) -> Path:
        """Write the adaptive dispatch manifest; workers can join after this."""

        return write_manifest(self.store_dir, self.space, mode="adaptive",
                              strategy=self.strategy, ttl_s=self.ttl_s,
                              jobs=self.jobs, throttle_s=self.throttle_s)

    def command_lines(self) -> List[str]:
        """Shell commands for a remote fleet (proposer first, then workers)."""

        import shlex

        store = shlex.quote(str(self.store_dir))
        proposer = f"python -m repro dse propose --store {store}"
        worker = f"python -m repro dse worker --store {store}"
        return [proposer] + [worker] * self.workers

    def _reap_and_respawn(self) -> None:
        for proc in list(self._procs):
            if proc.poll() is None or proc.returncode == 0:
                continue
            self._procs.remove(proc)
            if (self.respawn and self.respawned < self.max_respawns
                    and not self.ledger.all_done()):
                self.respawned += 1
                self._procs.append(spawn_worker_process(self.store_dir))

    def run(self, *, timeout_s: Optional[float] = None) -> Dict[str, object]:
        """Prepare, spawn workers, run the proposer loop, reap the fleet.

        Returns the proposer summary plus fleet accounting; ``complete``
        is False when the run timed out or every worker died beyond the
        respawn budget (workers still running are then terminated).
        """

        # The dispatch span is the cross-process parent traced workers
        # hang their root spans under (spawn_worker_process stamps the
        # open span into their environment); their shards merge in after
        # the span closes.
        with _span("dse.dispatch", mode="adaptive",
                   workers=self.workers) as trace:
            summary = self._run(timeout_s=timeout_s)
            trace.set(complete=summary["complete"],
                      respawned=summary["respawned"])
        tracer = current_tracer()
        if tracer is not None:
            summary["trace"] = adopt_shards(tracer, self.store_dir)
        return summary

    def _run(self, *, timeout_s: Optional[float]) -> Dict[str, object]:
        import subprocess

        self.prepare()
        started = time.monotonic()
        self._procs = [spawn_worker_process(self.store_dir)
                       for _ in range(self.workers)]

        class _Abort(Exception):
            pass

        def tick() -> None:
            if timeout_s is not None and time.monotonic() - started > timeout_s:
                raise _Abort
            self._reap_and_respawn()
            if not any(proc.poll() is None for proc in self._procs):
                raise _Abort  # every worker gone: nobody left to evaluate

        complete = False
        summary: Dict[str, object] = {}
        try:
            summary = run_proposer(self.store_dir, poll_s=self.poll_s,
                                   tick=tick)
            complete = True
        except _Abort:
            pass
        finally:
            # Workers exit by themselves once the complete marker lands and
            # every part is done; anything still running after a grace
            # period (timeout/abort paths) is terminated so the dispatcher
            # never leaks processes.
            deadline = time.monotonic() + max(5.0, 20 * self.poll_s)
            for proc in self._procs:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
        summary = dict(summary)
        summary.update({
            "complete": complete,
            "elapsed_s": time.monotonic() - started,
            "respawned": self.respawned,
        })
        return summary

"""Filesystem-coordinated shard dispatch for distributed DSE runs.

PR 2's :class:`~repro.dse.store.ExperimentStore` made sharded sweeps
*mergeable* (every shard appends to its own JSONL file; the directory union
is the result set), but shards still had to be launched by hand with
``--shard i/N`` per machine.  This module adds the missing coordination
layer, using nothing but the shared store directory -- no daemon, no
database, so it works on any shared filesystem (NFS scratch space, a
laptop's tmpdir, a CI runner):

* :class:`ShardLedger` -- one lease file per shard under
  ``<store>/leases/``.  Claims are atomic create-via-hardlink (the classic
  lockfile idiom: ``os.link`` fails iff the lease exists); heartbeats renew
  the lease mtime; a lease whose mtime is older than the TTL is *expired*
  and may be taken over atomically by rename, which is how the shard of a
  SIGKILLed worker gets re-leased.  Completed shards leave a ``.done``
  marker so they are never claimed again.
* :func:`run_worker` -- the worker loop behind ``repro dse worker`` (entry
  point: :func:`repro.toolflow.parallel.shard_worker`).  Claim a shard,
  evaluate its points with heartbeat renewal after every persisted task
  group, mark it done, repeat; when shards remain but none is claimable,
  wait for a lease to expire instead of stranding it.
* :class:`Dispatcher` -- partitions a :class:`~repro.dse.space.DesignSpace`
  into M shards (M > N workers, so a death costs at most one shard of
  progress), writes the dispatch manifest, runs N local worker processes
  (or prints the per-machine command lines for remote launch), and watches
  progress -- point counts and an ETA driven by the per-point ``wall_s``
  timings the store rows record since schema v2.

Correctness leans on two properties rather than on perfect mutual
exclusion: shard evaluation is **idempotent** (results are deterministic)
and the store **dedups by fingerprint**, so the worst a lease race can cost
is duplicated work, never wrong or duplicated data.  A dispatched run's
merged store therefore exports byte-identically to a single-process run of
the same space (see :meth:`~repro.dse.store.ExperimentStore.export_rows`).
"""

from __future__ import annotations

import json
import os
import shlex
import socket
import subprocess
import sys
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dse.runner import DSERunner, Shard
from repro.dse.space import DesignSpace
from repro.dse.store import ExperimentStore
from repro.obs.distributed import (
    TraceContext,
    TraceShardWriter,
    adopt_shards,
)
from repro.obs.trace import (
    current_span_name,
    current_span_ref,
    current_tracer,
    span,
)

#: Subdirectory of the store directory holding lease and done files.
LEASE_DIR = "leases"

#: Subdirectory of the store directory holding per-worker telemetry JSONL.
#: A subdirectory, not the store root: the store ingests every top-level
#: ``*.jsonl`` as experiment rows, so telemetry must live one level down.
TELEMETRY_DIR = "telemetry"

#: Dispatch manifest file name inside the store directory.
MANIFEST_NAME = "dispatch.json"

#: Default lease time-to-live.  A worker heartbeats after every completed
#: task group -- one compilation plus a simulation per folded gate variant
#: -- so the TTL must exceed the wall time of the slowest *task group*, not
#: just the slowest point, by a comfortable margin; expiry within that
#: margin makes another worker redo the shard (harmlessly, but twice).
DEFAULT_TTL_S = 60.0

#: Telemetry rotation threshold: when a worker's active event log exceeds
#: this many bytes, it is rotated to a numbered segment (and old segments
#: are compacted into a summary row), bounding per-worker telemetry at
#: roughly ``(keep_segments + 1) * max_bytes`` however long the fleet runs.
DEFAULT_TELEMETRY_MAX_BYTES = 1 << 20

#: Raw (uncompacted) rotated segments kept per worker before the oldest is
#: folded into the cumulative summary segment.
DEFAULT_TELEMETRY_KEEP_SEGMENTS = 2


class LeaseLost(RuntimeError):
    """A worker's heartbeat found its shard lease reclaimed by another worker.

    Raised out of the heartbeat hook to abort the shard mid-evaluation; the
    rows persisted so far stay in the store (deduped by fingerprint), so the
    new owner replays them instead of recomputing.
    """


@dataclass(frozen=True)
class LeaseState:
    """Snapshot of one shard's coordination state.

    ``status`` is one of ``"open"`` (unclaimed), ``"active"`` (leased,
    heartbeat fresh), ``"expired"`` (leased, heartbeat older than the TTL --
    claimable by takeover) or ``"done"`` (completed, never claimable again).
    """

    index: int
    status: str
    owner: Optional[str] = None
    age_s: Optional[float] = None


def _live_phase() -> Dict[str, str]:
    """``{"phase": <open span name>}`` for a telemetry event, or ``{}``.

    Workers stamp their innermost open span onto heartbeat-style telemetry
    events; ``dse top`` shows it as the worker's live phase.  Empty when
    tracing is disabled or no span is open, so untraced runs emit exactly
    the pre-tracing telemetry schema.
    """

    name = current_span_name()
    return {"phase": name} if name else {}


def default_owner() -> str:
    """Default lease-owner identity: host plus pid (unique per worker)."""

    return f"{socket.gethostname()}-pid{os.getpid()}"


def _filename_safe(owner: str) -> str:
    """An owner string reduced to filename-safe characters (temp names)."""

    return "".join(c if c.isalnum() or c in "-._" else "_" for c in owner)


class LeaseClock:
    """Single time source for every lease stamp and age computation.

    Lease freshness is ``now - st_mtime``: one side of that subtraction
    comes from the filesystem, so the other side must be the matching wall
    clock -- and every write to the mtime must come from the same source,
    or ages drift by whatever skew separates the readings.  Routing all of
    it (claim stamps, heartbeats, expiry checks, status ages) through one
    clock object keeps the arithmetic coherent and makes the whole lease
    lifecycle drivable by a fake clock in tests: pass ``now_fn`` and both
    the stamps written *and* the ages computed follow it.
    """

    def __init__(self, now_fn: Callable[[], float] = time.time) -> None:
        self._now = now_fn

    def now(self) -> float:
        return float(self._now())

    def touch(self, path) -> None:
        """Stamp ``path``'s mtime with this clock's current reading."""

        now = self.now()
        os.utime(path, times=(now, now))

    def age(self, path) -> float:
        """Seconds since ``path``'s mtime (clamped non-negative)."""

        return max(0.0, self.now() - os.stat(path).st_mtime)


class LeaseDir:
    """Name-keyed lease files with atomic claim/renew/release semantics.

    The coordination primitive shared by the shard ledger and the adaptive
    proposal ledger (:mod:`repro.dse.adaptive.protocol`).  Every unit of
    work is a *name*; ``<name>.lease`` holds the current owner, ``<name>.done``
    marks completion.  All operations go through atomic filesystem
    primitives:

    * **claim** -- the owner payload is written to a private temp file and
      hardlinked to the lease name; ``os.link`` fails if the lease exists,
      so exactly one contender wins a fresh claim.  An *expired* lease is
      taken over by ``os.replace`` (atomic rename) followed by a read-back
      ownership check, so concurrent takeovers resolve to the single owner
      whose rename landed last.
    * **renew** -- a heartbeat bumps the lease file's mtime; expiry is
      ``now - mtime > ttl_s``.  A SIGKILLed worker stops heartbeating and
      its work becomes claimable after one TTL.
    * **release** -- writes the ``.done`` marker (atomic rename) before
      dropping the lease, so work can never report done-and-claimable.

    The remaining races (takeover read-back window, renew-after-reclaim)
    can only duplicate work, which the experiment store's fingerprint dedup
    absorbs; they cannot corrupt results.

    The directory is created lazily by the write paths (claim/release) so
    that read-only inspection -- ``dse status --eta`` on a store the user
    only queries, possibly on a read-only mount -- never mutates the store.
    Read paths treat a missing directory as all-open.
    """

    def __init__(self, directory, *, ttl_s: float = DEFAULT_TTL_S,
                 clock: Optional[LeaseClock] = None) -> None:
        if ttl_s <= 0:
            raise ValueError("lease ttl_s must be positive")
        self.directory = Path(directory)
        self.ttl_s = float(ttl_s)
        self.clock = clock if clock is not None else LeaseClock()

    # ------------------------------------------------------------------ #
    def lease_path(self, name: str) -> Path:
        return self.directory / f"{name}.lease"

    def done_path(self, name: str) -> Path:
        return self.directory / f"{name}.done"

    # ------------------------------------------------------------------ #
    def claim(self, name: str, owner: str) -> bool:
        """Try to lease ``name`` for ``owner``; True iff it succeeded.

        Fresh work is claimed by atomic link; work whose lease expired
        (dead worker) is taken over by atomic rename.  Done and
        actively-leased work is never claimable.
        """

        self.directory.mkdir(parents=True, exist_ok=True)
        if self.done_path(name).exists():
            return False
        lease = self.lease_path(name)
        # Fast path: a held-and-fresh lease is the common case while idle
        # workers poll; answer it with one stat instead of churning temp
        # files on the shared filesystem.  The atomic link below still has
        # the final word on races.
        try:
            if self.clock.age(lease) <= self.ttl_s:
                return False
        except FileNotFoundError:
            pass
        payload = json.dumps({"owner": owner, "work": name,
                              "claimed_at": self.clock.now()},
                             sort_keys=True) + "\n"
        # The temp name must be unique per *owner*, not per pid: two hosts
        # sharing the store over NFS can easily collide on pid alone.
        tmp = self.directory / f".claim-{name}.{_filename_safe(owner)}.tmp"
        tmp.write_text(payload)
        try:
            try:
                os.link(tmp, lease)  # atomic create: fails iff already leased
                # Stamp through the clock so the lease's birth heartbeat
                # comes from the same source as every later age check (the
                # link inherits the temp file's write-time mtime otherwise).
                self.clock.touch(lease)
                return True
            except FileExistsError:
                if not self._expired(lease):
                    return False
                os.replace(tmp, lease)  # atomic takeover of an expired lease
                self.clock.touch(lease)
                # Concurrent takeovers all rename successfully; the last
                # rename wins, so confirm ownership by reading back.  The
                # residual window only risks duplicated (idempotent,
                # deduped) work.
                return self.owner_of(name) == owner
        finally:
            tmp.unlink(missing_ok=True)

    def _expired(self, lease: Path) -> bool:
        try:
            age = self.clock.age(lease)
        except FileNotFoundError:
            # Released between the link attempt and now; a later claim pass
            # will take it fresh.
            return False
        return age > self.ttl_s

    def renew(self, name: str, owner: str) -> bool:
        """Heartbeat: refresh ``owner``'s lease mtime; False if it was lost."""

        if self.owner_of(name) != owner:
            return False
        try:
            self.clock.touch(self.lease_path(name))
        except FileNotFoundError:
            return False
        return True

    def release(self, name: str, owner: str, *, done: bool = True) -> None:
        """Drop ``owner``'s lease; with ``done=True`` mark the work complete.

        The done marker is written (atomically) before the lease is removed,
        so work can never report done-and-claimable.
        """

        self.directory.mkdir(parents=True, exist_ok=True)
        if done:
            tmp = self.directory / f".done-{name}.{_filename_safe(owner)}.tmp"
            tmp.write_text(json.dumps({"owner": owner,
                                       "finished_at": self.clock.now()},
                                      sort_keys=True) + "\n")
            os.replace(tmp, self.done_path(name))
        if self.owner_of(name) == owner:
            self.lease_path(name).unlink(missing_ok=True)

    def owner_of(self, name: str) -> Optional[str]:
        """The owner recorded in a lease file, or ``None``."""

        try:
            payload = json.loads(self.lease_path(name).read_text())
            return payload.get("owner")
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def is_done(self, name: str) -> bool:
        return self.done_path(name).exists()

    def status_of(self, name: str) -> Tuple[str, Optional[str], Optional[float]]:
        """``(status, owner, age_s)`` of one unit of work.

        ``status`` is one of ``"open"`` (unclaimed), ``"active"`` (leased,
        heartbeat fresh), ``"expired"`` (claimable by takeover) or
        ``"done"`` (never claimable again).
        """

        if self.is_done(name):
            return "done", None, None
        try:
            age = self.clock.age(self.lease_path(name))
        except FileNotFoundError:
            return "open", None, None
        status = "expired" if age > self.ttl_s else "active"
        return status, self.owner_of(name), age


class ShardLedger:
    """Lease files deciding which worker owns which shard of a dispatch.

    A thin index-keyed view over :class:`LeaseDir` (shard ``i`` of ``N`` is
    the work unit named ``shard-<i>of<N>``); see there for the atomicity and
    crash-recovery discipline.
    """

    def __init__(self, directory, count: int, *, ttl_s: float = DEFAULT_TTL_S,
                 clock: Optional[LeaseClock] = None) -> None:
        if count < 1:
            raise ValueError("shard count must be at least 1")
        self._leases = LeaseDir(directory, ttl_s=ttl_s, clock=clock)
        self.directory = self._leases.directory
        self.count = int(count)
        self.ttl_s = self._leases.ttl_s
        self.clock = self._leases.clock

    @classmethod
    def for_store(cls, store_dir, count: int, *, ttl_s: float = DEFAULT_TTL_S,
                  clock: Optional[LeaseClock] = None) -> "ShardLedger":
        """The ledger living inside an experiment-store directory."""

        return cls(Path(store_dir) / LEASE_DIR, count, ttl_s=ttl_s, clock=clock)

    # ------------------------------------------------------------------ #
    def _check_index(self, index: int) -> None:
        if not 1 <= index <= self.count:
            raise ValueError(f"shard index must be in 1..{self.count}, "
                             f"got {index}")

    def _name(self, index: int) -> str:
        self._check_index(index)
        return f"shard-{index}of{self.count}"

    def shard(self, index: int) -> Shard:
        self._check_index(index)
        return Shard(index, self.count)

    def lease_path(self, index: int) -> Path:
        return self._leases.lease_path(self._name(index))

    def done_path(self, index: int) -> Path:
        return self._leases.done_path(self._name(index))

    # ------------------------------------------------------------------ #
    def claim(self, index: int, owner: str) -> bool:
        """Try to lease shard ``index`` for ``owner``; True iff it succeeded."""

        return self._leases.claim(self._name(index), owner)

    def renew(self, index: int, owner: str) -> bool:
        """Heartbeat: refresh ``owner``'s lease mtime; False if it was lost.

        A False return means the lease expired and another worker took the
        shard over (or released it) -- the caller must stop working on it.
        """

        return self._leases.renew(self._name(index), owner)

    def release(self, index: int, owner: str, *, done: bool = True) -> None:
        """Drop ``owner``'s lease; with ``done=True`` mark the shard complete."""

        self._leases.release(self._name(index), owner, done=done)

    def owner_of(self, index: int) -> Optional[str]:
        """The owner recorded in a shard's lease file, or ``None``."""

        return self._leases.owner_of(self._name(index))

    # ------------------------------------------------------------------ #
    def state(self, index: int) -> LeaseState:
        """The current :class:`LeaseState` of one shard."""

        status, owner, age = self._leases.status_of(self._name(index))
        return LeaseState(index, status, owner=owner, age_s=age)

    def states(self) -> List[LeaseState]:
        return [self.state(index) for index in range(1, self.count + 1)]

    def status_counts(self) -> Dict[str, int]:
        counts = {"open": 0, "active": 0, "expired": 0, "done": 0}
        for state in self.states():
            counts[state.status] += 1
        return counts

    def done_count(self) -> int:
        return sum(1 for index in range(1, self.count + 1)
                   if self.done_path(index).exists())

    def all_done(self) -> bool:
        return self.done_count() == self.count

    def next_claim(self, owner: str) -> Optional[Shard]:
        """Claim the first available shard for ``owner`` (or ``None``).

        Workers start their scan at an owner-dependent offset so N workers
        hitting an empty ledger at once mostly claim N different shards on
        the first pass instead of stampeding shard 1.
        """

        offset = zlib.crc32(owner.encode()) % self.count
        for step in range(self.count):
            index = (offset + step) % self.count + 1
            if self.claim(index, owner):
                return self.shard(index)
        return None


# --------------------------------------------------------------------------- #
# Worker telemetry: append-only JSONL event logs under <store>/telemetry/.
# --------------------------------------------------------------------------- #
class WorkerTelemetry:
    """One worker's append-only event log inside the store directory.

    Each worker owns exactly one *active* file,
    ``<store>/telemetry/<owner>.jsonl``, and only ever appends to it -- the
    same single-writer-per-file discipline the experiment store uses, so no
    cross-process locking is needed.  Events record the lease lifecycle
    (claims, heartbeat renewals, losses, completions) and worker
    start/exit, each stamped by the shared :class:`LeaseClock`;
    :func:`telemetry_summary` folds the directory union into a per-worker
    fleet view for ``repro dse status --workers``.

    **Rotation/compaction** keeps long-lived fleets bounded: once the
    active file exceeds ``max_bytes`` it is renamed to
    ``<owner>.seg<k>.jsonl`` (atomic; segment numbers only ever grow), and
    once more than ``keep_segments`` raw segments accumulate, the oldest
    are folded -- together with any previous summary -- into one
    cumulative ``event: "summary"`` row in ``<owner>.seg0.jsonl`` and
    unlinked.  The summary row carries the folded claim/renew/loss/done
    counters, point/wall totals and ``folded_through`` (the highest raw
    segment it accounts for), so readers can consume summaries and
    surviving raw segments together without double counting.  All of this
    happens inside the single writer, so the discipline holds.
    """

    def __init__(self, store_dir, owner: str, *,
                 clock: Optional[LeaseClock] = None,
                 max_bytes: Optional[int] = DEFAULT_TELEMETRY_MAX_BYTES,
                 keep_segments: int = DEFAULT_TELEMETRY_KEEP_SEGMENTS) -> None:
        self.owner = owner
        self.clock = clock if clock is not None else LeaseClock()
        self.directory = Path(store_dir) / TELEMETRY_DIR
        self.stem = _filename_safe(owner)
        self.path = self.directory / f"{self.stem}.jsonl"
        self.max_bytes = max_bytes
        self.keep_segments = max(1, int(keep_segments))

    def emit(self, event: str, **fields) -> None:
        """Append one event record (creates the directory lazily)."""

        self.directory.mkdir(parents=True, exist_ok=True)
        record = {"t": self.clock.now(), "owner": self.owner, "event": event}
        record.update(fields)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        if self.max_bytes is not None and \
                self.path.stat().st_size > self.max_bytes:
            self._rotate()

    # ------------------------------------------------------------------ #
    def _segment_path(self, k: int) -> Path:
        return self.directory / f"{self.stem}.seg{k}.jsonl"

    def _raw_segments(self) -> List[int]:
        """Existing raw segment numbers for this worker, ascending."""

        numbers = []
        prefix = f"{self.stem}.seg"
        for path in self.directory.glob(f"{prefix}*.jsonl"):
            digits = path.name[len(prefix):-len(".jsonl")]
            if digits.isdigit() and int(digits) > 0:
                numbers.append(int(digits))
        return sorted(numbers)

    def _summary_row(self) -> Optional[Dict[str, object]]:
        """The current cumulative summary row (from ``seg0``), if any."""

        for record in _parse_telemetry_file(self._segment_path(0)):
            if record.get("event") == "summary":
                return record
        return None

    def _rotate(self) -> None:
        """Rotate the active file out and compact surplus raw segments."""

        summary = self._summary_row()
        folded_through = int(summary.get("folded_through", 0)) if summary \
            else 0
        segments = self._raw_segments()
        next_k = max(segments + [folded_through]) + 1
        os.replace(self.path, self._segment_path(next_k))
        segments.append(next_k)
        surplus = segments[:-self.keep_segments] \
            if len(segments) > self.keep_segments else []
        if surplus:
            self._compact(summary, surplus)

    def _compact(self, summary: Optional[Dict[str, object]],
                 segments: Sequence[int]) -> None:
        """Fold ``segments`` (and the prior summary) into ``seg0``."""

        totals = {
            "t": 0.0, "owner": self.owner, "event": "summary",
            "claims": 0, "renews": 0, "lost": 0, "done": 0,
            "points": 0, "replayed": 0, "wall_s": 0.0,
            "folded": 0, "folded_through": max(segments),
            "first_t": None, "alive": None, "last_event": None,
        }
        if summary is not None:
            for key in ("claims", "renews", "lost", "done", "points",
                        "replayed", "wall_s", "folded"):
                value = summary.get(key)
                if isinstance(value, (int, float)):
                    totals[key] += value
            totals["first_t"] = summary.get("first_t", summary.get("t"))
            totals["t"] = float(summary.get("t") or 0.0)
            totals["alive"] = summary.get("alive")
            totals["last_event"] = summary.get("last_event")
        for k in segments:
            for record in _parse_telemetry_file(self._segment_path(k)):
                event = record.get("event")
                totals["folded"] += 1
                if event == "claim":
                    totals["claims"] += 1
                elif event == "renew":
                    totals["renews"] += 1
                elif event == "lease_lost":
                    totals["lost"] += 1
                elif event == "done":
                    totals["done"] += 1
                    totals["points"] += int(record.get("points") or 0)
                    totals["replayed"] += int(record.get("replayed") or 0)
                    totals["wall_s"] += float(record.get("wall_s") or 0.0)
                elif event == "worker_start":
                    totals["alive"] = True
                elif event == "worker_exit":
                    totals["alive"] = False
                totals["last_event"] = event
                t = record.get("t")
                if isinstance(t, (int, float)):
                    totals["t"] = max(totals["t"], float(t))
                    if totals["first_t"] is None or t < totals["first_t"]:
                        totals["first_t"] = float(t)
        target = self._segment_path(0)
        scratch = target.with_name(target.name + ".tmp")
        scratch.write_text(json.dumps(totals, sort_keys=True) + "\n",
                           encoding="utf-8")
        os.replace(scratch, target)
        # Only after the summary durably covers them may the raw segments
        # go; a crash between these steps leaves both readable, and the
        # ``folded_through`` guard keeps readers from counting twice.
        for k in segments:
            try:
                self._segment_path(k).unlink()
            except OSError:
                pass


def _parse_telemetry_file(path: Path) -> List[Dict[str, object]]:
    """Parse one telemetry JSONL file, skipping torn or garbled lines."""

    records: List[Dict[str, object]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _telemetry_segment(name: str) -> Optional[Tuple[str, int]]:
    """``(stem, k)`` when ``name`` is a rotated ``<stem>.seg<k>.jsonl``."""

    if not name.endswith(".jsonl"):
        return None
    base = name[:-len(".jsonl")]
    stem, dot, seg = base.rpartition(".")
    if dot and seg.startswith("seg") and seg[len("seg"):].isdigit():
        return stem, int(seg[len("seg"):])
    return None


def read_telemetry(store_dir) -> List[Dict[str, object]]:
    """All telemetry events of a store, ordered by timestamp.

    Torn or garbled lines (a live worker's in-flight append) are skipped,
    mirroring the store's tolerance for its own tail lines.  Rotated
    segments are read transparently; compacted history appears as
    cumulative ``event: "summary"`` rows (sorted at the timestamp of the
    last event they folded), and raw segments a summary already accounts
    for (``k <= folded_through``) are skipped so nothing is counted twice.
    """

    directory = Path(store_dir) / TELEMETRY_DIR
    events: List[Dict[str, object]] = []
    if not directory.is_dir():
        return events
    paths = sorted(directory.glob("*.jsonl"))
    # Summary segments first: their folded_through markers gate which raw
    # segments still carry unfolded history.
    folded: Dict[str, int] = {}
    for path in paths:
        segment = _telemetry_segment(path.name)
        if segment is None or segment[1] != 0:
            continue
        for record in _parse_telemetry_file(path):
            events.append(record)
            through = record.get("folded_through")
            if isinstance(through, int):
                folded[segment[0]] = max(folded.get(segment[0], 0), through)
    for path in paths:
        segment = _telemetry_segment(path.name)
        if segment is not None:
            if segment[1] == 0:
                continue  # summary rows were ingested above
            if segment[1] <= folded.get(segment[0], 0):
                continue  # already folded into the stem's summary
        events.extend(_parse_telemetry_file(path))
    events.sort(key=lambda r: (r.get("t") or 0.0, str(r.get("owner", ""))))
    return events


def telemetry_summary(store_dir, *,
                      now: Optional[float] = None) -> Dict[str, Dict[str, object]]:
    """Fold the telemetry logs into one row per worker.

    Each row counts lease claims, heartbeat renewals, losses and completed
    work units, accumulates evaluated/replayed point totals and shard wall
    time (throughput = points / wall_s), and reports the age of the
    worker's most recent event (``last_seen_age_s``) -- the fleet-level
    analogue of a lease heartbeat age.  ``alive`` tracks worker_start /
    worker_exit markers; a worker that died without its exit marker shows
    ``alive`` with a growing ``last_seen_age_s``.  ``phase`` is the
    worker's live open span (stamped on heartbeat events by traced
    workers; ``None`` for untraced runs or between work units).
    """

    workers: Dict[str, Dict[str, object]] = {}
    for record in read_telemetry(store_dir):
        owner = record.get("owner")
        if not isinstance(owner, str) or not owner:
            continue
        row = workers.setdefault(owner, {
            "claims": 0, "renewals": 0, "lost": 0, "done": 0,
            "points": 0, "replayed": 0, "wall_s": 0.0,
            "alive": False, "last_event": None, "last_seen_t": None,
            "phase": None,
        })
        event = record.get("event")
        if event == "claim":
            row["claims"] += 1
        elif event == "renew":
            row["renewals"] += 1
        elif event == "lease_lost":
            row["lost"] += 1
        elif event == "done":
            row["done"] += 1
            row["points"] += int(record.get("points") or 0)
            row["replayed"] += int(record.get("replayed") or 0)
            row["wall_s"] += float(record.get("wall_s") or 0.0)
        elif event == "worker_start":
            row["alive"] = True
        elif event == "worker_exit":
            row["alive"] = False
        elif event == "summary":
            # Compacted history: fold the cumulative totals in, and let
            # the (ordered) live events that follow refine alive/last_event.
            row["claims"] += int(record.get("claims") or 0)
            row["renewals"] += int(record.get("renews") or 0)
            row["lost"] += int(record.get("lost") or 0)
            row["done"] += int(record.get("done") or 0)
            row["points"] += int(record.get("points") or 0)
            row["replayed"] += int(record.get("replayed") or 0)
            row["wall_s"] += float(record.get("wall_s") or 0.0)
            if record.get("alive") is not None:
                row["alive"] = bool(record["alive"])
            event = record.get("last_event") or event
        row["last_event"] = event
        if "phase" in record:
            phase = record["phase"]
            row["phase"] = phase if isinstance(phase, str) else None
        elif event in ("done", "lease_lost", "worker_exit"):
            row["phase"] = None  # the work unit's span closed with it
        t = record.get("t")
        if isinstance(t, (int, float)):
            last = row["last_seen_t"]
            if last is None or t > last:
                row["last_seen_t"] = float(t)
    if now is None:
        now = LeaseClock().now()
    for row in workers.values():
        last = row.pop("last_seen_t")
        row["last_seen_age_s"] = (max(0.0, now - last)
                                  if last is not None else None)
    return workers


# --------------------------------------------------------------------------- #
# Dispatch manifest: the one file a worker needs to join a run.
# --------------------------------------------------------------------------- #
def write_manifest(store_dir, space: DesignSpace, *, shards: Optional[int] = None,
                   ttl_s: float = DEFAULT_TTL_S, jobs: int = 1,
                   throttle_s: float = 0.0, mode: str = "shards",
                   strategy: Optional[Dict[str, object]] = None) -> Path:
    """Write ``<store>/dispatch.json`` describing the run (atomic replace).

    A worker pointed at the store directory reads everything it needs from
    this manifest: the space, the coordination ``mode`` (``"shards"`` --
    static fingerprint-hash shards, the default and the only pre-v3 mode --
    or ``"adaptive"`` -- workers lease proposal batches written by a
    strategy proposer, see :mod:`repro.dse.adaptive.protocol`), the shard
    count (shards mode), the strategy spec (adaptive mode), the lease TTL
    and the per-worker ``jobs``.  Re-preparing an existing dispatch is
    allowed only if the space, mode, shard count and strategy are unchanged
    (the work partition must stay stable across resumes); TTL/jobs/throttle
    may be retuned.
    """

    from repro.io.serialization import SCHEMA_VERSION

    if mode not in ("shards", "adaptive"):
        raise ValueError(f"unknown dispatch mode {mode!r}; "
                         f"expected 'shards' or 'adaptive'")
    if mode == "shards" and shards is None:
        raise ValueError("shards-mode dispatch needs a shard count")
    if mode == "adaptive" and strategy is None:
        raise ValueError("adaptive-mode dispatch needs a strategy spec")
    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)
    path = store_dir / MANIFEST_NAME
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "space": space.to_dict(),
        "mode": mode,
        "ttl_s": float(ttl_s),
        "jobs": int(jobs),
        "throttle_s": float(throttle_s),
    }
    if shards is not None:
        manifest["shards"] = int(shards)
    if strategy is not None:
        manifest["strategy"] = dict(strategy)
    if path.exists():
        existing = read_manifest(store_dir)
        if (existing.get("space") != manifest["space"]
                or existing.get("mode", "shards") != mode
                or existing.get("shards") != manifest.get("shards")
                or existing.get("strategy") != manifest.get("strategy")):
            raise ValueError(
                f"{path} already describes a different dispatch (space, "
                f"mode, shard count or strategy differs); use a fresh store "
                f"directory, or delete the manifest to redefine the run")
    tmp = store_dir / f".{MANIFEST_NAME}.{default_owner()}.tmp"
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def read_manifest(store_dir) -> Dict:
    """Load and validate the dispatch manifest of a store directory."""

    from repro.io.serialization import check_schema_version

    path = Path(store_dir) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(
            f"no dispatch manifest at {path}; run `repro dse dispatch` "
            f"(or Dispatcher.prepare) before starting workers")
    except json.JSONDecodeError as err:
        raise ValueError(f"corrupt dispatch manifest at {path}: {err}") from err
    check_schema_version(manifest, source=str(path))
    return manifest


# --------------------------------------------------------------------------- #
# Worker loop
# --------------------------------------------------------------------------- #
def run_worker(store_dir, *, owner: Optional[str] = None,
               jobs: Optional[int] = None, circuits=None,
               idle_wait_s: Optional[float] = None) -> Dict[str, object]:
    """Lease and evaluate work from ``store_dir`` until the run completes.

    The dispatch manifest decides the coordination mode: static shards
    (below) or, for ``mode: "adaptive"`` manifests, proposal batches written
    by a strategy proposer -- the worker then delegates to
    :func:`repro.dse.adaptive.protocol.run_adaptive_worker`, so every
    worker, local or remote, joins either kind of run through this one
    entry point.

    The shards-mode loop: claim a shard, open a *fresh* store view (so rows flushed by
    other workers -- including a dead worker's partial shard file -- replay
    instead of recomputing), evaluate the shard's points with a heartbeat
    after every persisted task group, mark the shard done, repeat.  When
    shards remain but none is claimable (all actively leased), the worker
    waits for a lease to expire rather than exiting and stranding a dead
    worker's shard.

    One :class:`~repro.toolflow.parallel.ProgramCache` is shared across all
    shards this worker runs, so gate variants split across shards still
    compile once per worker.

    Returns ``{"owner", "completed", "lost"}`` where ``lost`` lists shards
    aborted because the lease was reclaimed mid-evaluation.
    """

    from repro.toolflow.parallel import ProgramCache

    store_dir = Path(store_dir)
    manifest = read_manifest(store_dir)
    if manifest.get("mode", "shards") == "adaptive":
        from repro.dse.adaptive.protocol import run_adaptive_worker

        return run_adaptive_worker(store_dir, manifest=manifest, owner=owner,
                                   jobs=jobs, circuits=circuits,
                                   idle_wait_s=idle_wait_s)
    space = DesignSpace.from_dict(manifest["space"])
    ledger = ShardLedger.for_store(store_dir, manifest["shards"],
                                   ttl_s=manifest.get("ttl_s", DEFAULT_TTL_S))
    owner = owner or default_owner()
    jobs = int(manifest.get("jobs", 1)) if jobs is None else int(jobs)
    throttle_s = float(manifest.get("throttle_s", 0.0))
    if idle_wait_s is None:
        idle_wait_s = max(0.05, min(1.0, ledger.ttl_s / 4))

    telemetry = WorkerTelemetry(store_dir, owner, clock=ledger.clock)
    # Join the dispatcher's trace when it stamped one into our environment:
    # spans recorded here flush crash-safely to this worker's shard file,
    # which the dispatcher merges into one fleet trace after the run.
    trace_ctx = TraceContext.from_env()
    shard_writer = None
    if trace_ctx is not None:
        trace_ctx.arm()
        shard_writer = TraceShardWriter(store_dir, owner)
    telemetry.emit("worker_start", mode="shards", shards=ledger.count,
                   jobs=jobs, pid=os.getpid())
    cache = ProgramCache()
    completed: List[int] = []
    lost: List[int] = []
    seen_counters: Dict[str, int] = {}

    def counters_delta() -> Dict[str, int]:
        """Metrics-counter movement since the previous ``done`` event.

        Shipping the *delta* per completion (rather than the running total
        only at exit) is what lets the timeline attribute cache hits and
        misses to the bucket they happened in -- and summing the deltas
        reproduces the exit totals exactly, because counters are integers.
        """

        current = cache.metrics.counters()
        moved = {name: value - seen_counters.get(name, 0)
                 for name, value in current.items()
                 if value != seen_counters.get(name, 0)}
        seen_counters.clear()
        seen_counters.update(current)
        return moved

    while True:
        shard = ledger.next_claim(owner)
        if shard is None:
            if ledger.all_done():
                break
            # Unfinished shards are all actively leased; one of them may
            # belong to a dead worker, so wait for expiry instead of exiting.
            time.sleep(idle_wait_s)
            continue
        telemetry.emit("claim", work=shard.name, **_live_phase())
        shard_started = time.perf_counter()

        def heartbeat(index: int = shard.index, name: str = shard.name) -> None:
            if not ledger.renew(index, owner):
                raise LeaseLost(f"lease on shard {index}/{ledger.count} was "
                                f"reclaimed from {owner}")
            telemetry.emit("renew", work=name, **_live_phase())
            if throttle_s:
                time.sleep(throttle_s)

        # A fresh store load sees every row other workers have flushed so
        # far, so a reclaimed shard replays the dead worker's partial
        # results instead of recomputing them.  The writer file is
        # per-(shard, owner): after a takeover, an alive-but-slow previous
        # owner may still flush one in-flight group before its next
        # heartbeat notices the loss, and two processes appending to one
        # file over NFS can tear each other's rows.  Separate files close
        # that window; directory union and fingerprint dedup merge them
        # losslessly.
        writer = f"{shard.name}-{_filename_safe(owner)}"
        with ExperimentStore(store_dir, writer=writer) as store:
            runner = DSERunner(space, store=store, jobs=jobs, shard=shard,
                               cache=cache, circuits=circuits,
                               heartbeat=heartbeat)
            try:
                with span("dse.shard", shard=shard.name, owner=owner):
                    runner.evaluate_space()
            except LeaseLost:
                lost.append(shard.index)
                telemetry.emit("lease_lost", work=shard.name)
                if shard_writer is not None:
                    shard_writer.flush(current_tracer())
                continue
        ledger.release(shard.index, owner, done=True)
        completed.append(shard.index)
        telemetry.emit("done", work=shard.name,
                       points=runner.stats.get("evaluated", 0),
                       replayed=runner.stats.get("reused", 0),
                       wall_s=round(time.perf_counter() - shard_started, 6),
                       counters=counters_delta())
        if shard_writer is not None:
            # Flush after every completed shard: a SIGKILL later costs only
            # the spans since this point, and the shard file is always a
            # complete atomic snapshot (never a torn append).
            shard_writer.flush(current_tracer())
    telemetry.emit("worker_exit", completed=len(completed), lost=len(lost),
                   counters=cache.metrics.counters())
    if shard_writer is not None:
        shard_writer.flush(current_tracer())
    return {"owner": owner, "completed": completed, "lost": lost}


def worker_argv(store_dir) -> List[str]:
    """argv of one ``repro dse worker`` process for a store.

    The single source of truth for the worker launch command: local spawns
    (:func:`spawn_worker_process`) and the printed remote command lines
    both derive from it, so they cannot drift apart.
    """

    return [sys.executable, "-m", "repro", "dse", "worker",
            "--store", str(store_dir)]


def spawn_worker_process(store_dir) -> subprocess.Popen:
    """Start one local ``repro dse worker`` subprocess against a store.

    The worker reads everything else from the dispatch manifest, so the same
    spawn works for shard-mode and adaptive-mode runs.  ``repro`` is made
    importable through the subprocess environment.  When this process has
    tracing enabled, the trace context (root id + the currently-open span
    as the worker's cross-process parent) rides along in the same
    environment, so worker spans join the dispatcher's trace.
    """

    env = os.environ.copy()
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not existing
                         else package_root + os.pathsep + existing)
    tracer = current_tracer()
    if tracer is not None:
        TraceContext.from_tracer(tracer,
                                 parent_ref=current_span_ref()).stamp(env)
    return subprocess.Popen(worker_argv(store_dir), env=env)


# --------------------------------------------------------------------------- #
# Progress / ETA
# --------------------------------------------------------------------------- #
def estimate_eta_s(pending: int, timings: Sequence[float],
                   active_workers: int) -> Optional[float]:
    """Remaining wall seconds from stored per-point timings.

    ``pending`` points at the mean recorded ``wall_s`` per point, divided by
    the number of workers actively evaluating.  Returns ``0.0`` when nothing
    is pending and ``None`` when no row has recorded a timing yet (rows
    written before schema v2 carry none -- unknown is not zero).
    """

    if pending <= 0:
        return 0.0
    if not timings:
        return None
    mean = sum(timings) / len(timings)
    return pending * mean / max(1, active_workers)


def format_eta(eta_s: Optional[float]) -> str:
    """Human-readable ETA (``"unknown"`` when no timings exist yet)."""

    if eta_s is None:
        return "unknown (no per-point timings recorded yet)"
    if eta_s >= 120.0:
        return f"{eta_s / 60.0:.1f} min"
    return f"{eta_s:.1f} s"


# --------------------------------------------------------------------------- #
# Dispatcher
# --------------------------------------------------------------------------- #
class Dispatcher:
    """Partition a space into leased shards and drive workers to completion.

    Parameters
    ----------
    space:
        The design space to evaluate (exhaustive grid; adaptive strategies
        cannot shard -- see :meth:`DSERunner.run`).
    store_dir:
        Experiment-store directory shared by all workers.  Should be
        dedicated to this study: progress accounting assumes every row in
        it belongs to ``space``.
    workers:
        Local worker processes to run (ignored by :meth:`command_lines`,
        which targets remote launch).
    shards:
        Lease granularity; defaults to ``4 * workers`` so workers stay busy
        through the tail and a worker death forfeits at most one shard of
        fresh progress.
    ttl_s:
        Lease time-to-live; must exceed the slowest task group's wall time
        -- one compile plus all its folded gate-variant simulations --
        since heartbeats fire once per completed task group.
    jobs:
        Process-pool width *inside* each worker (total parallelism is
        ``workers x jobs``).
    throttle_s:
        Optional sleep per heartbeat inside workers -- a load limiter for
        shared machines, also used by the CI smoke test to widen the
        kill window.  Default 0.
    respawn / max_respawns:
        Replace workers that exited non-zero (up to ``max_respawns``,
        default ``workers``) while unfinished shards remain.
    """

    def __init__(self, space: DesignSpace, store_dir, *, workers: int = 2,
                 shards: Optional[int] = None, ttl_s: float = DEFAULT_TTL_S,
                 jobs: int = 1, throttle_s: float = 0.0, poll_s: float = 0.5,
                 respawn: bool = True, max_respawns: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.space = space
        self.store_dir = Path(store_dir)
        self.workers = int(workers)
        self.shards = int(shards) if shards is not None else 4 * self.workers
        if self.shards < 1:
            raise ValueError("need at least one shard")
        self.ttl_s = float(ttl_s)
        self.jobs = int(jobs)
        self.throttle_s = float(throttle_s)
        self.poll_s = float(poll_s)
        self.respawn = respawn
        self.max_respawns = (self.workers if max_respawns is None
                             else int(max_respawns))
        self.respawned = 0
        self.ledger = ShardLedger.for_store(self.store_dir, self.shards,
                                            ttl_s=self.ttl_s)
        self._procs: List[subprocess.Popen] = []
        self._progress_store: Optional[ExperimentStore] = None

    # ------------------------------------------------------------------ #
    def prepare(self) -> Path:
        """Write the dispatch manifest; workers can join once this returns."""

        return write_manifest(self.store_dir, self.space, shards=self.shards,
                              ttl_s=self.ttl_s, jobs=self.jobs,
                              throttle_s=self.throttle_s)

    def worker_command(self) -> List[str]:
        """argv for one local worker subprocess."""

        return worker_argv(self.store_dir)

    def command_lines(self) -> List[str]:
        """Shell commands for launching the workers on remote machines.

        Every machine that mounts the store directory runs the same
        command; workers coordinate purely through the ledger, so any
        number may join or die at any time.  Derived from
        :func:`worker_argv` with a portable ``python`` in place of this
        machine's interpreter path.
        """

        argv = ["python"] + worker_argv(self.store_dir)[1:]
        command = " ".join(shlex.quote(arg) for arg in argv)
        return [command] * self.workers

    def spawn_worker(self) -> subprocess.Popen:
        """Start one local worker subprocess (repro importable via env)."""

        return spawn_worker_process(self.store_dir)

    # ------------------------------------------------------------------ #
    def progress(self) -> Dict[str, object]:
        """One snapshot: point counts, shard states and the wall_s-driven ETA.

        The store view is kept open across snapshots and refreshed with the
        incremental :meth:`~repro.dse.store.ExperimentStore.reload`, so a
        progress tick costs O(rows appended since the last tick) -- not a
        full re-parse of the directory.
        """

        if self._progress_store is None:
            self._progress_store = ExperimentStore(self.store_dir)
        else:
            self._progress_store.reload()
        store = self._progress_store
        counts = self.ledger.status_counts()
        total = self.space.size
        done_points = len(store)
        pending = max(0, total - done_points)
        eta_s = estimate_eta_s(pending, store.wall_timings(),
                               max(1, counts["active"]))
        return {
            "points_done": done_points,
            "points_total": total,
            "points_pending": pending,
            "shards": counts,
            "eta_s": eta_s,
            "workers": telemetry_summary(self.store_dir),
        }

    def _alive(self) -> List[subprocess.Popen]:
        return [proc for proc in self._procs if proc.poll() is None]

    def _reap_and_respawn(self) -> None:
        """Replace workers that died abnormally, within the respawn budget."""

        for proc in list(self._procs):
            if proc.poll() is None or proc.returncode == 0:
                continue
            self._procs.remove(proc)
            if (self.respawn and self.respawned < self.max_respawns
                    and not self.ledger.all_done()):
                self.respawned += 1
                self._procs.append(self.spawn_worker())

    def run(self, *, timeout_s: Optional[float] = None,
            on_progress: Optional[Callable[[Dict[str, object]], None]] = None,
            progress_interval_s: float = 2.0) -> Dict[str, object]:
        """Prepare, spawn local workers, and watch until every shard is done.

        Dead workers' shards are reclaimed by the survivors through lease
        expiry; workers that *exited* abnormally are additionally respawned
        (the reclaim still happens through the ledger -- respawn just keeps
        N workers pulling).  Returns a summary dictionary; ``complete`` is
        False when the run timed out or every worker stopped with shards
        unfinished and the respawn budget exhausted.
        """

        with span("dse.dispatch", workers=self.workers,
                  shards=self.shards) as trace:
            summary = self._run(timeout_s=timeout_s, on_progress=on_progress,
                                progress_interval_s=progress_interval_s)
            trace.set(complete=summary["complete"], points=summary["points"],
                      respawned=summary["respawned"])
        tracer = current_tracer()
        if tracer is not None:
            # The workers joined this trace (spawn_worker_process stamped
            # the context) and flushed their spans to shard files; fold
            # them in so the ordinary --trace flush writes one fleet trace.
            summary["trace"] = adopt_shards(tracer, self.store_dir)
        return summary

    def _run(self, *, timeout_s: Optional[float],
             on_progress: Optional[Callable[[Dict[str, object]], None]],
             progress_interval_s: float) -> Dict[str, object]:
        self.prepare()
        started = time.monotonic()
        self._procs = [self.spawn_worker() for _ in range(self.workers)]
        last_report = -float("inf")
        complete = False
        try:
            while True:
                if self.ledger.all_done():
                    complete = True
                    break
                if timeout_s is not None and time.monotonic() - started > timeout_s:
                    break
                self._reap_and_respawn()
                if not self._alive():
                    # Every worker exited (cleanly or beyond the respawn
                    # budget) with shards unfinished: nobody is left to
                    # reclaim them.
                    complete = self.ledger.all_done()
                    break
                if (on_progress is not None
                        and time.monotonic() - last_report >= progress_interval_s):
                    last_report = time.monotonic()
                    on_progress(self.progress())
                time.sleep(self.poll_s)
        finally:
            # Workers exit by themselves once every shard is done; anything
            # still running after a grace period (timeout/abort paths) is
            # terminated so the dispatcher never leaks processes.
            deadline = time.monotonic() + max(5.0, 4 * self.poll_s)
            for proc in self._procs:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
        snapshot = self.progress()
        if on_progress is not None:
            on_progress(snapshot)
        return {
            "complete": complete,
            "elapsed_s": time.monotonic() - started,
            "respawned": self.respawned,
            "points": snapshot["points_done"],
            "points_total": snapshot["points_total"],
            "shards": snapshot["shards"],
        }

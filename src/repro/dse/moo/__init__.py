"""Multi-objective design-space exploration (Pareto-frontier search).

The paper's central result is a trade-off -- gate fidelity against
shuttling/runtime overhead -- and Figures 6-8 read their answers off that
frontier.  This package searches the frontier *directly* instead of
recovering it from exhaustive sweeps:

* :mod:`~repro.dse.moo.objectives` -- named objective vectors over records
  (fidelity, runtime, communication fraction, shuttles per MS gate), with
  higher-is-better canonicalisation and per-objective normalisation.
* :mod:`~repro.dse.moo.archive` -- the incremental non-dominated archive:
  n-D dominance, deterministic tie-breaking, insertion-order invariance.
* :mod:`~repro.dse.moo.hypervolume` -- exact hypervolume (2-D sweep,
  WFG-style recursion for 3-D and above), seed-free and bit-deterministic.
* :mod:`~repro.dse.moo.propose` -- the EHVI proposer (one PR 4 surrogate
  per objective, seeded Monte-Carlo expected hypervolume improvement) and
  the ParEGO baseline (seeded random-weight Chebyshev scalarization); both
  run unchanged through ``DSERunner``, ``--jobs N`` and the distributed
  propose/evaluate ledger.
* :mod:`~repro.dse.moo.frontier` -- record-level frontiers, full-cloud
  report rows with a ``dominated`` column, and the hypervolume indicator
  behind ``dse pareto --hypervolume``.

Entry points: ``repro dse run|dispatch --strategy ehvi|parego --objectives
fidelity,runtime`` and ``repro dse pareto --objectives ... --hypervolume``.
"""

from repro.dse.moo.archive import ParetoArchive, brute_force_frontier, dominates
from repro.dse.moo.frontier import cloud_rows, record_frontier, records_hypervolume
from repro.dse.moo.hypervolume import (
    REFERENCE_OFFSET,
    hypervolume,
    hypervolume_improvement,
    normalised_hypervolume,
)
from repro.dse.moo.objectives import (
    normalise,
    objective_vector,
    parse_objectives,
    vector_bounds,
)
from repro.dse.moo.propose import (
    DEFAULT_OBJECTIVES,
    MOO_PROPOSER_NAMES,
    EHVIProposer,
    ParEGOProposer,
    default_moo_max_evals,
    make_moo_proposer,
)

__all__ = [
    "DEFAULT_OBJECTIVES",
    "MOO_PROPOSER_NAMES",
    "REFERENCE_OFFSET",
    "EHVIProposer",
    "ParEGOProposer",
    "ParetoArchive",
    "brute_force_frontier",
    "cloud_rows",
    "default_moo_max_evals",
    "dominates",
    "hypervolume",
    "hypervolume_improvement",
    "make_moo_proposer",
    "normalise",
    "normalised_hypervolume",
    "objective_vector",
    "parse_objectives",
    "record_frontier",
    "records_hypervolume",
    "vector_bounds",
]

"""Incremental non-dominated archives with deterministic tie-breaking.

The archive is the multi-objective analogue of "best point so far": the set
of evaluated candidates no other evaluated candidate dominates.  Insertion
is incremental (each new vector evicts the points it dominates and is
refused if something present dominates it), ``O(archive)`` per insert, and
the resulting *set* is insertion-order invariant -- a property the tests
pin, because it is what makes a replayed run (store rows ingested in
whatever order the ledger produced them) reconstruct the same frontier.

Tie-breaking is deterministic: a vector exactly equal to an archived one is
refused (the earlier key keeps the slot), so the same evaluations always
yield the same archive regardless of duplicates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (canonical higher-is-better).

    ``a`` dominates ``b`` when it is at least as good in every objective
    and strictly better in at least one.  Equal vectors dominate neither
    way.
    """

    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    better = False
    for ai, bi in zip(a, b):
        if ai < bi:
            return False
        if ai > bi:
            better = True
    return better


def brute_force_frontier(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated vectors, by pairwise comparison.

    The reference implementation the archive is property-tested against:
    ``O(n^2)``, first index wins among exact duplicates.
    """

    frontier: List[int] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if i == j:
                continue
            if dominates(other, candidate) or \
                    (tuple(other) == tuple(candidate) and j < i):
                dominated = True
                break
        if not dominated:
            frontier.append(i)
    return frontier


class ParetoArchive:
    """Incremental non-dominated set keyed by stable candidate keys."""

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError("archive dimension must be positive")
        self.dim = dim
        self._vectors: Dict[object, Tuple[float, ...]] = {}

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, key) -> bool:
        return key in self._vectors

    def add(self, key, vector: Sequence[float]) -> bool:
        """Offer one evaluated point; returns True when it joins the archive.

        Points dominated by (or exactly equal to) an archived vector are
        refused; an accepted point evicts every archived vector it
        dominates.  Re-offering an archived key updates its vector through
        the same rules (stale entry evicted first).
        """

        vector = tuple(float(v) for v in vector)
        if len(vector) != self.dim:
            raise ValueError(f"expected {self.dim}-D vector, got {len(vector)}-D")
        self._vectors.pop(key, None)
        for other in self._vectors.values():
            if dominates(other, vector) or other == vector:
                return False
        evicted = [other_key for other_key, other in self._vectors.items()
                   if dominates(vector, other)]
        for other_key in evicted:
            del self._vectors[other_key]
        self._vectors[key] = vector
        return True

    def update(self, items: Iterable[Tuple[object, Sequence[float]]]) -> int:
        """Offer many ``(key, vector)`` pairs; returns how many were accepted."""

        return sum(1 for key, vector in items if self.add(key, vector))

    def keys(self) -> List[object]:
        """Archived keys, sorted (the deterministic export order)."""

        return sorted(self._vectors)

    def vectors(self) -> List[Tuple[float, ...]]:
        """Archived vectors in :meth:`keys` order."""

        return [self._vectors[key] for key in self.keys()]

    def items(self) -> List[Tuple[object, Tuple[float, ...]]]:
        """``(key, vector)`` pairs in :meth:`keys` order."""

        return [(key, self._vectors[key]) for key in self.keys()]

    def get(self, key) -> Tuple[float, ...]:
        return self._vectors[key]

    def would_accept(self, vector: Sequence[float]) -> bool:
        """True when :meth:`add` would admit ``vector`` (no state change)."""

        vector = tuple(float(v) for v in vector)
        return not any(dominates(other, vector) or other == vector
                       for other in self._vectors.values())

"""Record-level frontier views: n-D frontiers, clouds and hypervolume.

The archive layer works on (key, vector) pairs; this module applies it to
the record objects the stores and sweep drivers produce, giving the CLI and
reports their multi-objective answers:

* :func:`record_frontier` -- the non-dominated records of a collection
  under any named objective set (the n-D generalisation of
  :func:`repro.dse.pareto.pareto_frontier`).
* :func:`cloud_rows` -- *every* record as a flat report row with a
  ``dominated`` column and a stable n-D ordering, so downstream tooling can
  plot the full cloud and highlight the frontier without re-deriving
  dominance.
* :func:`records_hypervolume` -- the normalised hypervolume indicator of a
  record collection (what ``dse pareto --hypervolume`` prints).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.dse.moo.archive import ParetoArchive
from repro.dse.moo.hypervolume import normalised_hypervolume
from repro.dse.moo.objectives import objective_vector, vector_bounds


def _indexed_vectors(records: List, objectives: Sequence[str]):
    return [(index, objective_vector(record, objectives))
            for index, record in enumerate(records)]


def record_frontier(records, objectives: Sequence[str]) -> List:
    """Records not dominated under ``objectives``, best-first.

    Ordering is the stable n-D order: objective vectors descending
    lexicographically (so the best first-objective value leads), original
    position breaking exact ties -- the same record list always yields the
    same frontier in the same order.
    """

    records = list(records)
    archive = ParetoArchive(len(tuple(objectives)))
    vectors = _indexed_vectors(records, objectives)
    archive.update(vectors)
    kept = set(archive.keys())
    ordered = sorted((vector, index) for index, vector in vectors
                     if index in kept)
    return [records[index] for vector, index in reversed(ordered)]


def cloud_rows(records, objectives: Sequence[str]) -> List[Dict[str, object]]:
    """Every record as a report row with a ``dominated`` column.

    Rows are grouped by application (sorted) and ordered within each
    application by objective vector, best first (descending lexicographic,
    original position on exact ties) -- stable for any input order of the
    same records, so exported clouds diff cleanly.  Each row carries its
    canonical objective values (``objective_<name>`` columns, higher is
    better) next to the raw metrics.
    """

    records = list(records)
    by_app: Dict[str, List[int]] = {}
    for index, record in enumerate(records):
        by_app.setdefault(record.application, []).append(index)
    rows: List[Dict[str, object]] = []
    for app in sorted(by_app):
        indices = by_app[app]
        app_records = [records[index] for index in indices]
        archive = ParetoArchive(len(tuple(objectives)))
        vectors = _indexed_vectors(app_records, objectives)
        archive.update(vectors)
        kept = set(archive.keys())
        # Vector descending, original position ascending on exact ties --
        # so a frontier row always precedes a tied dominated duplicate.
        ordered = sorted(((vector, position) for position, vector in vectors),
                         key=lambda item: ([-value for value in item[0]],
                                           item[1]))
        for vector, position in ordered:
            row = app_records[position].as_row()
            for name, value in zip(objectives, vector):
                row[f"objective_{name}"] = value
            row["dominated"] = position not in kept
            rows.append(row)
    return rows


def records_hypervolume(records, objectives: Sequence[str]) -> float:
    """Normalised hypervolume of the records' frontier (0 when empty).

    Bounds come from the *whole* collection (frontier and dominated points
    alike), so the indicator is comparable across strategies exploring the
    same space: more frontier coverage means strictly more hypervolume.
    """

    records = list(records)
    if not records:
        return 0.0
    vectors = [objective_vector(record, objectives) for record in records]
    archive = ParetoArchive(len(tuple(objectives)))
    archive.update(list(enumerate(vectors)))
    return normalised_hypervolume(archive.vectors(), vector_bounds(vectors))

"""Exact hypervolume computation (2-D sweep, WFG recursion above).

The hypervolume indicator of a point set, against a reference point ``ref``
with every objective canonicalised higher-is-better, is the measure of the
union of boxes ``[ref, p]`` -- the region the set dominates.  It is the
scalar the EHVI acquisition maximises and the number ``dse pareto
--hypervolume`` reports.

* 2-D: a single sorted sweep, ``O(n log n)``.
* 3-D and above: the WFG-style inclusion-exclusion recursion (each point's
  exclusive contribution = its inclusive box minus the hypervolume of the
  remaining points clipped into it), with the 2-D sweep as the base case.
  Exact for any dimension; fast for the 2-D/3-D frontiers the paper's
  studies use.

Everything is pure float arithmetic over sorted inputs -- no randomness --
so results are bit-deterministic for a given point set, independent of the
order the points were discovered in.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dse.moo.archive import brute_force_frontier

#: Reference-point offset used by :func:`normalised_hypervolume`: an exact
#: binary fraction so the normalised indicator is bit-stable everywhere.
REFERENCE_OFFSET = 1.0 / 64.0


def hypervolume(points: Sequence[Sequence[float]],
                reference: Sequence[float]) -> float:
    """Hypervolume dominated by ``points`` above ``reference`` (maximising).

    Points not strictly above the reference in every objective contribute
    nothing and are dropped; dominated and duplicate points are redundant
    by construction (the union of boxes absorbs them).
    """

    reference = tuple(float(r) for r in reference)
    dim = len(reference)
    if dim < 2:
        raise ValueError("hypervolume needs at least two objectives")
    cleaned: List[Tuple[float, ...]] = []
    for point in points:
        point = tuple(float(v) for v in point)
        if len(point) != dim:
            raise ValueError(f"point/reference dimension mismatch: "
                             f"{len(point)} vs {dim}")
        if all(v > r for v, r in zip(point, reference)):
            cleaned.append(point)
    if not cleaned:
        return 0.0
    frontier = [cleaned[i] for i in brute_force_frontier(cleaned)]
    return _recurse(sorted(frontier, reverse=True), reference)


def _sweep_2d(points: List[Tuple[float, ...]],
              reference: Tuple[float, ...]) -> float:
    """2-D base case over points sorted by the first objective, descending."""

    total = 0.0
    best_y = reference[1]
    for x, y in points:
        if y > best_y:
            total += (x - reference[0]) * (y - best_y)
            best_y = y
    return total


def _recurse(points: List[Tuple[float, ...]],
             reference: Tuple[float, ...]) -> float:
    """WFG exclusive-contribution recursion (points pre-sorted descending)."""

    if not points:
        return 0.0
    if len(reference) == 2:
        return _sweep_2d(points, reference)
    total = 0.0
    for index, point in enumerate(points):
        inclusive = 1.0
        for value, ref in zip(point, reference):
            inclusive *= value - ref
        # Clip every later point into this one's box; what they still cover
        # inside it has been (or will be) counted once, so subtract it.
        limited = []
        for other in points[index + 1:]:
            clipped = tuple(min(o, p) for o, p in zip(other, point))
            if all(v > r for v, r in zip(clipped, reference)):
                limited.append(clipped)
        if limited:
            frontier = [limited[i] for i in brute_force_frontier(limited)]
            total += inclusive - _recurse(sorted(frontier, reverse=True),
                                          reference)
        else:
            total += inclusive
    return total


def hypervolume_improvement(vectors: Sequence[Sequence[float]],
                            candidate: Sequence[float],
                            reference: Sequence[float]) -> float:
    """Hypervolume gained by adding ``candidate`` to ``vectors`` (>= 0).

    Computed as the candidate's *exclusive* contribution -- its inclusive
    box minus what the existing vectors already cover inside it -- so the
    existing set is clipped, never re-filtered: O(|vectors|^2) on the
    (usually tiny) clipped set instead of two full hypervolume runs.  The
    acquisition loop calls this once per candidate sample against a fixed
    archive, which is exactly the shape this avoids re-paying for.
    """

    reference = tuple(float(r) for r in reference)
    candidate = tuple(float(v) for v in candidate)
    if len(candidate) != len(reference):
        raise ValueError(f"point/reference dimension mismatch: "
                         f"{len(candidate)} vs {len(reference)}")
    if not all(v > r for v, r in zip(candidate, reference)):
        return 0.0
    inclusive = 1.0
    for value, ref in zip(candidate, reference):
        inclusive *= value - ref
    limited = []
    for other in vectors:
        clipped = tuple(min(float(o), p) for o, p in zip(other, candidate))
        if all(v > r for v, r in zip(clipped, reference)):
            limited.append(clipped)
    if not limited:
        return inclusive
    frontier = [limited[i] for i in brute_force_frontier(limited)]
    covered = _recurse(sorted(frontier, reverse=True), reference)
    return max(0.0, inclusive - covered)


def normalised_hypervolume(vectors: Sequence[Sequence[float]],
                           bounds: Sequence[Tuple[float, float]]) -> float:
    """The hypervolume of min-max normalised vectors in the unit box.

    The reference point sits :data:`REFERENCE_OFFSET` below the box, so the
    per-objective extreme points (which normalise to a zero coordinate)
    still contribute a sliver instead of vanishing -- the indicator then
    strictly improves whenever the frontier gains any new point.
    """

    from repro.dse.moo.objectives import normalise

    if not vectors:
        return 0.0
    dim = len(bounds)
    reference = (-REFERENCE_OFFSET,) * dim
    return hypervolume([normalise(v, bounds) for v in vectors], reference)

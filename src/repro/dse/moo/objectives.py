"""Named objective vectors over experiment records.

The single-objective layer (:func:`repro.dse.pareto.objective_value`) maps a
record to one higher-is-better scalar.  Multi-objective search needs the
same canonicalisation over a *tuple* of named objectives -- fidelity,
runtime, and the derived metrics of :mod:`repro.sim.metrics` that store
rows already persist (communication fraction, shuttles per MS gate) -- plus
a per-objective normalisation so acquisition functions and hypervolumes
compare unlike units on one scale.

Every helper here is pure and deterministic: the same records in the same
order always produce the same vectors, bounds and normalised values, which
is what lets a killed multi-objective run replay its archive from the
store alone.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.dse.pareto import OBJECTIVES, objective_value


def parse_objectives(names) -> Tuple[str, ...]:
    """Validate a CLI/strategy objective list (order-preserving).

    Accepts an iterable of names or one comma-separated string.  At least
    two distinct objectives are required -- one objective is what the
    scalar strategies already do -- and every name must be a member of
    :data:`~repro.dse.pareto.OBJECTIVES` (the error lists the valid set).
    """

    if isinstance(names, str):
        names = tuple(item.strip() for item in names.split(",") if item.strip())
    names = tuple(names)
    for name in names:
        if name not in OBJECTIVES:
            raise ValueError(f"unknown objective {name!r}; "
                             f"expected one of {OBJECTIVES}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives in {names}")
    if len(names) < 2:
        raise ValueError("multi-objective search needs at least two "
                         f"objectives (of {OBJECTIVES}); use --metric for "
                         "single-objective runs")
    return names


def objective_vector(record, objectives: Sequence[str]) -> Tuple[float, ...]:
    """The record's canonical (higher-is-better) values, objective order."""

    return tuple(objective_value(record, name) for name in objectives)


def vector_bounds(vectors: Iterable[Sequence[float]]
                  ) -> Tuple[Tuple[float, float], ...]:
    """Per-objective ``(low, high)`` over a non-empty vector collection."""

    vectors = list(vectors)
    if not vectors:
        raise ValueError("cannot bound an empty vector collection")
    dims = len(vectors[0])
    return tuple((min(v[d] for v in vectors), max(v[d] for v in vectors))
                 for d in range(dims))


def normalise(vector: Sequence[float],
              bounds: Sequence[Tuple[float, float]]) -> Tuple[float, ...]:
    """Min-max normalise one vector to ``[0, 1]`` per objective.

    A degenerate objective (every observation equal) maps to 0.5 -- flat,
    so it neither dominates nor contributes hypervolume, but stays inside
    the unit box.  Values outside the bounds (surrogate extrapolations)
    clip to the box so hypervolume terms stay non-negative.
    """

    out: List[float] = []
    for value, (low, high) in zip(vector, bounds):
        if high > low:
            out.append(min(1.0, max(0.0, (value - low) / (high - low))))
        else:
            out.append(0.5)
    return tuple(out)

"""Multi-objective batch proposers: EHVI and Chebyshev scalarization.

Both proposers speak the exact propose/evaluate contract of
:mod:`repro.dse.adaptive.propose` -- ``next_batch()`` / ``ingest()`` /
``best()`` / ``spec()`` -- so they run unchanged through
:class:`~repro.dse.runner.DSERunner`, ``--jobs N`` worker pools and the
distributed proposal ledger.  The one extension is that ``ingest`` receives
*objective vectors* (tuples produced by
:func:`~repro.dse.moo.objectives.objective_vector`) instead of scalars, and
a :meth:`frontier` method exposes the current Pareto archive.

* :class:`EHVIProposer` (``--strategy ehvi``) -- one PR 4 surrogate per
  objective.  A candidate's acquisition score is its expected hypervolume
  improvement: the mean, over a small seeded Gaussian sample of the
  surrogates' predictive distributions, of the hypervolume the sampled
  vector would add to the current normalised archive.
* :class:`ParEGOProposer` (``--strategy parego``) -- the cheap baseline:
  each batch draws a seeded random weight vector, collapses the observed
  vectors through the augmented Chebyshev scalarization, fits one fresh
  surrogate on the scalar landscape and proposes the top
  expected-improvement candidates.

Proposals are a pure function of (space, objectives, seed, ingested
vectors): evaluation is deterministic, every random draw comes from a
``random.Random`` seeded by (seed, batch number), candidates are visited in
sorted key order, and ties break towards the lower key.  Any executor --
serial, ``--jobs N``, or a worker fleet with kills on either side --
therefore reproduces the identical proposal sequence and archive, and a
restarted proposer replays its history from the store rows alone (the
schema-v3 provenance rows record which strategy/seed asked for each point).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.adaptive.model import PointEncoder, make_surrogate
from repro.dse.adaptive.propose import ProposalBatch, expected_improvement
from repro.dse.moo.archive import ParetoArchive
from repro.dse.moo.hypervolume import (
    REFERENCE_OFFSET,
    hypervolume_improvement,
    normalised_hypervolume,
)
from repro.dse.moo.objectives import (
    normalise,
    objective_vector,
    parse_objectives,
    vector_bounds,
)
from repro.dse.space import DesignPoint, DesignSpace

#: Strategy names implemented here (mirrored in STRATEGY_NAMES).
MOO_PROPOSER_NAMES = ("ehvi", "parego")

#: Default objective pair: the paper's headline trade-off (Figures 6-8).
DEFAULT_OBJECTIVES = ("fidelity", "runtime")


def default_moo_max_evals(space_size: int, batch_size: int = 4) -> int:
    """The multi-objective budget when none is given: half the grid.

    Frontier recovery needs more evaluations than best-point search (a
    frontier has many members), so the default is half the grid rather
    than the scalar strategies' quarter -- floored at two batches, capped
    at the grid itself.  Shared with the progress tooling so budget
    estimates never construct a proposer.
    """

    return min(max(2 * batch_size, space_size // 2), space_size)


class _MOOProposer:
    """Shared state machine of the multi-objective proposers.

    Owns candidate enumeration, the seeded random initial batch, budget
    accounting, vector bookkeeping and the Pareto archive; subclasses
    implement :meth:`_scores` (acquisition values for the unproposed
    candidates once observations exist).
    """

    strategy_name = "moo"

    def __init__(self, space: DesignSpace, *, seed: int = 0,
                 objectives=DEFAULT_OBJECTIVES, batch_size: int = 4,
                 max_evals: Optional[int] = None,
                 surrogate: str = "rff") -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be a positive integer")
        self.space = space
        self.seed = seed
        self.objectives = parse_objectives(objectives)
        #: Scalar objective the generic tooling reports on (`best()` and the
        #: proposer meta): the first named objective.
        self.metric = self.objectives[0]
        self.batch_size = batch_size
        self.candidates: List[DesignPoint] = list(space.points())
        if max_evals is None:
            max_evals = default_moo_max_evals(space.size, batch_size)
        self.max_evals = min(max_evals, len(self.candidates))
        if self.max_evals < 1:
            raise ValueError("max_evals must allow at least one evaluation")
        self.surrogate_name = surrogate
        self._encoder = PointEncoder(space)
        self._features = [self._encoder.encode(point)
                          for point in self.candidates]
        self._rng = random.Random(seed)
        self._observed: Dict[int, Tuple[float, ...]] = {}
        self._archive = ParetoArchive(len(self.objectives))
        self._proposed: set = set()
        self._batches = 0

    # ------------------------------------------------------------------ #
    def spec(self) -> Dict[str, object]:
        """JSON-safe constructor spec (the manifest's ``strategy`` entry)."""

        return {
            "name": self.strategy_name,
            "seed": self.seed,
            "objectives": list(self.objectives),
            "batch_size": self.batch_size,
            "max_evals": self.max_evals,
            "surrogate": self.surrogate_name,
        }

    @property
    def evaluations(self) -> int:
        return len(self._proposed)

    def next_batch(self) -> Optional[ProposalBatch]:
        """The next batch to evaluate, or ``None`` when the budget is spent."""

        remaining = self.max_evals - len(self._proposed)
        unproposed = [index for index in range(len(self.candidates))
                      if index not in self._proposed]
        if remaining <= 0 or not unproposed:
            return None
        count = min(self.batch_size, remaining, len(unproposed))
        if not self._observed:
            # Seeded random initialisation; sorted so the batch runs in
            # enumeration order (deterministic and gate-fold friendly).
            keys = sorted(self._rng.sample(unproposed, count))
        else:
            scored = self._scores(unproposed)
            ranked = sorted(range(len(unproposed)),
                            key=lambda i: (-scored[i], unproposed[i]))
            keys = sorted(unproposed[i] for i in ranked[:count])
        self._proposed.update(keys)
        self._batches += 1
        return ProposalBatch(
            number=self._batches,
            keys=tuple(keys),
            points=tuple(self.candidates[key] for key in keys),
        )

    def _scores(self, unproposed: Sequence[int]) -> List[float]:
        raise NotImplementedError  # pragma: no cover - interface

    def ingest(self, batch: ProposalBatch,
               values: Sequence[Sequence[float]]) -> None:
        """Fold one evaluated batch back in (objective vectors, batch order)."""

        if len(values) != len(batch.keys):
            raise ValueError(f"batch {batch.number} has {len(batch.keys)} "
                             f"points but {len(values)} values")
        for key, vector in zip(batch.keys, values):
            vector = tuple(float(v) for v in vector)
            if len(vector) != len(self.objectives):
                raise ValueError(
                    f"batch {batch.number}: expected "
                    f"{len(self.objectives)}-D vectors "
                    f"({', '.join(self.objectives)}), got {len(vector)}-D")
            self._observed[key] = vector
            self._archive.add(key, vector)
            self._observe(key, vector)

    def _observe(self, key: int, vector: Tuple[float, ...]) -> None:
        """Model update hook; the archive/bookkeeping is already done."""

    # ------------------------------------------------------------------ #
    def best(self) -> Optional[Tuple[int, float]]:
        """``(candidate index, value)`` best under the *first* objective.

        The scalar view the generic tooling (complete marker, ``dse
        dispatch`` summary) reports; the full multi-objective answer is
        :meth:`frontier`.  Ties break to the earliest key.
        """

        if not self._observed:
            return None
        best_key = min(self._observed,
                       key=lambda key: (-self._observed[key][0], key))
        return best_key, self._observed[best_key][0]

    def frontier(self) -> List[Tuple[int, Tuple[float, ...]]]:
        """The archive: non-dominated ``(key, vector)`` pairs, key order."""

        return self._archive.items()

    def hypervolume(self) -> float:
        """Normalised hypervolume of the observed set (0 when empty)."""

        if not self._observed:
            return 0.0
        bounds = vector_bounds(self._observed.values())
        return normalised_hypervolume(self._archive.vectors(), bounds)

    def trace_entry(self, batch: ProposalBatch) -> Dict[str, object]:
        """A report row describing one ingested batch."""

        return {"batch": batch.number, "proposed": len(batch.keys),
                "evaluations": self.evaluations,
                "frontier": len(self._archive),
                "hypervolume": self.hypervolume()}


class EHVIProposer(_MOOProposer):
    """Expected-hypervolume-improvement batch proposer.

    One surrogate per objective (seeded independently, so ``rff`` feature
    maps differ across objectives) learns the raw objective landscape.
    Scoring normalises predictions into the observed min-max box and takes
    a seeded ``samples``-draw Monte-Carlo estimate of the hypervolume each
    candidate would add to the archive.  The sample draw is a pure function
    of (seed, batch number, candidate visit order), so the acquisition --
    and with it the whole proposal sequence -- is deterministic.
    """

    strategy_name = "ehvi"

    def __init__(self, space: DesignSpace, *, seed: int = 0,
                 objectives=DEFAULT_OBJECTIVES, batch_size: int = 4,
                 max_evals: Optional[int] = None, surrogate: str = "rff",
                 samples: int = 16) -> None:
        super().__init__(space, seed=seed, objectives=objectives,
                         batch_size=batch_size, max_evals=max_evals,
                         surrogate=surrogate)
        if samples < 1:
            raise ValueError("samples must be a positive integer")
        self.samples = samples
        self._surrogates = [
            make_surrogate(surrogate, self._encoder.dim,
                           seed=seed * 131 + index)
            for index in range(len(self.objectives))
        ]

    def spec(self) -> Dict[str, object]:
        payload = super().spec()
        payload["samples"] = self.samples
        return payload

    def _observe(self, key: int, vector: Tuple[float, ...]) -> None:
        features = self._features[key]
        for surrogate, value in zip(self._surrogates, vector):
            surrogate.observe(features, value)

    def _scores(self, unproposed: Sequence[int]) -> List[float]:
        bounds = vector_bounds(self._observed.values())
        archive = [normalise(vector, bounds)
                   for vector in self._archive.vectors()]
        reference = (-REFERENCE_OFFSET,) * len(self.objectives)
        rng = random.Random(self.seed * 65537 + self._batches * 257)
        scores = []
        for index in unproposed:  # ascending by construction (next_batch)
            predictions = [surrogate.predict(self._features[index])
                           for surrogate in self._surrogates]
            total = 0.0
            for _ in range(self.samples):
                sampled = tuple(rng.gauss(mean, std) if std > 0 else mean
                                for mean, std in predictions)
                # Exclusive contribution against the (fixed, already
                # non-dominated) archive: the archive itself is clipped
                # into the sample's box, never re-filtered.
                total += hypervolume_improvement(
                    archive, normalise(sampled, bounds), reference)
            scores.append(total / self.samples)
        return scores


class ParEGOProposer(_MOOProposer):
    """Random-weight Chebyshev scalarization (the ParEGO baseline).

    Every guided batch draws one weight vector from the unit simplex,
    collapses each observed objective vector ``v`` (min-max normalised)
    to ``min_i(w_i v_i) + rho * sum_i(w_i v_i)``, fits a fresh surrogate
    on the scalarised landscape in sorted key order, and proposes the
    candidates with the highest expected improvement.  Rotating weights
    sweep the frontier one scalar problem at a time -- far cheaper than
    EHVI per batch, at the cost of frontier coverage per evaluation.
    """

    strategy_name = "parego"

    def __init__(self, space: DesignSpace, *, seed: int = 0,
                 objectives=DEFAULT_OBJECTIVES, batch_size: int = 4,
                 max_evals: Optional[int] = None, surrogate: str = "rff",
                 rho: float = 0.05) -> None:
        super().__init__(space, seed=seed, objectives=objectives,
                         batch_size=batch_size, max_evals=max_evals,
                         surrogate=surrogate)
        if rho < 0:
            raise ValueError("rho must be non-negative")
        self.rho = rho

    def spec(self) -> Dict[str, object]:
        payload = super().spec()
        payload["rho"] = self.rho
        return payload

    def _weights(self) -> Tuple[float, ...]:
        """The batch's scalarization weights (seeded, simplex-uniform)."""

        rng = random.Random(self.seed * 8191 + self._batches * 127)
        draws = [-_log_guard(rng.random()) for _ in self.objectives]
        total = sum(draws)
        return tuple(draw / total for draw in draws)

    def _scalarise(self, vector: Tuple[float, ...],
                   weights: Tuple[float, ...],
                   bounds) -> float:
        scaled = [w * v for w, v in zip(weights, normalise(vector, bounds))]
        return min(scaled) + self.rho * sum(scaled)

    def _scores(self, unproposed: Sequence[int]) -> List[float]:
        bounds = vector_bounds(self._observed.values())
        weights = self._weights()
        surrogate = make_surrogate(
            self.surrogate_name, self._encoder.dim,
            seed=self.seed * 31 + self._batches)
        best = None
        for key in sorted(self._observed):  # deterministic fit order
            value = self._scalarise(self._observed[key], weights, bounds)
            surrogate.observe(self._features[key], value)
            best = value if best is None else max(best, value)
        scores = []
        for index in unproposed:
            mean, std = surrogate.predict(self._features[index])
            scores.append(expected_improvement(mean, std, best))
        return scores


def _log_guard(value: float) -> float:
    """``log`` clamped away from zero (simplex sampling never sees 0.0)."""

    import math

    return math.log(max(value, 1e-12))


def make_moo_proposer(space: DesignSpace, spec: Dict[str, object]):
    """Build a multi-objective proposer from a manifest/strategy spec."""

    spec = dict(spec)
    name = spec.pop("name", None)
    if name == "ehvi":
        return EHVIProposer(space, **spec)
    if name == "parego":
        return ParEGOProposer(space, **spec)
    raise ValueError(f"unknown multi-objective strategy {name!r}; "
                     f"expected one of {MOO_PROPOSER_NAMES}")

"""Best-point selection and fidelity-vs-runtime Pareto frontiers.

The paper's design-space study boils down to two questions per application:
which architecture maximises reliability, and what does the
reliability/runtime trade-off curve look like (Figures 6-8 read off its
extremes).  These helpers answer both over any mix of live
:class:`~repro.toolflow.runner.ExperimentRecord` and store-replayed
:class:`~repro.dse.store.CachedRecord` objects.

All orderings are deterministic: ties break towards the earlier record, so
the same record list always yields the same frontier and best point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Objectives understood by the strategies and the CLI.  All are
#: canonicalised to higher-is-better by :func:`objective_value`:
#:
#: * ``fidelity`` -- application reliability (higher is better as-is).
#: * ``runtime`` -- negated makespan in seconds (faster is better).
#: * ``comm_fraction`` -- negated fraction of the makespan spent on
#:   communication (:func:`repro.sim.metrics.communication_fraction`; less
#:   shuttling overhead is better).
#: * ``shuttles_per_2q`` -- negated shuttles per executed MS gate.  The
#:   denominator is ``num_ms_gates`` (MS applications including reordering
#:   swaps) because that is the count store rows persist, so live and
#:   store-replayed records score identically.
OBJECTIVES = ("fidelity", "runtime", "comm_fraction", "shuttles_per_2q")


def objective_value(record, metric: str = "fidelity") -> float:
    """Scalar score of a record under ``metric`` -- higher is always better."""

    if metric == "fidelity":
        return record.fidelity
    if metric == "runtime":
        return -record.duration_seconds
    if metric == "comm_fraction":
        duration = record.result.duration_seconds
        if duration <= 0:
            return 0.0
        return -record.result.communication_seconds / duration
    if metric == "shuttles_per_2q":
        gates = record.result.num_ms_gates
        if gates == 0:
            return 0.0
        return -record.num_shuttles / gates
    raise ValueError(f"unknown objective {metric!r}; expected one of {OBJECTIVES}")


def best_record(records: Iterable, metric: str = "fidelity"):
    """The record with the best objective (first wins on ties); None if empty."""

    best = None
    best_score = None
    for record in records:
        score = objective_value(record, metric)
        if best is None or score > best_score:
            best, best_score = record, score
    return best


def pareto_frontier(records: Iterable) -> List:
    """Records not dominated in (runtime down, fidelity up).

    A record is dominated when another is at least as fast *and* at least as
    reliable (and strictly better in one).  The frontier is returned fastest
    first; among records with identical runtime only the most reliable
    (earliest on ties) survives.
    """

    indexed = list(enumerate(records))
    # Sort: runtime ascending, fidelity descending, original order last so
    # the sweep below is deterministic for fully tied records.  After this
    # sort, a runtime tie always presents its best fidelity first, so the
    # single fidelity check below also resolves ties.
    indexed.sort(key=lambda item: (item[1].duration_seconds,
                                   -item[1].fidelity, item[0]))
    frontier: List = []
    best_fidelity: Optional[float] = None
    for _, record in indexed:
        if best_fidelity is not None and record.fidelity <= best_fidelity:
            continue
        frontier.append(record)
        best_fidelity = record.fidelity
    return frontier


def frontier_rows(records: Iterable) -> List[Dict[str, object]]:
    """The frontier as flat report rows (fastest first)."""

    return [record.as_row() for record in pareto_frontier(records)]


def per_app_frontiers(records: Iterable) -> Dict[str, List]:
    """Frontier per application, keyed by application name (sorted)."""

    by_app: Dict[str, List] = {}
    for record in records:
        by_app.setdefault(record.application, []).append(record)
    return {app: pareto_frontier(app_records)
            for app, app_records in sorted(by_app.items())}

"""Best-point selection and fidelity-vs-runtime Pareto frontiers.

The paper's design-space study boils down to two questions per application:
which architecture maximises reliability, and what does the
reliability/runtime trade-off curve look like (Figures 6-8 read off its
extremes).  These helpers answer both over any mix of live
:class:`~repro.toolflow.runner.ExperimentRecord` and store-replayed
:class:`~repro.dse.store.CachedRecord` objects.

All orderings are deterministic: ties break towards the earlier record, so
the same record list always yields the same frontier and best point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Objectives understood by the strategies and the CLI.
OBJECTIVES = ("fidelity", "runtime")


def objective_value(record, metric: str = "fidelity") -> float:
    """Scalar score of a record under ``metric`` -- higher is always better."""

    if metric == "fidelity":
        return record.fidelity
    if metric == "runtime":
        return -record.duration_seconds
    raise ValueError(f"unknown objective {metric!r}; expected one of {OBJECTIVES}")


def best_record(records: Iterable, metric: str = "fidelity"):
    """The record with the best objective (first wins on ties); None if empty."""

    best = None
    best_score = None
    for record in records:
        score = objective_value(record, metric)
        if best is None or score > best_score:
            best, best_score = record, score
    return best


def pareto_frontier(records: Iterable) -> List:
    """Records not dominated in (runtime down, fidelity up).

    A record is dominated when another is at least as fast *and* at least as
    reliable (and strictly better in one).  The frontier is returned fastest
    first; among records with identical runtime only the most reliable
    (earliest on ties) survives.
    """

    indexed = list(enumerate(records))
    # Sort: runtime ascending, fidelity descending, original order last so
    # the sweep below is deterministic for fully tied records.  After this
    # sort, a runtime tie always presents its best fidelity first, so the
    # single fidelity check below also resolves ties.
    indexed.sort(key=lambda item: (item[1].duration_seconds,
                                   -item[1].fidelity, item[0]))
    frontier: List = []
    best_fidelity: Optional[float] = None
    for _, record in indexed:
        if best_fidelity is not None and record.fidelity <= best_fidelity:
            continue
        frontier.append(record)
        best_fidelity = record.fidelity
    return frontier


def frontier_rows(records: Iterable) -> List[Dict[str, object]]:
    """The frontier as flat report rows (fastest first)."""

    return [record.as_row() for record in pareto_frontier(records)]


def per_app_frontiers(records: Iterable) -> Dict[str, List]:
    """Frontier per application, keyed by application name (sorted)."""

    by_app: Dict[str, List] = {}
    for record in records:
        by_app.setdefault(record.application, []).append(record)
    return {app: pareto_frontier(app_records)
            for app, app_records in sorted(by_app.items())}

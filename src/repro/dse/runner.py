"""The DSE runner: drives design points through the compile/simulate pipeline.

:class:`DSERunner` is the execution layer between a :class:`DesignSpace` (or
any point list a strategy proposes) and the parallel sweep executor of
:mod:`repro.toolflow.parallel`:

* **Store-first.**  Every point is fingerprinted; points already in the
  :class:`~repro.dse.store.ExperimentStore` are replayed from disk instead of
  recomputed (resume-after-kill, overlapping spaces, warm re-runs).
* **Gate fan-out.**  Consecutive pending points that differ only in the
  two-qubit gate implementation become one :class:`SweepTask` -- one
  compilation, batch-simulated under every gate in a single shared pass
  (:func:`repro.sim.batch.simulate_batch`), exactly like the Figure 8
  driver.
* **Deterministic parallelism.**  Tasks run through
  :func:`~repro.toolflow.parallel.run_tasks`; results come back in point
  order for any ``jobs`` value.
* **Sharding.**  With ``shard=Shard(i, n)`` the runner evaluates only the
  points whose fingerprint hashes into shard ``i``; every shard appends to
  its own store file, so N machines can split one space and the directory
  union is the full result set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dse.space import DesignPoint, DesignSpace
from repro.dse.store import (
    DEFAULT_WRITER,
    ExperimentStore,
    record_to_row,
    row_to_record,
)
from repro.io.fingerprint import design_point_fingerprint
from repro.ir.circuit import Circuit
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import span
from repro.toolflow.parallel import ProgramCache, SweepTask, iter_tasks


@dataclass(frozen=True)
class Shard:
    """One slice of a sharded sweep: shard ``index`` of ``count`` (1-based).

    Points are assigned by fingerprint hash, so the partition is stable
    under resume, reordering and strategy choice -- a point always belongs
    to the same shard.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("shard count must be at least 1")
        if not 1 <= self.index <= self.count:
            raise ValueError(f"shard index must be in 1..{self.count}, "
                             f"got {self.index}")

    @classmethod
    def parse(cls, text: str) -> "Shard":
        """Parse the CLI form ``"i/N"`` (e.g. ``"2/4"``).

        Only *format* problems (not two ``/``-separated integers) collapse
        into the generic message; the range errors of ``__post_init__`` --
        ``--shard 0/4``, ``--shard 5/4`` -- propagate unmasked so the user
        sees which bound was violated.
        """

        try:
            index_text, count_text = text.split("/")
            index, count = int(index_text), int(count_text)
        except (ValueError, TypeError) as err:
            raise ValueError(
                f"expected a shard of the form i/N, got {text!r}") from err
        return cls(index, count)

    @property
    def name(self) -> str:
        return f"shard-{self.index}of{self.count}"

    def owns(self, fingerprint: str) -> bool:
        return int(fingerprint, 16) % self.count == self.index - 1


def _default_circuit_builder(app: str, qubits: Optional[int]) -> Circuit:
    from repro.apps.suite import build_application

    return build_application(app, num_qubits=qubits)


class DSERunner:
    """Evaluates design points against a store, a cache and a worker pool.

    Parameters
    ----------
    space:
        The design space being explored (strategies enumerate from it).
    store:
        Experiment store for resume/dedup; defaults to an in-memory store.
    circuits:
        Optional mapping of application name to a pre-built circuit.  When
        given, point ``qubits`` must be ``None`` (the circuits *are* the
        sizes); when omitted, circuits are built on demand from the Table II
        generators at each point's size.
    jobs:
        Worker processes for the underlying sweep executor (1 = serial).
    shard:
        Evaluate only this shard's points (see :class:`Shard`).
    cache:
        Compiled-program cache shared across evaluations (one per runner by
        default).
    heartbeat:
        Optional no-argument callable invoked after each completed-and-
        persisted task group.  The shard dispatcher uses it to renew the
        worker's lease on its shard (and to abort the shard, by raising
        :class:`~repro.dse.dispatch.LeaseLost`, when the lease was reclaimed
        by another worker); progress monitors can use it as a tick.
    """

    def __init__(self, space: DesignSpace, store: Optional[ExperimentStore] = None, *,
                 circuits: Optional[Dict[str, Circuit]] = None,
                 jobs: int = 1,
                 shard: Optional[Shard] = None,
                 cache: Optional[ProgramCache] = None,
                 circuit_builder: Optional[Callable[[str, Optional[int]], Circuit]] = None,
                 heartbeat: Optional[Callable[[], None]] = None,
                 ) -> None:
        if (store is not None and shard is not None
                and store.directory is not None
                and store.writer == DEFAULT_WRITER):
            # Default writer: shard runs retarget to their own shard file.
            # A caller-chosen writer (e.g. the dispatcher's per-owner files)
            # is respected.
            store.set_writer(shard.name)
        self.space = space
        self.store = store if store is not None else ExperimentStore()
        self.circuits = dict(circuits) if circuits is not None else None
        self.jobs = jobs
        self.shard = shard
        self.cache = cache if cache is not None else ProgramCache()
        self.heartbeat = heartbeat
        self._circuit_builder = circuit_builder or _default_circuit_builder
        self._circuit_memo: Dict[Tuple[str, Optional[int]], Circuit] = {}
        self._fingerprint_memo: Dict[DesignPoint, str] = {}
        self.stats = {"evaluated": 0, "reused": 0, "skipped": 0}
        #: Active provenance context (strategy name, seed, rung): stamped
        #: into every store row this runner persists (schema v3).  Set by
        #: strategies and the adaptive worker loop; ``None`` leaves rows
        #: provenance-free (direct evaluations, pre-v3 behaviour).
        self.provenance: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    def circuit_for(self, app: str, qubits: Optional[int]) -> Circuit:
        """The circuit of one point (provided suite entry or generated)."""

        key = (app, qubits)
        circuit = self._circuit_memo.get(key)
        if circuit is not None:
            return circuit
        if self.circuits is not None:
            if qubits is not None:
                raise ValueError(
                    "explicit qubit overrides need the default application "
                    "builder; this runner was given pre-built circuits")
            try:
                circuit = self.circuits[app]
            except KeyError:
                raise ValueError(f"no circuit provided for application {app!r}")
        else:
            circuit = self._circuit_builder(app, qubits)
        self._circuit_memo[key] = circuit
        return circuit

    def fingerprint(self, point: DesignPoint) -> str:
        """Stable store key of a point (memoised per runner)."""

        cached = self._fingerprint_memo.get(point)
        if cached is None:
            circuit = self.circuit_for(point.app, point.qubits)
            cached = design_point_fingerprint(circuit, point.config)
            self._fingerprint_memo[point] = cached
        return cached

    # ------------------------------------------------------------------ #
    def evaluate(self, points: Sequence[DesignPoint]) -> List[object]:
        """Evaluate ``points``, returning one record per point, in order.

        Points already in the store come back as
        :class:`~repro.dse.store.CachedRecord` without recomputation; fresh
        points are executed (in parallel for ``jobs > 1``) and appended to
        the store.  Shard-foreign points yield ``None`` (they belong to
        another shard and are not evaluated here) unless the store already
        has them.
        """

        points = list(points)
        before = dict(self.stats)
        with span("dse.evaluate", points=len(points)) as trace:
            results = self._evaluate(points)
            trace.set(evaluated=self.stats["evaluated"] - before["evaluated"],
                      reused=self.stats["reused"] - before["reused"])
        registry = _metrics_registry()
        for key in ("evaluated", "reused", "skipped"):
            delta = self.stats[key] - before[key]
            if delta:
                registry.counter(f"dse.points.{key}").inc(delta)
        return results

    def _evaluate(self, points: List[DesignPoint]) -> List[object]:
        fingerprints = [self.fingerprint(point) for point in points]

        # Slot plan: cached rows replay, duplicates alias the first
        # occurrence, shard-foreign points are skipped, the rest execute.
        CACHED, ALIAS, SKIP, RUN = "cached", "alias", "skip", "run"
        slots: List[Tuple[str, object]] = []
        first_index: Dict[str, int] = {}
        pending: List[int] = []
        for index, (point, fingerprint) in enumerate(zip(points, fingerprints)):
            row = self.store.get(fingerprint)
            if row is not None:
                slots.append((CACHED, row))
                self.stats["reused"] += 1
            elif fingerprint in first_index:
                slots.append((ALIAS, first_index[fingerprint]))
            elif self.shard is not None and not self.shard.owns(fingerprint):
                slots.append((SKIP, None))
                self.stats["skipped"] += 1
            else:
                first_index[fingerprint] = index
                slots.append((RUN, None))
                pending.append(index)

        # Fold consecutive pending points that differ only in the gate into
        # one task (one compilation, many simulated gate variants).
        groups: List[List[int]] = []
        prev_index = prev_key = None
        for index in pending:
            point = points[index]
            circuit = self.circuit_for(point.app, point.qubits)
            key = (id(circuit), replace(point.config, gate="FM"))
            if groups and prev_index == index - 1 and key == prev_key:
                groups[-1].append(index)
            else:
                groups.append([index])
            prev_index, prev_key = index, key

        tasks = []
        for group in groups:
            first = points[group[0]]
            circuit = self.circuit_for(first.app, first.qubits)
            if len(group) == 1:
                tasks.append(SweepTask(circuit, first.config))
            else:
                gates = tuple(points[index].config.gate for index in group)
                tasks.append(SweepTask(circuit, first.config, gates=gates))

        # Stream task results: every completed design point is persisted the
        # moment it finishes, so a killed run resumes at point granularity.
        results: List[object] = [None] * len(points)
        for group, records in zip(groups, iter_tasks(tasks, jobs=self.jobs,
                                                     cache=self.cache)):
            for index, record in zip(group, records):
                results[index] = record
                self.stats["evaluated"] += 1
                self.store.add(record_to_row(fingerprints[index],
                                             points[index], record,
                                             provenance=self.provenance))
            if self.heartbeat is not None:
                self.heartbeat()

        for index, (kind, payload) in enumerate(slots):
            if kind == CACHED:
                results[index] = row_to_record(payload)
            elif kind == ALIAS:
                results[index] = results[payload]
        return results

    def evaluate_space(self) -> List[object]:
        """Evaluate every point of the space in enumeration order."""

        return self.evaluate(list(self.space.points()))

    def run(self, strategy=None):
        """Explore the space under ``strategy`` (exhaustive grid by default)."""

        from repro.dse.strategies import ExhaustiveGrid

        strategy = strategy if strategy is not None else ExhaustiveGrid()
        if self.shard is not None and not strategy.shardable:
            raise ValueError(
                f"strategy {strategy.name!r} adapts to earlier results and "
                f"cannot be sharded; run it unsharded (or shard grid/random, "
                f"or distribute adaptive search with "
                f"`repro dse dispatch --strategy {strategy.name}`)")
        try:
            return strategy.run(self)
        finally:
            # The strategy's provenance context ends with the run: a later
            # direct evaluate() must not stamp rows it never proposed.
            self.provenance = None

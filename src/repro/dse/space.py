"""Declarative design-space specifications.

A :class:`DesignSpace` is the cross product of the paper's sweep axes --
application x size x topology x trap capacity x gate implementation x
reordering method x buffer -- under one set of physical-model parameters.
It validates its axes up front, enumerates :class:`DesignPoint` objects in a
deterministic nesting order, and (together with
:func:`repro.io.fingerprint.design_point_fingerprint`) gives every point a
stable identity that the experiment store keys on.

The default nesting order reproduces the enumeration of the paper's figure
sweeps: topology-major, then capacity, reorder, buffer, size, application,
and gate innermost (so the four MS-gate implementations of one compilation
are adjacent, which is what lets the runner reuse a single compile for all of
them).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional, Tuple

from repro.models.params import PhysicalModel
from repro.toolflow.config import ArchitectureConfig

#: Axis names, in spec-field order.
AXES = ("topology", "capacity", "reorder", "buffer", "qubits", "app", "gate")

#: Default nesting order of the enumeration (outermost first).  Matches the
#: paper's sweep enumerations for Figures 6, 7 and 8.
DEFAULT_ORDER = AXES

#: Legal axis values where the toolflow has a closed set.
KNOWN_GATES = ("AM1", "AM2", "PM", "FM")
KNOWN_REORDERS = ("GS", "IS")


@dataclass(frozen=True)
class DesignPoint:
    """One fully-specified candidate: an application on an architecture.

    ``qubits`` is ``None`` for "the application's default size" (the paper's
    Table II parameters, or whatever circuit the caller supplied for the
    application name).
    """

    app: str
    qubits: Optional[int]
    config: ArchitectureConfig

    @property
    def label(self) -> str:
        """Short human-readable identity used in reports."""

        size = f"@{self.qubits}" if self.qubits is not None else ""
        return f"{self.app}{size}/{self.config.name}"

    def spec(self) -> Dict[str, object]:
        """JSON-safe description of the point (round-trips via :func:`point_from_spec`)."""

        from repro.io.serialization import config_to_dict

        return {
            "app": self.app,
            "qubits": self.qubits,
            "config": config_to_dict(self.config, include_model=True),
        }

    def with_qubits(self, qubits: Optional[int]) -> "DesignPoint":
        """The same architectural point at a different application size."""

        return replace(self, qubits=qubits)


def point_from_spec(spec: Dict[str, object]) -> DesignPoint:
    """Rebuild a :class:`DesignPoint` from :meth:`DesignPoint.spec` output."""

    from repro.io.serialization import config_from_dict

    return DesignPoint(
        app=spec["app"],
        qubits=spec["qubits"],
        config=config_from_dict(spec["config"]),
    )


@dataclass(frozen=True)
class DesignSpace:
    """The cross product of sweep axes explored by one study.

    Every axis is a tuple of values; singleton axes pin a knob.  ``qubits``
    values of ``None`` mean the application's default size.  ``order`` is the
    nesting order of :meth:`points` (a permutation of :data:`AXES`,
    outermost first).
    """

    apps: Tuple[str, ...]
    qubits: Tuple[Optional[int], ...] = (None,)
    topologies: Tuple[str, ...] = ("L6",)
    capacities: Tuple[int, ...] = (14, 18, 22, 26, 30, 34)
    gates: Tuple[str, ...] = ("FM",)
    reorders: Tuple[str, ...] = ("GS",)
    buffers: Tuple[int, ...] = (2,)
    model: PhysicalModel = field(default_factory=PhysicalModel)
    order: Tuple[str, ...] = DEFAULT_ORDER

    def __post_init__(self) -> None:
        # Normalise sequences to tuples so specs built from lists hash/compare.
        for name in ("apps", "qubits", "topologies", "capacities", "gates",
                     "reorders", "buffers", "order"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        self.validate()

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on an ill-formed space."""

        for name, values in (("apps", self.apps), ("qubits", self.qubits),
                             ("topologies", self.topologies),
                             ("capacities", self.capacities),
                             ("gates", self.gates), ("reorders", self.reorders),
                             ("buffers", self.buffers)):
            if len(values) == 0:
                raise ValueError(f"design-space axis {name!r} is empty")
            if len(set(values)) != len(values):
                raise ValueError(f"design-space axis {name!r} has duplicate values")
        for gate in self.gates:
            if gate not in KNOWN_GATES:
                raise ValueError(f"unknown gate implementation {gate!r}; "
                                 f"expected one of {KNOWN_GATES}")
        for reorder in self.reorders:
            if reorder not in KNOWN_REORDERS:
                raise ValueError(f"unknown reorder method {reorder!r}; "
                                 f"expected one of {KNOWN_REORDERS}")
        for capacity in self.capacities:
            if capacity < 2:
                raise ValueError("trap capacities must be at least 2")
        for buffer_ions in self.buffers:
            if buffer_ions < 0:
                raise ValueError("buffers must be non-negative")
        for qubits in self.qubits:
            if qubits is not None and qubits < 2:
                raise ValueError("qubit counts must be at least 2 (or None)")
        if sorted(self.order) != sorted(AXES):
            raise ValueError(f"order must be a permutation of {AXES}, "
                             f"got {self.order}")
        self.model.validate()

    # ------------------------------------------------------------------ #
    def axis_values(self, axis: str) -> Tuple:
        """The value tuple of one axis by name."""

        values = {
            "app": self.apps,
            "qubits": self.qubits,
            "topology": self.topologies,
            "capacity": self.capacities,
            "gate": self.gates,
            "reorder": self.reorders,
            "buffer": self.buffers,
        }
        return values[axis]

    @property
    def size(self) -> int:
        """Number of design points in the space."""

        total = 1
        for axis in AXES:
            total *= len(self.axis_values(axis))
        return total

    def point_for(self, coords: Dict[str, object]) -> DesignPoint:
        """Build the point at explicit axis coordinates."""

        return DesignPoint(
            app=coords["app"],
            qubits=coords["qubits"],
            config=ArchitectureConfig(
                topology=coords["topology"],
                trap_capacity=coords["capacity"],
                gate=coords["gate"],
                reorder=coords["reorder"],
                buffer_ions=coords["buffer"],
                model=self.model,
            ),
        )

    def points(self) -> Iterator[DesignPoint]:
        """Enumerate every point, nested by ``order`` (outermost first)."""

        axis_lists = [self.axis_values(axis) for axis in self.order]
        for combo in itertools.product(*axis_lists):
            yield self.point_for(dict(zip(self.order, combo)))

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe spec (the ``--space`` file format of ``repro dse run``)."""

        from repro.io.serialization import SCHEMA_VERSION, model_to_dict

        return {
            "schema_version": SCHEMA_VERSION,
            "apps": list(self.apps),
            "qubits": list(self.qubits),
            "topologies": list(self.topologies),
            "capacities": list(self.capacities),
            "gates": list(self.gates),
            "reorders": list(self.reorders),
            "buffers": list(self.buffers),
            "model": model_to_dict(self.model),
            "order": list(self.order),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DesignSpace":
        """Build a space from a spec dictionary (scalars promote to singletons)."""

        from repro.io.serialization import check_schema_version, model_from_dict

        check_schema_version(payload, source="design-space spec")
        known_keys = {"schema_version", "apps", "qubits", "topologies",
                      "capacities", "gates", "reorders", "buffers", "model",
                      "order"}
        unknown = sorted(set(payload) - known_keys)
        if unknown:
            # A misspelled axis would otherwise silently fall back to the
            # paper-scale default -- hours of compute on the wrong space.
            raise ValueError(f"design-space spec has unknown keys {unknown}; "
                             f"expected a subset of {sorted(known_keys)}")
        if "apps" not in payload:
            raise ValueError("design-space spec must list 'apps'")

        def axis(name: str, default) -> Tuple:
            value = payload.get(name, default)
            if isinstance(value, (str, int, float)) or value is None:
                value = (value,)
            return tuple(value)

        defaults = cls(apps=("QFT",))
        model = (model_from_dict(payload["model"]) if "model" in payload
                 else PhysicalModel())
        return cls(
            apps=axis("apps", ()),
            qubits=axis("qubits", defaults.qubits),
            topologies=axis("topologies", defaults.topologies),
            capacities=axis("capacities", defaults.capacities),
            gates=axis("gates", defaults.gates),
            reorders=axis("reorders", defaults.reorders),
            buffers=axis("buffers", defaults.buffers),
            model=model,
            order=axis("order", defaults.order),
        )

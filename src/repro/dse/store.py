"""Persistent, append-only storage of evaluated design points.

An :class:`ExperimentStore` is a directory of JSONL files, one JSON object
per evaluated point, keyed by the point's stable fingerprint
(:func:`repro.io.fingerprint.design_point_fingerprint`).  The format is
designed around three operational needs of long sweeps:

* **Resume after kill.**  Rows are appended and flushed one at a time; a
  process killed mid-write leaves at most one truncated trailing line, which
  the loader skips.  Re-running the same space recomputes only the missing
  points.
* **Dedup.**  The first row wins for any fingerprint; re-adding an evaluated
  point is a no-op, so overlapping spaces (Figure 6 and the L6 half of
  Figure 7, shards with redundant boundaries, ...) never duplicate work or
  data.
* **Shard merge.**  Every writer appends to its own file
  (``results.jsonl``, ``shard-1of4.jsonl``, ...); opening the directory
  merges all ``*.jsonl`` files, so combining shard outputs is ``cp``.

Rows are plain JSON; floats survive the round-trip bit-exactly (Python's
``json`` renders floats with ``repr`` and parses them back to the same
double), which is what keeps store-routed figure sweeps golden-identical to
direct runs.

Since schema v2, rows also record the per-point ``wall_s`` evaluation time
(driving ``dse status --eta`` and the dispatcher's progress watch); since
schema v3 they may also record **provenance** -- which strategy proposed the
point, under which seed, at which multi-fidelity rung.  Both describe *how*
a row was produced rather than *what* the design point is, so both are
stripped from :meth:`ExperimentStore.export_rows`, the canonical export used
to check that sharded/dispatched/adaptive runs match serial ones
byte-for-byte across schema generations.

Reloads are incremental: the store tracks a per-file byte offset (advanced
only past newline-terminated lines) and :meth:`ExperimentStore.reload` reads
just the appended suffix of each file -- O(new rows), which is what keeps
the dispatcher's progress ticks and the adaptive proposer's ingest loop
cheap at paper scale.  A tracked file that shrinks below its consumed offset
or disappears triggers the full-rescan fallback.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.dse.space import DesignPoint, point_from_spec
from repro.obs.metrics import registry as _metrics_registry

#: Default writer file name (shard writers use ``shard-<i>of<N>.jsonl``).
DEFAULT_WRITER = "results"

#: Row keys that describe *one particular run or writer* rather than the
#: design point itself: wall timings differ run to run, the stamped schema
#: generation differs when an old store is resumed under a newer build, and
#: the provenance stamp (strategy/seed/rung, schema v3) records who asked
#: for the point, not what it is.  They are excluded from canonical exports
#: so that two stores of the same evaluated space -- serial, sharded,
#: dispatched, resumed, mixed-version, grid or adaptive -- export
#: byte-identically (the export payload carries its own top-level
#: ``schema_version``).
VOLATILE_ROW_KEYS = frozenset({"wall_s", "schema_version", "provenance"})

#: Keys a row must carry to be replayable.  A partially copied shard file can
#: tear a line into valid-but-incomplete JSON; such rows are skipped with a
#: warning instead of blowing up later in :func:`row_to_record`.
REQUIRED_ROW_KEYS = frozenset(
    {"fingerprint", "point", "application", "metrics", "program_ops", "shuttles"})


class StoreCorruptionWarning(UserWarning):
    """A store file contained lines that could not be loaded and were skipped."""


class CachedResult:
    """Attribute view over stored result metrics.

    Exposes the subset of :class:`~repro.sim.results.SimulationResult` that
    reports, figures and strategies read, backed by the flat metrics
    dictionary of a store row.  Values are the exact floats of the original
    simulation (JSON round-trips doubles losslessly).
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: Dict[str, float]) -> None:
        self._metrics = metrics

    @property
    def duration(self) -> float:
        return self._metrics["duration_us"]

    @property
    def duration_seconds(self) -> float:
        return self._metrics["duration_s"]

    @property
    def fidelity(self) -> float:
        return self._metrics["fidelity"]

    @property
    def log_fidelity(self) -> float:
        return self._metrics["log_fidelity"]

    @property
    def computation_seconds(self) -> float:
        return self._metrics["computation_s"]

    @property
    def communication_seconds(self) -> float:
        return self._metrics["communication_s"]

    @property
    def max_motional_energy(self) -> float:
        return self._metrics["max_motional_energy"]

    @property
    def mean_background_error(self) -> float:
        return self._metrics["mean_background_error"]

    @property
    def mean_motional_error(self) -> float:
        return self._metrics["mean_motional_error"]

    @property
    def num_shuttles(self) -> int:
        return int(self._metrics["num_shuttles"])

    @property
    def num_ms_gates(self) -> int:
        return int(self._metrics["num_ms_gates"])

    def as_dict(self) -> Dict[str, float]:
        """The stored metrics (same keys as ``SimulationResult.as_dict``)."""

        return dict(self._metrics)


class CachedRecord:
    """Record view over one store row, interchangeable with ExperimentRecord.

    Exposes ``application``, ``config``, ``result``, ``program_size``,
    ``num_shuttles`` and ``as_row()`` exactly like
    :class:`~repro.toolflow.runner.ExperimentRecord`, so sweep and figure
    drivers do not care whether a point was computed in this process or
    replayed from disk.
    """

    __slots__ = ("point", "application", "result", "program_size",
                 "num_shuttles", "wall_s", "provenance")

    def __init__(self, point: DesignPoint, application: str,
                 metrics: Dict[str, float],
                 program_size: int, num_shuttles: int,
                 wall_s: Optional[float] = None,
                 provenance: Optional[Dict[str, object]] = None) -> None:
        self.point = point
        # The circuit's own name (e.g. "qft64"), which can differ from the
        # suite key the point addresses it by (e.g. "QFT").
        self.application = application
        self.result = CachedResult(metrics)
        self.program_size = program_size
        self.num_shuttles = num_shuttles
        # Wall-clock seconds the original evaluation took; ``None`` for rows
        # written before schema v2 (unknown, deliberately not zero -- ETA
        # math must ignore them, not average them in).
        self.wall_s = wall_s
        # Who asked for the point: strategy name, seed and multi-fidelity
        # rung (schema v3); ``None`` for older rows or direct evaluations.
        self.provenance = provenance

    @property
    def config(self):
        return self.point.config

    @property
    def fidelity(self) -> float:
        return self.result.fidelity

    @property
    def duration_seconds(self) -> float:
        return self.result.duration_seconds

    def as_row(self) -> Dict[str, object]:
        row = {
            "application": self.application,
            "topology": self.config.topology,
            "capacity": self.config.trap_capacity,
            "gate": self.config.gate,
            "reorder": self.config.reorder,
            "buffer": self.config.buffer_ions,
            "program_ops": self.program_size,
            "shuttles": self.num_shuttles,
        }
        row.update(self.result.as_dict())
        return row


def row_to_record(row: Dict[str, object]) -> CachedRecord:
    """Rebuild a record view from one stored row."""

    return CachedRecord(
        point=point_from_spec(row["point"]),
        application=row["application"],
        metrics=row["metrics"],
        program_size=row["program_ops"],
        num_shuttles=row["shuttles"],
        wall_s=row.get("wall_s"),
        provenance=row.get("provenance"),
    )


def record_to_row(fingerprint: str, point: DesignPoint, record, *,
                  provenance: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Serialise one evaluated point (live or cached record) to a store row.

    The ``wall_s`` timing is recorded only when the record carries one;
    replays of pre-v2 rows stay timing-free rather than gaining a fake zero.
    Likewise the provenance stamp (strategy/seed/rung, schema v3): it comes
    from the caller (the runner's active strategy context) or, for replays,
    from the record itself; rows never gain an invented provenance.
    """

    from repro.io.serialization import SCHEMA_VERSION

    row = {
        "schema_version": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "point": point.spec(),
        "application": record.application,
        "program_ops": record.program_size,
        "shuttles": record.num_shuttles,
        "metrics": record.result.as_dict(),
    }
    wall_s = getattr(record, "wall_s", None)
    if wall_s is not None:
        row["wall_s"] = wall_s
    if provenance is None:
        provenance = getattr(record, "provenance", None)
    if provenance:
        row["provenance"] = {key: provenance[key] for key in sorted(provenance)}
    return row


class ExperimentStore:
    """Append-only on-disk store of evaluated design points.

    ``directory=None`` gives a purely in-memory store with the same API --
    the sweep drivers always route through a store, persistent or not.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 writer: str = DEFAULT_WRITER) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.writer = writer
        self._rows: Dict[str, Dict] = {}
        self._sources: Dict[str, str] = {}
        self._handle = None
        # Permanent skips: newline-terminated lines that failed to load.
        # Unterminated tails are tracked separately (``_tail_skips``): they
        # are usually a writer's *in-flight* line, so their skip is
        # tentative -- it evaporates when a later scan finds the line
        # completed -- and must not accumulate across reload ticks.
        self._skipped = 0
        self._skip_counts: Dict[str, int] = {}
        self._tail_skips: Dict[str, bool] = {}
        # Incremental-reload bookkeeping, all keyed by file name: bytes
        # consumed (advanced only past newline-terminated lines), lines
        # consumed (for warning positions), the last unterminated tail
        # examined (so an in-flight torn line is not re-processed or
        # recounted on every tick), and any deferred mid-file corruption
        # warning whose "is it really mid-file?" proof may arrive in a
        # later chunk.  The file size at the last scan -- the unchanged
        # fast path's comparand -- is derived, not stored:
        # ``_known_size() == offset + len(tail)`` by construction.
        self._offsets: Dict[str, int] = {}
        self._linenos: Dict[str, int] = {}
        self._tails: Dict[str, bytes] = {}
        self._pending_warn: Dict[str, tuple] = {}
        #: Observability counters for the reload path: ``full_scans`` counts
        #: directory-wide rescans (initial load included), ``files_scanned``
        #: counts files actually opened and parsed, ``files_unchanged``
        #: counts files skipped by the size fast path, ``bytes_read`` the
        #: bytes parsed.  The incremental-reload tests pin the O(new rows)
        #: behaviour on these.
        self.scan_stats = {"full_scans": 0, "files_scanned": 0,
                           "files_unchanged": 0, "bytes_read": 0}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load()

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        self.scan_stats["full_scans"] += 1
        for path in sorted(self.directory.glob("*.jsonl")):
            try:
                self._scan_file(path)
            except FileNotFoundError:
                continue  # deleted between glob and open

    def _known_size(self, name: str) -> int:
        """File size as of the last scan: consumed bytes plus the seen tail."""

        return self._offsets.get(name, 0) + len(self._tails.get(name, b""))

    def _scan_file(self, path: Path) -> None:
        """Parse the unconsumed suffix of one store file.

        A broken *trailing* line is the expected artifact of a killed (or
        still-appending) writer -- the designed resume-after-kill path --
        and is skipped silently.  A broken line anywhere else means real
        corruption (e.g. a partially copied shard file) and is worth a
        warning.  Both are skipped, never aborted on; the warning for a
        skip is therefore deferred until a later non-empty line proves the
        skip was mid-file -- possibly in a later incremental scan.
        ``errors="replace"`` keeps a partially copied (even binary-torn)
        file decodable; the mangled lines then fail JSON parsing and are
        skipped like any other corrupt line.

        The consumed byte offset advances only past newline-terminated
        lines.  An unterminated tail is still examined (a complete JSON row
        whose newline the kill ate is indexed; a fragment is counted as
        skipped) but never consumed, so once the writer terminates or heals
        it the next scan re-reads that region and picks up the final truth.
        """

        from repro.io.serialization import check_schema_version

        name = path.name
        start = self._offsets.get(name, 0)
        size = path.stat().st_size
        if name in self._offsets and size == self._known_size(name):
            self.scan_stats["files_unchanged"] += 1
            return
        with open(path, "rb") as handle:
            handle.seek(start)
            data = handle.read()
        self.scan_stats["files_scanned"] += 1
        self.scan_stats["bytes_read"] += len(data)
        cut = data.rfind(b"\n") + 1  # 0 when the chunk holds no newline
        chunk, tail = data[:cut], data[cut:]
        lineno = self._linenos.get(name, 0)
        pending = self._pending_warn.pop(name, None)
        for raw in chunk.decode(errors="replace").split("\n")[:-1]:
            lineno += 1
            line = raw.strip()
            if not line:
                continue
            if pending is not None:
                self._warn_skip(path, *pending)
                pending = None
            reason = self._ingest_line(path, lineno, line,
                                       check_schema_version)
            if reason is not None:
                self._skipped += 1
                self._skip_counts[name] = self._skip_counts.get(name, 0) + 1
                # Mirrored into the process-wide metrics registry so
                # telemetry surfaces corruption without anyone having to
                # catch StoreCorruptionWarning.
                _metrics_registry().counter("store.lines_skipped").inc()
                pending = (lineno, reason)
        self._offsets[name] = start + cut
        self._linenos[name] = lineno
        if tail != self._tails.get(name):
            # The tail region was re-read, so any previous tentative skip
            # for it is superseded by what this scan finds.
            self._tail_skips.pop(name, None)
            if tail:
                self._tails[name] = tail
                text = tail.decode(errors="replace").strip()
                if text:
                    # A non-empty tail is a *later* line: it proves any
                    # pending skip above it was mid-file, so warn now.
                    if pending is not None:
                        self._warn_skip(path, *pending)
                        pending = None
                    reason = self._ingest_line(path, lineno + 1, text,
                                               check_schema_version)
                    if reason is not None:
                        self._tail_skips[name] = True
            else:
                self._tails.pop(name, None)
        if pending is not None:
            self._pending_warn[name] = pending

    def _ingest_line(self, path: Path, lineno: int, line: str,
                     check_schema_version) -> Optional[str]:
        """Index one store line; returns a skip reason for corrupt lines."""

        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            return "unparseable JSON (torn or corrupt line)"
        if not isinstance(row, dict):
            return "not a JSON object"
        version = row.get("schema_version", 0)
        if not isinstance(version, int) or version < 0:
            # A garbled version field is line corruption: skip the line,
            # don't abort the directory.  Genuinely *newer* payloads still
            # fail loudly below -- silently misreading them would be worse.
            return f"malformed schema_version {version!r}"
        check_schema_version(row, source=f"{path}:{lineno}")
        fingerprint = row.get("fingerprint")
        if not fingerprint:
            return "row has no fingerprint"
        if fingerprint in self._rows:
            return None  # dedup, not corruption
        missing = REQUIRED_ROW_KEYS - row.keys()
        if missing:
            return f"row is missing {sorted(missing)} (torn mid-copy?)"
        self._rows[fingerprint] = row
        self._sources[fingerprint] = path.name
        return None

    def _warn_skip(self, path: Path, lineno: int, reason: str) -> None:
        warnings.warn(f"experiment store: skipping {path.name}:{lineno}: "
                      f"{reason}", StoreCorruptionWarning, stacklevel=4)

    def reload(self) -> None:
        """Pick up rows appended by other writers, in O(new rows).

        Each tracked file is stat'ed; unchanged files are not even opened,
        grown files are parsed from their consumed byte offset.  Rows are
        append-only, so incremental ingestion and a from-scratch reload
        agree -- except when a tracked file shrank below its offset or
        disappeared (history rewritten: a healed torn tail, a deleted
        shard), which falls back to a full rescan of the directory.
        """

        if self.directory is None:
            return
        paths = sorted(self.directory.glob("*.jsonl"))
        names = {path.name for path in paths}
        rescan = any(name not in names for name in self._offsets)
        if not rescan:
            for path in paths:
                try:
                    if path.stat().st_size < self._offsets.get(path.name, 0):
                        rescan = True
                        break
                except FileNotFoundError:
                    rescan = True
                    break
        if rescan:
            self._full_rescan()
            return
        for path in paths:
            try:
                self._scan_file(path)
            except FileNotFoundError:
                self._full_rescan()
                return

    def _full_rescan(self) -> None:
        """Drop all indexed state and re-read the directory from scratch."""

        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._rows.clear()
        self._sources.clear()
        self._offsets.clear()
        self._linenos.clear()
        self._tails.clear()
        self._tail_skips.clear()
        self._pending_warn.clear()
        self._skipped = 0
        self._skip_counts.clear()
        self._load()

    # ------------------------------------------------------------------ #
    @property
    def skipped_lines(self) -> int:
        """Lines that could not be loaded: permanent skips plus any file's
        current unterminated-and-unparseable tail (an in-flight or torn
        trailing write, counted once and uncounted if a later scan finds
        the line completed)."""

        return self._skipped + sum(1 for skip in self._tail_skips.values()
                                   if skip)

    def skip_counts(self) -> Dict[str, int]:
        """Skipped-line totals per store file (tentative tail skips included).

        What ``dse status`` prints: every corrupt file is named with its
        skip count, instead of the information living only in
        :class:`StoreCorruptionWarning` messages as they scroll past.
        """

        counts = dict(self._skip_counts)
        for name, skip in self._tail_skips.items():
            if skip:
                counts[name] = counts.get(name, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._rows

    def get(self, fingerprint: str) -> Optional[Dict]:
        """The stored row for a fingerprint, or ``None``."""

        return self._rows.get(fingerprint)

    def rows(self) -> Iterator[Dict]:
        """All rows in load/insertion order."""

        return iter(self._rows.values())

    def sorted_rows(self) -> List[Dict]:
        """All rows in fingerprint order (canonical for exports and diffs)."""

        return [self._rows[fp] for fp in sorted(self._rows)]

    def export_rows(self) -> List[Dict]:
        """Canonical rows for ``dse export``: deterministic bytes per study.

        Fingerprint-sorted, recursively key-sorted, with per-run/per-writer
        fields (:data:`VOLATILE_ROW_KEYS`: wall timings, row schema stamps)
        dropped.  Two stores holding the same evaluated space therefore export
        byte-identically regardless of how they were produced -- one process,
        ``--jobs N``, hand-launched shards, or a dispatched run with killed
        and reclaimed workers -- which is what makes exports diffable in CI.
        """

        def canonical(value):
            if isinstance(value, dict):
                return {key: canonical(value[key]) for key in sorted(value)
                        if key not in VOLATILE_ROW_KEYS}
            if isinstance(value, list):
                return [canonical(item) for item in value]
            return value

        return [canonical(row) for row in self.sorted_rows()]

    def wall_timings(self) -> List[float]:
        """Per-point ``wall_s`` of every row that recorded one.

        Rows written before schema v2 carry no timing and are simply absent
        here (unknown is not zero), so ETA estimates stay unbiased on stores
        that mix old and new rows.
        """

        return [row["wall_s"] for row in self._rows.values()
                if isinstance(row.get("wall_s"), (int, float))]

    def fingerprints(self) -> List[str]:
        return list(self._rows)

    def source_counts(self) -> Dict[str, int]:
        """Rows per originating file (``"memory"`` for unpersisted rows)."""

        counts: Dict[str, int] = {}
        for source in self._sources.values():
            counts[source] = counts.get(source, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    @property
    def writer_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{self.writer}.jsonl"

    def add(self, row: Dict) -> bool:
        """Append one row; returns ``False`` (no-op) if its point is present.

        Persistent stores write and flush the line immediately, so a kill
        between two points loses at most the in-flight row.
        """

        fingerprint = row["fingerprint"]
        if fingerprint in self._rows:
            return False
        self._rows[fingerprint] = row
        if self.directory is not None:
            if self._handle is None:
                self._handle = self._open_writer()
            self._handle.write(json.dumps(row, sort_keys=True) + "\n")
            self._handle.flush()
            name = self.writer_path.name
            self._sources[fingerprint] = name
            # Our own appends are already indexed: advance the incremental-
            # reload cursor past them so reload() only parses *other*
            # writers' rows.  Opening the writer also healed any torn tail
            # the file carried, so its tentative skip is gone with it.
            self._offsets[name] = self._handle.tell()
            self._linenos[name] = self._linenos.get(name, 0) + 1
            self._tails.pop(name, None)
            self._tail_skips.pop(name, None)
        else:
            self._sources[fingerprint] = "memory"
        return True

    def _open_writer(self):
        """Open the writer file for append, healing a torn trailing line.

        A run killed mid-write can leave the file without a final newline;
        appending straight after would concatenate the next row onto the
        unterminated tail and silently lose both on reload.  Two cases:
        a tail that is a *complete* JSON row (killed between the write and
        its newline) is terminated in place -- the loader already indexed
        it, so deleting it would lose a point forever (dedup stops it from
        being rewritten).  A tail that is a genuine fragment holds no
        recoverable row and is truncated away, so the file stays clean
        JSONL and later loads never trip over a permanent mid-file scar.
        """

        path = self.writer_path
        if path.exists():
            with open(path, "rb+") as existing:
                existing.seek(0, os.SEEK_END)
                if existing.tell() > 0:
                    existing.seek(-1, os.SEEK_END)
                    if existing.read(1) != b"\n":
                        # Rare heal path: inspect the unterminated tail.
                        existing.seek(0)
                        content = existing.read()
                        tail = content[content.rfind(b"\n") + 1:]
                        try:
                            complete = isinstance(json.loads(tail), dict)
                        except json.JSONDecodeError:
                            complete = False
                        if complete:
                            existing.write(b"\n")
                        else:
                            existing.truncate(content.rfind(b"\n") + 1)
        return open(path, "a")

    def set_writer(self, writer: str) -> None:
        """Redirect future appends to ``<writer>.jsonl`` (rows stay loaded).

        The writer file choice is independent of the rows already indexed,
        so a sharded runner can retarget an open store without re-reading
        the directory.
        """

        if writer != self.writer:
            self.close()
            self.writer = writer

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def merge_from(self, other: "ExperimentStore") -> int:
        """Copy every row of ``other`` not already present; returns the count.

        Used to fold shard outputs produced elsewhere into a master store
        (for same-filesystem shards, dropping the shard files into the store
        directory achieves the same thing with no copy).
        """

        added = 0
        for row in other.rows():
            if self.add(row):
                added += 1
        return added

    def records(self) -> List[CachedRecord]:
        """Every stored point as a record view, in insertion order."""

        return [row_to_record(row) for row in self.rows()]

"""Persistent, append-only storage of evaluated design points.

An :class:`ExperimentStore` is a directory of JSONL files, one JSON object
per evaluated point, keyed by the point's stable fingerprint
(:func:`repro.io.fingerprint.design_point_fingerprint`).  The format is
designed around three operational needs of long sweeps:

* **Resume after kill.**  Rows are appended and flushed one at a time; a
  process killed mid-write leaves at most one truncated trailing line, which
  the loader skips.  Re-running the same space recomputes only the missing
  points.
* **Dedup.**  The first row wins for any fingerprint; re-adding an evaluated
  point is a no-op, so overlapping spaces (Figure 6 and the L6 half of
  Figure 7, shards with redundant boundaries, ...) never duplicate work or
  data.
* **Shard merge.**  Every writer appends to its own file
  (``results.jsonl``, ``shard-1of4.jsonl``, ...); opening the directory
  merges all ``*.jsonl`` files, so combining shard outputs is ``cp``.

Rows are plain JSON; floats survive the round-trip bit-exactly (Python's
``json`` renders floats with ``repr`` and parses them back to the same
double), which is what keeps store-routed figure sweeps golden-identical to
direct runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.dse.space import DesignPoint, point_from_spec

#: Default writer file name (shard writers use ``shard-<i>of<N>.jsonl``).
DEFAULT_WRITER = "results"


class CachedResult:
    """Attribute view over stored result metrics.

    Exposes the subset of :class:`~repro.sim.results.SimulationResult` that
    reports, figures and strategies read, backed by the flat metrics
    dictionary of a store row.  Values are the exact floats of the original
    simulation (JSON round-trips doubles losslessly).
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: Dict[str, float]) -> None:
        self._metrics = metrics

    @property
    def duration(self) -> float:
        return self._metrics["duration_us"]

    @property
    def duration_seconds(self) -> float:
        return self._metrics["duration_s"]

    @property
    def fidelity(self) -> float:
        return self._metrics["fidelity"]

    @property
    def log_fidelity(self) -> float:
        return self._metrics["log_fidelity"]

    @property
    def computation_seconds(self) -> float:
        return self._metrics["computation_s"]

    @property
    def communication_seconds(self) -> float:
        return self._metrics["communication_s"]

    @property
    def max_motional_energy(self) -> float:
        return self._metrics["max_motional_energy"]

    @property
    def mean_background_error(self) -> float:
        return self._metrics["mean_background_error"]

    @property
    def mean_motional_error(self) -> float:
        return self._metrics["mean_motional_error"]

    @property
    def num_shuttles(self) -> int:
        return int(self._metrics["num_shuttles"])

    @property
    def num_ms_gates(self) -> int:
        return int(self._metrics["num_ms_gates"])

    def as_dict(self) -> Dict[str, float]:
        """The stored metrics (same keys as ``SimulationResult.as_dict``)."""

        return dict(self._metrics)


class CachedRecord:
    """Record view over one store row, interchangeable with ExperimentRecord.

    Exposes ``application``, ``config``, ``result``, ``program_size``,
    ``num_shuttles`` and ``as_row()`` exactly like
    :class:`~repro.toolflow.runner.ExperimentRecord`, so sweep and figure
    drivers do not care whether a point was computed in this process or
    replayed from disk.
    """

    __slots__ = ("point", "application", "result", "program_size", "num_shuttles")

    def __init__(self, point: DesignPoint, application: str,
                 metrics: Dict[str, float],
                 program_size: int, num_shuttles: int) -> None:
        self.point = point
        # The circuit's own name (e.g. "qft64"), which can differ from the
        # suite key the point addresses it by (e.g. "QFT").
        self.application = application
        self.result = CachedResult(metrics)
        self.program_size = program_size
        self.num_shuttles = num_shuttles

    @property
    def config(self):
        return self.point.config

    @property
    def fidelity(self) -> float:
        return self.result.fidelity

    @property
    def duration_seconds(self) -> float:
        return self.result.duration_seconds

    def as_row(self) -> Dict[str, object]:
        row = {
            "application": self.application,
            "topology": self.config.topology,
            "capacity": self.config.trap_capacity,
            "gate": self.config.gate,
            "reorder": self.config.reorder,
            "buffer": self.config.buffer_ions,
            "program_ops": self.program_size,
            "shuttles": self.num_shuttles,
        }
        row.update(self.result.as_dict())
        return row


def row_to_record(row: Dict[str, object]) -> CachedRecord:
    """Rebuild a record view from one stored row."""

    return CachedRecord(
        point=point_from_spec(row["point"]),
        application=row["application"],
        metrics=row["metrics"],
        program_size=row["program_ops"],
        num_shuttles=row["shuttles"],
    )


def record_to_row(fingerprint: str, point: DesignPoint, record) -> Dict[str, object]:
    """Serialise one evaluated point (live or cached record) to a store row."""

    from repro.io.serialization import SCHEMA_VERSION

    return {
        "schema_version": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "point": point.spec(),
        "application": record.application,
        "program_ops": record.program_size,
        "shuttles": record.num_shuttles,
        "metrics": record.result.as_dict(),
    }


class ExperimentStore:
    """Append-only on-disk store of evaluated design points.

    ``directory=None`` gives a purely in-memory store with the same API --
    the sweep drivers always route through a store, persistent or not.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 writer: str = DEFAULT_WRITER) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.writer = writer
        self._rows: Dict[str, Dict] = {}
        self._sources: Dict[str, str] = {}
        self._handle = None
        self.skipped_lines = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load()

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        from repro.io.serialization import check_schema_version

        for path in sorted(self.directory.glob("*.jsonl")):
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        # A kill mid-append leaves a truncated trailing line;
                        # every complete row before it is still valid.
                        self.skipped_lines += 1
                        continue
                    check_schema_version(row, source=str(path))
                    fingerprint = row.get("fingerprint")
                    if not fingerprint or fingerprint in self._rows:
                        continue
                    self._rows[fingerprint] = row
                    self._sources[fingerprint] = path.name

    def reload(self) -> None:
        """Re-read the directory (pick up rows appended by other writers)."""

        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._rows.clear()
        self._sources.clear()
        self.skipped_lines = 0
        if self.directory is not None:
            self._load()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._rows

    def get(self, fingerprint: str) -> Optional[Dict]:
        """The stored row for a fingerprint, or ``None``."""

        return self._rows.get(fingerprint)

    def rows(self) -> Iterator[Dict]:
        """All rows in load/insertion order."""

        return iter(self._rows.values())

    def sorted_rows(self) -> List[Dict]:
        """All rows in fingerprint order (canonical for exports and diffs)."""

        return [self._rows[fp] for fp in sorted(self._rows)]

    def fingerprints(self) -> List[str]:
        return list(self._rows)

    def source_counts(self) -> Dict[str, int]:
        """Rows per originating file (``"memory"`` for unpersisted rows)."""

        counts: Dict[str, int] = {}
        for source in self._sources.values():
            counts[source] = counts.get(source, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    @property
    def writer_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{self.writer}.jsonl"

    def add(self, row: Dict) -> bool:
        """Append one row; returns ``False`` (no-op) if its point is present.

        Persistent stores write and flush the line immediately, so a kill
        between two points loses at most the in-flight row.
        """

        fingerprint = row["fingerprint"]
        if fingerprint in self._rows:
            return False
        self._rows[fingerprint] = row
        if self.directory is not None:
            if self._handle is None:
                self._handle = self._open_writer()
            self._handle.write(json.dumps(row, sort_keys=True) + "\n")
            self._handle.flush()
            self._sources[fingerprint] = self.writer_path.name
        else:
            self._sources[fingerprint] = "memory"
        return True

    def _open_writer(self):
        """Open the writer file for append, healing a torn trailing line.

        A run killed mid-write can leave the file without a final newline;
        appending straight after would concatenate the next row onto the
        torn fragment and silently lose it on reload.  Terminating the
        fragment keeps it skippable and the new row parseable.
        """

        path = self.writer_path
        if path.exists():
            with open(path, "rb") as existing:
                existing.seek(0, os.SEEK_END)
                if existing.tell() > 0:
                    existing.seek(-1, os.SEEK_END)
                    if existing.read(1) != b"\n":
                        with open(path, "a") as repair:
                            repair.write("\n")
        return open(path, "a")

    def set_writer(self, writer: str) -> None:
        """Redirect future appends to ``<writer>.jsonl`` (rows stay loaded).

        The writer file choice is independent of the rows already indexed,
        so a sharded runner can retarget an open store without re-reading
        the directory.
        """

        if writer != self.writer:
            self.close()
            self.writer = writer

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def merge_from(self, other: "ExperimentStore") -> int:
        """Copy every row of ``other`` not already present; returns the count.

        Used to fold shard outputs produced elsewhere into a master store
        (for same-filesystem shards, dropping the shard files into the store
        directory achieves the same thing with no copy).
        """

        added = 0
        for row in other.rows():
            if self.add(row):
                added += 1
        return added

    def records(self) -> List[CachedRecord]:
        """Every stored point as a record view, in insertion order."""

        return [row_to_record(row) for row in self.rows()]

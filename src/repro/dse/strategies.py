"""Pluggable search strategies over a design space.

Each strategy decides *which* points to evaluate (and in what order); the
:class:`~repro.dse.runner.DSERunner` decides *how* (store replay, gate
fan-out, worker pool, sharding).  All strategies are deterministic under a
fixed seed: randomness comes only from ``random.Random(seed)``, evaluation
results are independent of ``jobs``, and every tie breaks towards the
earlier candidate, so the same (space, strategy, seed) always explores the
same points and reports the same best.

* :class:`ExhaustiveGrid` -- every point, in enumeration order (the paper's
  figure sweeps; shardable).
* :class:`RandomSampling` -- a seeded subset of the grid (shardable).
* :class:`CoordinateDescent` -- greedy hill-climb: sweep one axis at a time
  from a seeded start, move to the best neighbour, repeat until a full round
  makes no progress.
* :class:`SuccessiveHalving` -- rank all candidates on a cheap scaled-down
  proxy suite, keep the top ``1/eta``, grow the proxy, and only evaluate the
  survivors at full scale.
* :class:`BayesianOptimization` -- surrogate-guided batch search
  (:class:`~repro.dse.adaptive.propose.BayesProposer`): seeded random
  initialisation, then expected-improvement/UCB batches under an
  incremental surrogate model, within a budget of a quarter of the grid.
* :class:`AdaptiveHalving` -- the multi-fidelity proxy ladder with
  surrogate-ranked promotion instead of a fixed eta
  (:class:`~repro.dse.adaptive.propose.AdaptiveHalvingProposer`).
* :class:`EHVISearch` / :class:`ParEGOSearch` -- multi-objective frontier
  search (:mod:`repro.dse.moo`): expected-hypervolume-improvement over one
  surrogate per objective, and the seeded random-weight Chebyshev
  scalarization baseline.  Both optimise a named *objective vector*
  (``--objectives fidelity,runtime``) and report the Pareto archive next
  to the scalar best.

Every strategy stamps its provenance (name, seed, multi-fidelity rung) into
the rows it persists (schema v3), so ``dse status --by-strategy`` can
attribute stored points.  The two adaptive strategies can additionally run
distributed through the propose/evaluate ledger (``repro dse dispatch
--strategy bayes``); the proposal sequence is identical either way.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dse.pareto import OBJECTIVES, best_record, objective_value
from repro.dse.space import AXES

#: CLI names of the built-in strategies.
STRATEGY_NAMES = ("grid", "random", "greedy", "halving", "bayes",
                  "adaptive-halving", "ehvi", "parego")

#: Strategies that run distributed through the propose/evaluate ledger.
ADAPTIVE_STRATEGY_NAMES = ("bayes", "adaptive-halving", "ehvi", "parego")

#: The multi-objective members of the family (vector-valued ingest).
MOO_STRATEGY_NAMES = ("ehvi", "parego")


@dataclass
class StrategyResult:
    """Outcome of one exploration run."""

    #: Name of the strategy that produced the result.
    strategy: str
    #: Every record evaluated (or replayed), in exploration order.
    records: List[object]
    #: The best record under the strategy's objective (None if all points
    #: belonged to other shards).
    best: Optional[object]
    #: Per-round trace (strategy-specific dictionaries, for reports).
    trace: List[Dict[str, object]] = field(default_factory=list)
    #: Pareto-archive records of a multi-objective run (stable candidate-key
    #: order); None for the scalar strategies.
    frontier: Optional[List[object]] = None

    @property
    def evaluated(self) -> List[object]:
        """Records excluding shard-foreign placeholders."""

        return [record for record in self.records if record is not None]


class Strategy:
    """Base class: a name, shardability, and a :meth:`run` over a runner."""

    name = "base"
    #: Whether the strategy's point set is independent of earlier results
    #: (only then can shards partition the work without seeing each other's
    #: evaluations).
    shardable = False

    def __init__(self, metric: str = "fidelity") -> None:
        if metric not in OBJECTIVES:
            raise ValueError(f"unknown objective {metric!r}; "
                             f"expected one of {OBJECTIVES}")
        self.metric = metric

    def run(self, runner) -> StrategyResult:  # pragma: no cover - interface
        raise NotImplementedError

    def provenance(self, *, rung: Optional[int] = None,
                   proxy_qubits: Optional[int] = None) -> Dict[str, object]:
        """The provenance stamp for rows this strategy asks to evaluate."""

        return {"strategy": self.name, "seed": getattr(self, "seed", None),
                "rung": rung, "proxy_qubits": proxy_qubits}

    def _result(self, records: List[object],
                trace: Optional[List[Dict[str, object]]] = None) -> StrategyResult:
        live = [record for record in records if record is not None]
        return StrategyResult(
            strategy=self.name,
            records=records,
            best=best_record(live, self.metric),
            trace=trace or [],
        )


class ExhaustiveGrid(Strategy):
    """Evaluate every point of the space, in enumeration order."""

    name = "grid"
    shardable = True

    def run(self, runner) -> StrategyResult:
        runner.provenance = self.provenance()
        records = runner.evaluate(list(runner.space.points()))
        return self._result(records)


class RandomSampling(Strategy):
    """Evaluate a seeded random subset of the grid.

    ``samples`` points are drawn without replacement and evaluated in
    enumeration order (so the executed batch is a sub-grid: deterministic,
    shardable, and maximally cache-friendly).
    """

    name = "random"
    shardable = True

    def __init__(self, samples: int, seed: int = 0, metric: str = "fidelity") -> None:
        super().__init__(metric)
        if samples < 1:
            raise ValueError("samples must be a positive integer")
        self.samples = samples
        self.seed = seed

    def run(self, runner) -> StrategyResult:
        runner.provenance = self.provenance()
        all_points = list(runner.space.points())
        rng = random.Random(self.seed)
        count = min(self.samples, len(all_points))
        chosen = sorted(rng.sample(range(len(all_points)), count))
        records = runner.evaluate([all_points[index] for index in chosen])
        trace = [{"round": 0, "sampled": count, "of": len(all_points)}]
        return self._result(records, trace)


class CoordinateDescent(Strategy):
    """Greedy hill-climb: optimise one axis at a time until converged.

    From a seeded start point, each round sweeps the axes in declaration
    order; for every axis the strategy evaluates all candidate values (other
    coordinates fixed) and moves to the best.  Converged when a full round
    moves nothing.  Already-evaluated points replay from the store, so the
    climb costs far fewer simulations than the grid whenever axes interact
    weakly.
    """

    name = "greedy"
    shardable = False

    def __init__(self, seed: int = 0, metric: str = "fidelity",
                 max_rounds: int = 10) -> None:
        super().__init__(metric)
        if max_rounds < 1:
            raise ValueError("max_rounds must be a positive integer")
        self.seed = seed
        self.max_rounds = max_rounds

    def run(self, runner) -> StrategyResult:
        runner.provenance = self.provenance()
        space = runner.space
        rng = random.Random(self.seed)
        coords = {axis: rng.choice(space.axis_values(axis)) for axis in AXES}

        all_records: List[object] = []
        trace: List[Dict[str, object]] = []
        current = runner.evaluate([space.point_for(coords)])[0]
        all_records.append(current)
        for round_index in range(self.max_rounds):
            moved = False
            for axis in AXES:
                values = space.axis_values(axis)
                if len(values) == 1:
                    continue
                candidates = []
                for value in values:
                    candidate = dict(coords)
                    candidate[axis] = value
                    candidates.append(space.point_for(candidate))
                records = runner.evaluate(candidates)
                all_records.extend(records)
                best_index = max(range(len(records)),
                                 key=lambda i: objective_value(records[i], self.metric))
                if values[best_index] != coords[axis]:
                    if objective_value(records[best_index], self.metric) > \
                            objective_value(current, self.metric):
                        coords[axis] = values[best_index]
                        current = records[best_index]
                        moved = True
                trace.append({"round": round_index, "axis": axis,
                              "value": coords[axis],
                              "score": objective_value(current, self.metric)})
            if not moved:
                break

        result = self._result(all_records, trace)
        result.best = current  # the climb's endpoint, not a global re-scan
        return result


class SuccessiveHalving(Strategy):
    """Rank candidates on a cheap scaled-down proxy, halve, then go full scale.

    Every architectural point is first scored with its application rebuilt at
    ``proxy_qubits`` (a structurally identical small-suite instance -- the
    16-qubit suites used throughout the tests and benches).  The top
    ``1/eta`` fraction survives; the proxy size doubles each rung; the final
    survivors are evaluated at the space's true size.  Proxy evaluations are
    ordinary design points, so they persist in the store and are shared
    across strategies and reruns.
    """

    name = "halving"
    shardable = False

    def __init__(self, seed: int = 0, metric: str = "fidelity", eta: int = 2,
                 proxy_qubits: int = 12, min_survivors: int = 1) -> None:
        super().__init__(metric)
        if eta < 2:
            raise ValueError("eta must be at least 2")
        if proxy_qubits < 8:
            raise ValueError("proxy_qubits must be at least 8 "
                             "(the smallest scaled suite)")
        if min_survivors < 1:
            raise ValueError("min_survivors must be positive")
        self.seed = seed
        self.eta = eta
        self.proxy_qubits = proxy_qubits
        self.min_survivors = min_survivors

    def run(self, runner) -> StrategyResult:
        space = runner.space
        candidates = list(space.points())
        full_sizes = {qubits for qubits in space.qubits}
        # The proxy ladder only makes sense below the true size; None means
        # "application default" (paper scale, 64-78 qubits).
        size_cap = min((qubits for qubits in full_sizes if qubits is not None),
                       default=None)

        all_records: List[object] = []
        trace: List[Dict[str, object]] = []
        size = self.proxy_qubits
        rung = 0
        while len(candidates) > self.min_survivors and \
                (size_cap is None or size < size_cap):
            proxies = [point.with_qubits(size) for point in candidates]
            runner.provenance = self.provenance(rung=rung, proxy_qubits=size)
            records = runner.evaluate(proxies)
            all_records.extend(records)
            ranked = sorted(range(len(candidates)),
                            key=lambda i: (-objective_value(records[i], self.metric), i))
            keep = max(self.min_survivors,
                       math.ceil(len(candidates) / self.eta))
            survivors = sorted(ranked[:keep])
            trace.append({"rung": rung, "proxy_qubits": size,
                          "candidates": len(candidates), "kept": keep})
            candidates = [candidates[i] for i in survivors]
            size *= 2
            rung += 1

        runner.provenance = self.provenance(rung=rung)
        finals = runner.evaluate(candidates)
        all_records.extend(finals)
        trace.append({"rung": rung, "proxy_qubits": None,
                      "candidates": len(candidates), "kept": len(candidates)})
        result = self._result(all_records, trace)
        result.best = best_record([r for r in finals if r is not None], self.metric)
        return result


class _ProposerStrategy(Strategy):
    """Shared driver for proposer-backed (adaptive) strategies.

    The strategy side is thin by design: :meth:`run` alternates the
    proposer's ``next_batch``/``ingest`` with the runner's ``evaluate``,
    which is *exactly* the loop :func:`repro.dse.adaptive.protocol.run_proposer`
    drives over the distributed ledger -- one proposer implementation, two
    executors, identical proposal sequences.
    """

    shardable = False

    def make_proposer(self, space):  # pragma: no cover - interface
        raise NotImplementedError

    def run(self, runner) -> StrategyResult:
        proposer = self.make_proposer(runner.space)
        records: List[object] = []
        trace: List[Dict[str, object]] = []
        # Latest record per candidate key: for multi-fidelity proposers the
        # last write is the full-scale rung, which is what best() names.
        key_record: Dict[object, object] = {}
        while True:
            batch = proposer.next_batch()
            if batch is None:
                break
            runner.provenance = self.provenance(
                rung=batch.rung, proxy_qubits=batch.proxy_qubits)
            evaluated = runner.evaluate(list(batch.points))
            proposer.ingest(batch, [objective_value(record, self.metric)
                                    for record in evaluated])
            for key, record in zip(batch.keys, evaluated):
                key_record[key] = record
            records.extend(evaluated)
            trace.append(proposer.trace_entry(batch))
        result = self._result(records, trace)
        best = proposer.best()
        if best is not None:
            result.best = key_record[best[0]]
        return result


class BayesianOptimization(_ProposerStrategy):
    """Surrogate-guided batch Bayesian optimization over the space.

    A seeded random initial batch, then batches of the best acquisition
    scorers (expected improvement by default) under an incremental
    surrogate (random-Fourier-feature ridge regression or a bagged tree
    ensemble), within an evaluation budget defaulting to a quarter of the
    grid.  Deterministic for a fixed seed, for any ``jobs`` value, and for
    distributed propose/evaluate runs.
    """

    name = "bayes"

    def __init__(self, seed: int = 0, metric: str = "fidelity",
                 batch_size: int = 4, max_evals: Optional[int] = None,
                 surrogate: str = "rff", acquisition: str = "ei") -> None:
        super().__init__(metric)
        self.seed = seed
        self.batch_size = batch_size
        self.max_evals = max_evals
        self.surrogate = surrogate
        self.acquisition = acquisition

    def make_proposer(self, space):
        from repro.dse.adaptive.propose import BayesProposer

        return BayesProposer(space, seed=self.seed, metric=self.metric,
                             batch_size=self.batch_size,
                             max_evals=self.max_evals,
                             surrogate=self.surrogate,
                             acquisition=self.acquisition)


class AdaptiveHalving(_ProposerStrategy):
    """Multi-fidelity proxy ladder with surrogate-ranked promotion.

    Like :class:`SuccessiveHalving`, candidates climb the scaled-proxy
    ladder -- but each rung's survivors are the candidates whose surrogate
    upper confidence bound still reaches the rung's best observed score
    (capped at half the rung, floored at ``min_survivors``), instead of a
    fixed ``1/eta`` fraction.
    """

    name = "adaptive-halving"

    def __init__(self, seed: int = 0, metric: str = "fidelity",
                 proxy_qubits: int = 12, surrogate: str = "trees",
                 min_survivors: int = 1) -> None:
        super().__init__(metric)
        self.seed = seed
        self.proxy_qubits = proxy_qubits
        self.surrogate = surrogate
        self.min_survivors = min_survivors

    def make_proposer(self, space):
        from repro.dse.adaptive.propose import AdaptiveHalvingProposer

        return AdaptiveHalvingProposer(space, seed=self.seed,
                                       metric=self.metric,
                                       proxy_qubits=self.proxy_qubits,
                                       surrogate=self.surrogate,
                                       min_survivors=self.min_survivors)


class _MOOProposerStrategy(Strategy):
    """Shared driver for the multi-objective proposer strategies.

    Identical loop shape to :class:`_ProposerStrategy` -- and to the
    distributed proposer of :func:`repro.dse.adaptive.protocol.run_proposer`
    -- except the ingested values are objective *vectors*
    (:func:`repro.dse.moo.objectives.objective_vector`), and the result
    carries the Pareto archive (``result.frontier``) next to the scalar
    best under the first objective.
    """

    shardable = False

    def __init__(self, objectives=None, seed: int = 0,
                 batch_size: int = 4, max_evals: Optional[int] = None,
                 surrogate: str = "rff") -> None:
        from repro.dse.moo import DEFAULT_OBJECTIVES, parse_objectives

        self.objectives = parse_objectives(objectives if objectives
                                           else DEFAULT_OBJECTIVES)
        super().__init__(self.objectives[0])
        self.seed = seed
        self.batch_size = batch_size
        self.max_evals = max_evals
        self.surrogate = surrogate

    def provenance(self, *, rung: Optional[int] = None,
                   proxy_qubits: Optional[int] = None) -> Dict[str, object]:
        stamp = super().provenance(rung=rung, proxy_qubits=proxy_qubits)
        stamp["objectives"] = list(self.objectives)
        return stamp

    def make_proposer(self, space):  # pragma: no cover - interface
        raise NotImplementedError

    def run(self, runner) -> StrategyResult:
        from repro.dse.moo import objective_vector

        proposer = self.make_proposer(runner.space)
        records: List[object] = []
        trace: List[Dict[str, object]] = []
        key_record: Dict[object, object] = {}
        while True:
            batch = proposer.next_batch()
            if batch is None:
                break
            runner.provenance = self.provenance(
                rung=batch.rung, proxy_qubits=batch.proxy_qubits)
            evaluated = runner.evaluate(list(batch.points))
            proposer.ingest(batch, [objective_vector(record, self.objectives)
                                    for record in evaluated])
            for key, record in zip(batch.keys, evaluated):
                key_record[key] = record
            records.extend(evaluated)
            trace.append(proposer.trace_entry(batch))
        result = self._result(records, trace)
        best = proposer.best()
        if best is not None:
            result.best = key_record[best[0]]
        result.frontier = [key_record[key]
                           for key, _ in proposer.frontier()]
        return result


class EHVISearch(_MOOProposerStrategy):
    """Expected-hypervolume-improvement frontier search.

    One surrogate per objective; each batch proposes the candidates whose
    sampled predictions add the most hypervolume to the current archive.
    Deterministic for a fixed seed, any ``jobs`` value, and distributed
    propose/evaluate runs.  Budget defaults to half the grid (frontier
    recovery needs more points than best-point search).
    """

    name = "ehvi"

    def make_proposer(self, space):
        from repro.dse.moo import EHVIProposer

        return EHVIProposer(space, seed=self.seed,
                            objectives=self.objectives,
                            batch_size=self.batch_size,
                            max_evals=self.max_evals,
                            surrogate=self.surrogate)


class ParEGOSearch(_MOOProposerStrategy):
    """Seeded random-weight Chebyshev scalarization (ParEGO baseline)."""

    name = "parego"

    def make_proposer(self, space):
        from repro.dse.moo import ParEGOProposer

        return ParEGOProposer(space, seed=self.seed,
                              objectives=self.objectives,
                              batch_size=self.batch_size,
                              max_evals=self.max_evals,
                              surrogate=self.surrogate)


def make_strategy(name: str, *, seed: int = 0, metric: str = "fidelity",
                  samples: Optional[int] = None,
                  proxy_qubits: int = 12,
                  batch_size: int = 4,
                  max_evals: Optional[int] = None,
                  surrogate: Optional[str] = None,
                  objectives=None) -> Strategy:
    """Build a strategy from its CLI name and knobs."""

    if name in MOO_STRATEGY_NAMES:
        if metric != "fidelity":
            # Mirror the --objectives-with-scalar-strategy error below: a
            # metric silently dropped would search objectives the caller
            # never asked for.
            partner = "runtime" if metric != "runtime" else "fidelity"
            raise ValueError(f"--metric does not apply to the "
                             f"multi-objective strategy {name!r}; name the "
                             f"objective vector with --objectives instead "
                             f"(e.g. --objectives {metric},{partner})")
        cls = EHVISearch if name == "ehvi" else ParEGOSearch
        return cls(objectives=objectives, seed=seed, batch_size=batch_size,
                   max_evals=max_evals, surrogate=surrogate or "rff")
    if objectives:
        raise ValueError(f"--objectives only applies to the multi-objective "
                         f"strategies {MOO_STRATEGY_NAMES}; "
                         f"use --metric with {name!r}")
    if name == "grid":
        return ExhaustiveGrid(metric=metric)
    if name == "random":
        if samples is None:
            raise ValueError("random sampling needs --samples")
        return RandomSampling(samples, seed=seed, metric=metric)
    if name == "greedy":
        return CoordinateDescent(seed=seed, metric=metric)
    if name == "halving":
        return SuccessiveHalving(seed=seed, metric=metric,
                                 proxy_qubits=proxy_qubits)
    if name == "bayes":
        return BayesianOptimization(seed=seed, metric=metric,
                                    batch_size=batch_size,
                                    max_evals=max_evals,
                                    surrogate=surrogate or "rff")
    if name == "adaptive-halving":
        return AdaptiveHalving(seed=seed, metric=metric,
                               proxy_qubits=proxy_qubits,
                               surrogate=surrogate or "trees")
    raise ValueError(f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}")

"""Hardware model of QCCD-based trapped-ion devices (paper Sections III-IV).

A QCCD device is a set of small ion traps interconnected by shuttling paths.
The model is split into:

* :mod:`~repro.hardware.ion` -- an individual ion (one physical qubit).
* :mod:`~repro.hardware.trap` -- a trapping zone holding a linear ion chain.
* :mod:`~repro.hardware.segment` / :mod:`~repro.hardware.junction` -- the
  shuttling-path elements ions travel through between traps.
* :mod:`~repro.hardware.topology` -- the device connectivity graph and path
  planning over it.
* :mod:`~repro.hardware.device` -- :class:`QCCDDevice`, the complete candidate
  architecture a compilation + simulation run targets.
* :mod:`~repro.hardware.builders` -- constructors for the topologies evaluated
  in the paper (linear ``L6``, grid ``G2x3``) and their generalisations.
"""

from repro.hardware.ion import Ion
from repro.hardware.trap import Trap
from repro.hardware.segment import Segment
from repro.hardware.junction import Junction
from repro.hardware.topology import Topology, PathStep, ShuttlePath
from repro.hardware.device import QCCDDevice, ReorderMethod
from repro.hardware.builders import (
    build_device,
    linear_topology,
    grid_topology,
    ring_topology,
)

__all__ = [
    "Ion",
    "Trap",
    "Segment",
    "Junction",
    "Topology",
    "PathStep",
    "ShuttlePath",
    "QCCDDevice",
    "ReorderMethod",
    "build_device",
    "linear_topology",
    "grid_topology",
    "ring_topology",
]

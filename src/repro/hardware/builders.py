"""Constructors for the device topologies evaluated in the paper.

Two concrete topologies appear in the evaluation (Section VIII.B):

* ``L6`` -- six traps in a line (the topology of Honeywell's QCCD system);
  adjacent traps are joined by a single segment and there are no junctions.
  Shuttles between non-adjacent traps must pass *through* the intermediate
  traps (Figure 4).
* ``G2x3`` -- six traps in a 2x3 grid (generalising Figure 2b): each column
  has a junction connected to the column's traps, and the junctions are joined
  along the row.  End-column junctions are 3-way (Y), interior ones 4-way (X).

Both generalise: ``linear_topology(n)`` and ``grid_topology(rows, cols)``;
``ring_topology(n)`` is provided as an extension point for ablations.

:func:`build_device` is the convenience entry point used throughout the
examples and the toolflow: it accepts a topology name such as ``"L6"``,
``"G2x3"`` or ``"R8"`` plus the architecture knobs and returns a ready
:class:`~repro.hardware.device.QCCDDevice`.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.hardware.device import QCCDDevice, ReorderMethod
from repro.hardware.junction import Junction
from repro.hardware.topology import Topology
from repro.hardware.trap import Trap
from repro.models.gate_times import GateImplementation
from repro.models.params import PhysicalModel

_LINEAR_RE = re.compile(r"^L(?P<n>\d+)$", re.IGNORECASE)
_GRID_RE = re.compile(r"^G(?P<rows>\d+)X(?P<cols>\d+)$", re.IGNORECASE)
_RING_RE = re.compile(r"^R(?P<n>\d+)$", re.IGNORECASE)


def linear_topology(num_traps: int, trap_capacity: int) -> Topology:
    """A line of ``num_traps`` traps joined by single segments (no junctions)."""

    if num_traps < 1:
        raise ValueError("need at least one trap")
    topology = Topology(name=f"L{num_traps}")
    for index in range(num_traps):
        topology.add_trap(Trap(index, trap_capacity, position=(float(index), 0.0)))
    for index in range(num_traps - 1):
        topology.connect(f"T{index}", f"T{index + 1}")
    topology.validate()
    return topology


def grid_topology(rows: int, cols: int, trap_capacity: int) -> Topology:
    """A ``rows x cols`` grid of traps joined through per-column junctions.

    Column ``c`` has junction ``Jc`` connected to every trap in that column;
    junctions are chained along the row (J0-J1-...-J{cols-1}).  With two rows
    this reproduces Figure 2b: end junctions have degree 3 (Y), interior
    junctions degree 4 (X).
    """

    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    if rows == 1 and cols == 1:
        raise ValueError("a 1x1 grid is a single trap; use linear_topology(1, ...)")
    topology = Topology(name=f"G{rows}x{cols}")
    for row in range(rows):
        for col in range(cols):
            trap_id = row * cols + col
            topology.add_trap(Trap(trap_id, trap_capacity,
                                   position=(float(col), float(row))))
    for col in range(cols):
        # degree = one segment per trap in the column + links to neighbouring
        # junctions (1 at the ends, 2 in the interior)
        junction_links = (1 if cols > 1 else 0) if col in (0, cols - 1) else 2
        if cols == 1:
            junction_links = 0
        degree = rows + junction_links
        topology.add_junction(Junction(col, degree,
                                       position=(float(col), (rows - 1) / 2.0)))
        for row in range(rows):
            trap_id = row * cols + col
            topology.connect(f"T{trap_id}", f"J{col}")
    for col in range(cols - 1):
        topology.connect(f"J{col}", f"J{col + 1}")
    topology.validate()
    return topology


def ring_topology(num_traps: int, trap_capacity: int) -> Topology:
    """A ring of traps: like the linear topology but with wrap-around.

    Not evaluated in the paper; provided for topology ablations.
    """

    if num_traps < 3:
        raise ValueError("a ring needs at least 3 traps")
    topology = Topology(name=f"R{num_traps}")
    for index in range(num_traps):
        topology.add_trap(Trap(index, trap_capacity, position=(float(index), 0.0)))
    for index in range(num_traps):
        topology.connect(f"T{index}", f"T{(index + 1) % num_traps}")
    topology.validate()
    return topology


def make_topology(name: str, trap_capacity: int) -> Topology:
    """Build a topology from a short name: ``L<n>``, ``G<r>x<c>`` or ``R<n>``."""

    match = _LINEAR_RE.match(name)
    if match:
        return linear_topology(int(match.group("n")), trap_capacity)
    match = _GRID_RE.match(name)
    if match:
        return grid_topology(int(match.group("rows")), int(match.group("cols")),
                             trap_capacity)
    match = _RING_RE.match(name)
    if match:
        return ring_topology(int(match.group("n")), trap_capacity)
    raise ValueError(
        f"unknown topology name {name!r}; expected 'L<n>', 'G<rows>x<cols>' or 'R<n>'"
    )


def build_device(topology: str = "L6", *, trap_capacity: int = 20,
                 gate="FM", reorder="GS", num_qubits: Optional[int] = None,
                 buffer_ions: int = 2,
                 model: Optional[PhysicalModel] = None) -> QCCDDevice:
    """Build a complete :class:`~repro.hardware.device.QCCDDevice`.

    Parameters
    ----------
    topology:
        Topology name (``"L6"``, ``"G2x3"``, ``"R8"``, ...).
    trap_capacity:
        Maximum ions per trap (the paper sweeps 14-34).
    gate:
        Two-qubit gate implementation: ``"AM1"``, ``"AM2"``, ``"PM"`` or ``"FM"``.
    reorder:
        Chain reordering method: ``"GS"`` or ``"IS"``.
    num_qubits:
        Ions to load (defaults to the device's usable capacity).
    buffer_ions:
        Free slots reserved per trap for incoming shuttles (default 2).
    model:
        Physical model parameters (defaults to the paper's values).
    """

    topo = make_topology(topology, trap_capacity)
    return QCCDDevice(
        topology=topo,
        gate=GateImplementation.from_name(gate),
        reorder=ReorderMethod.from_name(reorder),
        model=model or PhysicalModel(),
        num_qubits=num_qubits,
        buffer_ions=buffer_ions,
    )

"""QCCDDevice: a complete candidate architecture.

This is the object the compiler and simulator target.  It bundles the
communication topology, the per-trap capacity, the microarchitectural choices
(two-qubit gate implementation and chain-reordering method) and the physical
model parameters (Section V of the paper: "a QCCD architecture's parameters").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.hardware.topology import Topology
from repro.models.gate_times import GateImplementation
from repro.models.params import PhysicalModel


class ReorderMethod(enum.Enum):
    """Chain-reordering microarchitecture (Section IV.C, Figure 5).

    * ``GS`` -- gate-based swapping: a SWAP gate (three MS gates) exchanges the
      quantum states of two ions, so the physical chain order never changes.
    * ``IS`` -- ion swapping: adjacent ions are physically exchanged, one hop
      at a time, each hop costing a split, a 180-degree rotation and a merge.
    """

    GS = "GS"
    IS = "IS"

    @classmethod
    def from_name(cls, name) -> "ReorderMethod":
        """Parse ``name`` (enum member or case-insensitive string)."""

        if isinstance(name, cls):
            return name
        try:
            return cls[str(name).upper()]
        except KeyError:
            raise ValueError(f"unknown reorder method {name!r}; expected GS or IS")


@dataclass
class QCCDDevice:
    """A candidate QCCD architecture.

    Attributes
    ----------
    topology:
        The trap/segment/junction connectivity graph.
    gate:
        Two-qubit gate implementation (AM1, AM2, PM or FM).
    reorder:
        Chain reordering method (GS or IS).
    model:
        Physical performance and noise model parameters.
    num_qubits:
        Number of ions loaded into the device, i.e. the number of program
        qubits the device can host.  Defaults to the device's usable capacity.
    buffer_ions:
        Slots left free per trap for incoming shuttles when mapping
        (Section VI uses 2).
    name:
        Human-readable configuration name used in reports.
    """

    topology: Topology
    gate: GateImplementation = GateImplementation.FM
    reorder: ReorderMethod = ReorderMethod.GS
    model: PhysicalModel = field(default_factory=PhysicalModel)
    num_qubits: Optional[int] = None
    buffer_ions: int = 2
    name: str = ""

    def __post_init__(self) -> None:
        self.gate = GateImplementation.from_name(self.gate)
        self.reorder = ReorderMethod.from_name(self.reorder)
        self.model.validate()
        self.topology.validate()
        if self.buffer_ions < 0:
            raise ValueError("buffer_ions must be non-negative")
        usable = self.usable_capacity()
        if usable <= 0:
            raise ValueError(
                "device has no usable capacity once shuttle buffer slots are reserved"
            )
        if self.num_qubits is None:
            self.num_qubits = usable
        if self.num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if self.num_qubits > usable:
            raise ValueError(
                f"cannot load {self.num_qubits} ions: usable capacity is {usable} "
                f"({self.topology.num_traps} traps, buffer of {self.buffer_ions} per trap)"
            )
        if not self.name:
            capacity = max(t.capacity for t in self.topology.traps)
            self.name = (f"{self.topology.name}-cap{capacity}-"
                         f"{self.gate.value}-{self.reorder.value}")

    # ------------------------------------------------------------------ #
    def usable_capacity(self) -> int:
        """Ions the mapper may place initially (capacity minus buffer slots)."""

        return sum(trap.usable_capacity(self.buffer_ions) for trap in self.topology.traps)

    def total_capacity(self) -> int:
        """Physical maximum number of ions across all traps."""

        return self.topology.total_capacity()

    @property
    def trap_capacity(self) -> int:
        """Capacity of the (largest) trap; the paper uses uniform capacities."""

        return max(trap.capacity for trap in self.topology.traps)

    def trap_capacities(self) -> Dict[str, int]:
        """Mapping of trap name to capacity."""

        return {trap.name: trap.capacity for trap in self.topology.traps}

    def with_gate(self, gate) -> "QCCDDevice":
        """Copy of this device with a different two-qubit gate implementation."""

        return replace(self, gate=GateImplementation.from_name(gate), name="")

    def with_reorder(self, reorder) -> "QCCDDevice":
        """Copy of this device with a different chain-reordering method."""

        return replace(self, reorder=ReorderMethod.from_name(reorder), name="")

    def describe(self) -> str:
        """One-paragraph description used by reports and examples."""

        topo = self.topology
        return (
            f"QCCD device '{self.name}': {topo.num_traps} traps "
            f"(capacity {self.trap_capacity} ions each), "
            f"{len(topo.segments)} segments, {len(topo.junctions)} junctions, "
            f"{self.num_qubits} ions loaded, two-qubit gate {self.gate.value}, "
            f"chain reordering {self.reorder.value}."
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"QCCDDevice({self.name!r})"

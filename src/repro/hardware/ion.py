"""An individual trapped ion (one physical qubit).

Ions are identified by a small integer.  The compiler assigns program qubits
to ions; the placement state and the simulator track where each ion currently
sits (which trap, which position in the chain) and how much motional energy it
carries while in transit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Ion:
    """A physical qubit: one ion in the device.

    Attributes
    ----------
    ion_id:
        Device-wide unique identifier.
    species:
        Ion species label; purely informational (the models assume hyperfine
        qubits, e.g. Yb+ 171).
    program_qubit:
        The program qubit this ion currently holds, or ``None`` if it is a
        spare/ancilla ion.  With gate-based swapping the quantum state (and
        hence the program qubit) can move between ions.
    """

    ion_id: int
    species: str = "Yb171"
    program_qubit: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        if self.ion_id < 0:
            raise ValueError("ion_id must be non-negative")

    def __hash__(self) -> int:
        return hash(self.ion_id)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        holder = f"q{self.program_qubit}" if self.program_qubit is not None else "spare"
        return f"ion{self.ion_id}({holder})"

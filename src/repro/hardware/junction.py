"""A junction where shuttling paths meet.

Junctions let shuttling paths branch (grid topologies).  Crossing a junction
-- including any turn -- takes longer than moving through a straight segment,
and the time depends on the junction degree: three-way (Y) junctions are
faster to cross than four-way (X) junctions (paper Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Junction:
    """A branching point of the shuttling paths.

    Attributes
    ----------
    junction_id:
        Device-wide unique identifier.
    degree:
        Number of segments meeting at the junction (3 for Y, 4 for X).
    name:
        Node label used in the topology graph (e.g. ``"J1"``).
    position:
        Optional (x, y) coordinate used to decide which end of a trap's chain
        a path toward this junction attaches to.
    """

    junction_id: int
    degree: int
    name: str = ""
    position: Optional[Tuple[float, float]] = field(default=None)

    def __post_init__(self) -> None:
        if self.junction_id < 0:
            raise ValueError("junction_id must be non-negative")
        if self.degree < 2:
            raise ValueError("a junction needs at least 2 incident segments")
        if not self.name:
            object.__setattr__(self, "name", f"J{self.junction_id}")

    @property
    def kind(self) -> str:
        """``"Y"`` for 3-way junctions, ``"X"`` for 4-way and larger."""

        return "Y" if self.degree <= 3 else "X"

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.name}({self.kind}, degree={self.degree})"

"""A shuttling-path segment connecting two topology nodes.

Segments are the straight stretches of electrode-lined path an ion is moved
along between traps and junctions.  They are exclusive resources in the
simulator: no two ion shuttles may occupy the same segment at the same time
(Section VI, congestion management).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Segment:
    """A straight shuttling segment.

    Attributes
    ----------
    segment_id:
        Device-wide unique identifier.
    endpoint_a / endpoint_b:
        Names of the topology nodes (traps or junctions) the segment connects.
    length:
        Number of elementary move steps needed to traverse the segment.  The
        paper's Table I gives the time of moving through *one* segment, so the
        default length is 1; longer physical stretches can be modelled by a
        larger length.
    """

    segment_id: int
    endpoint_a: str
    endpoint_b: str
    length: int = 1

    def __post_init__(self) -> None:
        if self.segment_id < 0:
            raise ValueError("segment_id must be non-negative")
        if self.length < 1:
            raise ValueError("segment length must be at least 1")
        if self.endpoint_a == self.endpoint_b:
            raise ValueError("a segment must connect two distinct nodes")

    @property
    def name(self) -> str:
        """Canonical resource name used by the simulator."""

        return f"S{self.segment_id}"

    def other_end(self, node: str) -> str:
        """The endpoint opposite ``node``."""

        if node == self.endpoint_a:
            return self.endpoint_b
        if node == self.endpoint_b:
            return self.endpoint_a
        raise ValueError(f"{node!r} is not an endpoint of {self.name}")

    def connects(self, node_a: str, node_b: str) -> bool:
        """Whether this segment joins ``node_a`` and ``node_b`` (in either order)."""

        return {node_a, node_b} == {self.endpoint_a, self.endpoint_b}

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.name}({self.endpoint_a}-{self.endpoint_b})"

"""Device communication topology: traps, junctions and segments as a graph.

The topology answers the questions the compiler's router asks (Section VI):

* what is the shortest shuttling path between two traps,
* which segments and junctions does that path use (they become exclusive
  resources during simulation),
* which *intermediate traps* the path passes through -- in linear topologies a
  shuttle that crosses a trap must merge into and split back out of that
  trap's chain (Figure 4), which costs time and adds motional energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.hardware.junction import Junction
from repro.hardware.segment import Segment
from repro.hardware.trap import Trap


@dataclass(frozen=True)
class PathStep:
    """One hop of a shuttle path.

    ``kind`` is one of ``"segment"``, ``"junction"`` or ``"trap"``:

    * ``segment`` -- move through a straight segment (carries the Segment);
    * ``junction`` -- cross a junction, including the turn (carries the
      Junction);
    * ``trap`` -- pass *through* an intermediate trap, which requires merging
      into and splitting back out of its chain (carries the Trap).
    """

    kind: str
    element: object

    def __post_init__(self) -> None:
        if self.kind not in ("segment", "junction", "trap"):
            raise ValueError(f"unknown path step kind: {self.kind!r}")

    @property
    def resource_name(self) -> str:
        """Name of the exclusive resource this step occupies."""

        return self.element.name


@dataclass(frozen=True)
class ShuttlePath:
    """A planned route for one ion between two traps."""

    source: str
    destination: str
    steps: Tuple[PathStep, ...] = field(default=())

    @property
    def segments(self) -> List[Segment]:
        """Segments traversed, in order."""

        return [s.element for s in self.steps if s.kind == "segment"]

    @property
    def junctions(self) -> List[Junction]:
        """Junctions crossed, in order."""

        return [s.element for s in self.steps if s.kind == "junction"]

    @property
    def intermediate_traps(self) -> List[Trap]:
        """Traps passed through (merge + split required at each)."""

        return [s.element for s in self.steps if s.kind == "trap"]

    @property
    def num_segments(self) -> int:
        """Total elementary move steps (segment lengths summed)."""

        return sum(seg.length for seg in self.segments)

    @property
    def num_junctions(self) -> int:
        """Number of junction crossings."""

        return len(self.junctions)

    @property
    def num_intermediate_traps(self) -> int:
        """Number of traps the ion passes through."""

        return len(self.intermediate_traps)

    def __len__(self) -> int:
        return len(self.steps)


class Topology:
    """The device connectivity graph.

    Nodes are trap and junction names; edges are segments.  The class wraps a
    :class:`networkx.Graph` and keeps typed registries of the hardware
    elements so that path planning can return real objects rather than labels.
    """

    def __init__(self, name: str = "custom") -> None:
        self.name = name
        self.graph = nx.Graph()
        self._traps: Dict[str, Trap] = {}
        self._junctions: Dict[str, Junction] = {}
        self._segments: Dict[int, Segment] = {}
        self._next_segment_id = 0
        # Route caches: the graph is static once built, but every shuttle the
        # compiler emits asks for a path, a port side and the segments along
        # the way.  Cleared whenever the graph mutates.
        self._path_cache: Dict[Tuple[str, str], "ShuttlePath"] = {}
        self._port_cache: Dict[Tuple[str, str], str] = {}
        self._segment_cache: Dict[Tuple[str, str], Segment] = {}

    def _invalidate_route_caches(self) -> None:
        self._path_cache.clear()
        self._port_cache.clear()
        self._segment_cache.clear()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_trap(self, trap: Trap) -> Trap:
        """Register a trapping zone as a graph node."""

        if trap.name in self.graph:
            raise ValueError(f"duplicate node name {trap.name!r}")
        self._traps[trap.name] = trap
        self.graph.add_node(trap.name, kind="trap", element=trap)
        self._invalidate_route_caches()
        return trap

    def add_junction(self, junction: Junction) -> Junction:
        """Register a junction as a graph node."""

        if junction.name in self.graph:
            raise ValueError(f"duplicate node name {junction.name!r}")
        self._junctions[junction.name] = junction
        self.graph.add_node(junction.name, kind="junction", element=junction)
        self._invalidate_route_caches()
        return junction

    def connect(self, node_a: str, node_b: str, length: int = 1) -> Segment:
        """Add a segment between two existing nodes and return it."""

        for node in (node_a, node_b):
            if node not in self.graph:
                raise ValueError(f"unknown node {node!r}")
        if self.graph.has_edge(node_a, node_b):
            raise ValueError(f"segment {node_a}-{node_b} already exists")
        segment = Segment(self._next_segment_id, node_a, node_b, length)
        self._next_segment_id += 1
        self._segments[segment.segment_id] = segment
        self.graph.add_edge(node_a, node_b, element=segment, weight=length)
        self._invalidate_route_caches()
        return segment

    def validate(self) -> None:
        """Check structural invariants.

        * at least one trap exists;
        * the graph is connected (every trap can reach every other trap);
        * every junction's declared degree matches its number of incident
          segments.
        """

        if not self._traps:
            raise ValueError("topology has no traps")
        if len(self.graph) > 1 and not nx.is_connected(self.graph):
            raise ValueError("topology graph is not connected")
        for junction in self._junctions.values():
            actual = self.graph.degree[junction.name]
            if actual != junction.degree:
                raise ValueError(
                    f"junction {junction.name} declares degree {junction.degree} "
                    f"but has {actual} incident segments"
                )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def traps(self) -> Tuple[Trap, ...]:
        """All traps, ordered by trap id."""

        return tuple(sorted(self._traps.values(), key=lambda t: t.trap_id))

    @property
    def junctions(self) -> Tuple[Junction, ...]:
        """All junctions, ordered by junction id."""

        return tuple(sorted(self._junctions.values(), key=lambda j: j.junction_id))

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """All segments, ordered by segment id."""

        return tuple(self._segments[i] for i in sorted(self._segments))

    @property
    def num_traps(self) -> int:
        """Number of trapping zones."""

        return len(self._traps)

    def trap(self, name: str) -> Trap:
        """Look up a trap by node name."""

        try:
            return self._traps[name]
        except KeyError:
            raise KeyError(f"no trap named {name!r}") from None

    def trap_by_id(self, trap_id: int) -> Trap:
        """Look up a trap by numeric id."""

        for trap in self._traps.values():
            if trap.trap_id == trap_id:
                return trap
        raise KeyError(f"no trap with id {trap_id}")

    def junction(self, name: str) -> Junction:
        """Look up a junction by node name."""

        try:
            return self._junctions[name]
        except KeyError:
            raise KeyError(f"no junction named {name!r}") from None

    def is_trap(self, node: str) -> bool:
        """Whether ``node`` is a trap (as opposed to a junction)."""

        return node in self._traps

    def segment_between(self, node_a: str, node_b: str) -> Segment:
        """The segment joining two adjacent nodes."""

        key = (node_a, node_b)
        segment = self._segment_cache.get(key)
        if segment is not None:
            return segment
        data = self.graph.get_edge_data(node_a, node_b)
        if data is None:
            raise KeyError(f"no segment between {node_a!r} and {node_b!r}")
        segment = data["element"]
        self._segment_cache[key] = segment
        return segment

    def total_capacity(self) -> int:
        """Sum of trap capacities (maximum number of ions the device holds)."""

        return sum(trap.capacity for trap in self._traps.values())

    # ------------------------------------------------------------------ #
    # Path planning
    # ------------------------------------------------------------------ #
    def shortest_path(self, source: str, destination: str) -> ShuttlePath:
        """Shortest shuttling route between two traps.

        The path is shortest by total segment length (junction and
        intermediate-trap penalties are reflected later by the timing model;
        for the topologies in the paper both notions of shortest coincide).
        """

        key = (source, destination)
        path = self._path_cache.get(key)
        if path is not None:
            return path
        if source not in self._traps or destination not in self._traps:
            raise KeyError("shuttle paths must start and end at traps")
        if source == destination:
            path = ShuttlePath(source, destination, ())
        else:
            nodes = nx.shortest_path(self.graph, source, destination, weight="weight")
            path = self._path_from_nodes(nodes)
        self._path_cache[key] = path
        return path

    def all_shortest_paths(self, source: str, destination: str) -> List[ShuttlePath]:
        """Every shortest route between two traps (used by congestion-aware
        routing to pick an uncontended alternative)."""

        if source == destination:
            return [ShuttlePath(source, destination, ())]
        paths = nx.all_shortest_paths(self.graph, source, destination, weight="weight")
        return [self._path_from_nodes(nodes) for nodes in paths]

    def _path_from_nodes(self, nodes: List[str]) -> ShuttlePath:
        steps: List[PathStep] = []
        for index in range(len(nodes) - 1):
            here, there = nodes[index], nodes[index + 1]
            steps.append(PathStep("segment", self.segment_between(here, there)))
            if index + 1 < len(nodes) - 1:
                # an interior node: either a junction to cross or a trap to
                # pass through
                if self.is_trap(there):
                    steps.append(PathStep("trap", self._traps[there]))
                else:
                    steps.append(PathStep("junction", self._junctions[there]))
        return ShuttlePath(nodes[0], nodes[-1], tuple(steps))

    def port_side(self, trap_name: str, neighbor: str) -> str:
        """Which end of ``trap_name``'s ion chain the path toward ``neighbor``
        attaches to: ``"head"`` or ``"tail"``.

        The decision is geometric: a neighbour that sits at a smaller
        coordinate than the trap attaches to the chain head, a larger one to
        the tail.  For linear topologies this reproduces Figure 4 (ions enter
        on one side and must be reordered to the other side before continuing);
        traps with a single port always use the tail.
        """

        key = (trap_name, neighbor)
        side = self._port_cache.get(key)
        if side is not None:
            return side
        if trap_name not in self._traps:
            raise KeyError(f"no trap named {trap_name!r}")
        if not self.graph.has_edge(trap_name, neighbor):
            raise KeyError(f"{neighbor!r} is not adjacent to {trap_name!r}")
        trap = self._traps[trap_name]
        neighbor_element = self.graph.nodes[neighbor]["element"]
        trap_pos = trap.position
        neighbor_pos = getattr(neighbor_element, "position", None)
        if trap_pos is None or neighbor_pos is None:
            side = "tail"
        elif (neighbor_pos[0], neighbor_pos[1]) < (trap_pos[0], trap_pos[1]):
            side = "head"
        else:
            side = "tail"
        self._port_cache[key] = side
        return side

    def trap_distance(self, source: str, destination: str) -> int:
        """Shortest-path length (in segments) between two traps."""

        return self.shortest_path(source, destination).num_segments

    def distance_matrix(self) -> Dict[Tuple[str, str], int]:
        """All-pairs trap distances in segments (used by the mapper)."""

        matrix: Dict[Tuple[str, str], int] = {}
        names = [trap.name for trap in self.traps]
        for i, a in enumerate(names):
            matrix[(a, a)] = 0
            for b in names[i + 1:]:
                distance = self.trap_distance(a, b)
                matrix[(a, b)] = distance
                matrix[(b, a)] = distance
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Topology({self.name!r}, traps={len(self._traps)}, "
                f"junctions={len(self._junctions)}, segments={len(self._segments)})")

"""A trapping zone: holds a linear chain of ions with a maximum capacity.

Each trap in a QCCD device is equivalent to a small single-trap system
(Section IV.A): gates within the trap are fully connected, their duration and
fidelity depend on the chain length and on the ion separation, and the chain
accumulates motional energy when ions are split off, merged in, or shuttled
through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Trap:
    """Static description of a trapping zone.

    The *dynamic* chain contents (which ion sits where, current motional
    energy) are tracked by the compiler's placement state and by the
    simulator, not here: the same device object is reused across many
    compilations and simulations.

    Attributes
    ----------
    trap_id:
        Device-wide unique identifier.
    capacity:
        Maximum number of ions the trap can hold.
    name:
        Node label used in the topology graph (e.g. ``"T3"``).
    position:
        Optional (x, y) coordinate for layout-aware heuristics and plotting.
    """

    trap_id: int
    capacity: int
    name: str = ""
    position: Optional[Tuple[float, float]] = field(default=None)

    def __post_init__(self) -> None:
        if self.trap_id < 0:
            raise ValueError("trap_id must be non-negative")
        if self.capacity < 2:
            raise ValueError("a trap must hold at least 2 ions to run entangling gates")
        if not self.name:
            object.__setattr__(self, "name", f"T{self.trap_id}")

    def usable_capacity(self, buffer_ions: int) -> int:
        """Capacity available for initial mapping once ``buffer_ions`` slots
        are reserved for incoming shuttles (Section VI: 2 by default)."""

        if buffer_ions < 0:
            raise ValueError("buffer_ions must be non-negative")
        return max(0, self.capacity - buffer_ions)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.name}(cap={self.capacity})"

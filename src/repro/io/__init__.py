"""Serialization of toolflow artefacts.

Design-space exploration produces three kinds of artefacts a user wants to
persist and post-process outside Python: compiled programs, simulation
results, and figure bundles (sweep series).  This package serialises all three
to plain JSON so they can be diffed, archived next to EXPERIMENTS.md, or
plotted with external tooling.
"""

from repro.io.serialization import (
    program_to_dict,
    result_to_dict,
    save_json,
    load_json,
    figure_bundle_to_dict,
    records_to_json,
)

__all__ = [
    "program_to_dict",
    "result_to_dict",
    "save_json",
    "load_json",
    "figure_bundle_to_dict",
    "records_to_json",
]

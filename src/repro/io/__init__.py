"""Serialization of toolflow artefacts.

Design-space exploration produces three kinds of artefacts a user wants to
persist and post-process outside Python: compiled programs, simulation
results, and figure bundles (sweep series).  This package serialises all three
to plain JSON so they can be diffed, archived next to EXPERIMENTS.md, or
plotted with external tooling.
"""

from repro.io.serialization import (
    SCHEMA_VERSION,
    check_schema_version,
    config_from_dict,
    config_to_dict,
    figure_bundle_to_dict,
    load_json,
    model_from_dict,
    model_to_dict,
    program_from_dict,
    program_to_dict,
    records_to_json,
    result_to_dict,
    save_json,
)

__all__ = [
    "SCHEMA_VERSION",
    "check_schema_version",
    "config_from_dict",
    "config_to_dict",
    "figure_bundle_to_dict",
    "load_json",
    "model_from_dict",
    "model_to_dict",
    "program_from_dict",
    "program_to_dict",
    "records_to_json",
    "result_to_dict",
    "save_json",
]

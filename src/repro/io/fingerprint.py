"""Stable fingerprints for circuits, programs and results.

Fingerprints serve two purposes:

* **Cache keys.**  The compiled-program cache
  (:mod:`repro.toolflow.parallel`) keys compilations by the structural
  identity of the circuit plus the compile-relevant architecture knobs, so
  sweeps that revisit a design point reuse the earlier compilation.
* **Determinism regression.**  The golden-snapshot tests hash compiled
  programs and simulation metrics so that compiler/simulator rewrites can be
  checked for bit-identical behaviour against the seed implementation.

Every fingerprint is a SHA-256 hex digest over a canonical text rendering.
Floats are rendered with ``float.hex`` so the digests are sensitive to the
last bit -- "close enough" is not equal here by design.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.ir.circuit import Circuit
from repro.isa.program import QCCDProgram
from repro.sim.results import SimulationResult


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def circuit_fingerprint(circuit: Circuit) -> str:
    """Structural identity of a circuit (name, width and exact gate list).

    Memoised per circuit instance (keyed on the current gate count, so a
    circuit mutated through its builder API re-fingerprints): sweeps hash the
    same few suite circuits for every design point's cache key.
    """

    cached = circuit.__dict__.get("_fingerprint_cache")
    if cached is not None and cached[0] == len(circuit):
        return cached[1]
    parts = [circuit.name, str(circuit.num_qubits)]
    for gate in circuit.gates:
        params = ",".join(value.hex() for value in map(float, gate.params))
        parts.append(f"{gate.name}|{','.join(map(str, gate.qubits))}|{params}")
    digest = _digest("\n".join(parts))
    circuit.__dict__["_fingerprint_cache"] = (len(circuit), digest)
    return digest


def design_point_fingerprint(circuit: Circuit, config) -> str:
    """Stable identity of one design point: circuit structure x architecture.

    Keys the :class:`~repro.dse.store.ExperimentStore`: a point evaluated
    once is never recomputed, regardless of how its spec was written down
    (suite circuit object, ``--space`` JSON, shard split, ...).  The digest
    covers the circuit's structural fingerprint, every architecture knob and
    every physical-model constant (floats rendered with ``float.hex`` so two
    points are identical only when every model parameter is bit-identical).
    """

    import dataclasses

    def _flatten(prefix: str, value, parts) -> None:
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            for field in dataclasses.fields(value):
                _flatten(f"{prefix}.{field.name}", getattr(value, field.name), parts)
        elif isinstance(value, float):
            parts.append(f"{prefix}={value.hex()}")
        else:
            parts.append(f"{prefix}={value!r}")

    parts = [
        circuit_fingerprint(circuit),
        f"topology={config.topology}",
        f"trap_capacity={config.trap_capacity}",
        f"gate={config.gate}",
        f"reorder={config.reorder}",
        f"buffer_ions={config.buffer_ions}",
    ]
    _flatten("model", config.model, parts)
    return _digest("\n".join(parts))


def operation_signature(op) -> str:
    """Canonical one-line rendering of a primitive operation.

    Relies on the dataclass ``repr`` which lists every field in declaration
    order; it is stable across implementation details such as ``__slots__``.
    """

    return repr(op)


def program_fingerprint(program: QCCDProgram) -> str:
    """Digest of a compiled program: op sequence plus initial placement."""

    parts = [program.circuit_name, program.device_name]
    placement = program.placement
    parts.append(repr(sorted(placement.qubit_to_ion.items())))
    parts.append(repr(sorted(placement.ion_to_trap.items())))
    parts.append(repr(sorted(placement.trap_chains.items())))
    parts.extend(operation_signature(op) for op in program.operations)
    return _digest("\n".join(parts))


def result_metrics_hex(result: SimulationResult) -> Dict[str, object]:
    """The headline metrics of a result with floats rendered exactly.

    Used by the determinism regression tests: two results compare equal here
    only when every metric is bit-identical.
    """

    return {
        "duration": result.duration.hex(),
        "fidelity": result.fidelity.hex(),
        "log_fidelity": result.log_fidelity.hex(),
        "computation_time": result.computation_time.hex(),
        "communication_time": result.communication_time.hex(),
        "mean_background_error": result.mean_background_error.hex(),
        "mean_motional_error": result.mean_motional_error.hex(),
        "total_background_error": result.total_background_error.hex(),
        "total_motional_error": result.total_motional_error.hex(),
        "max_motional_energy": result.max_motional_energy.hex(),
        "final_trap_energies": {
            name: value.hex() for name, value in sorted(result.final_trap_energies.items())
        },
        "peak_occupancy": dict(sorted(result.peak_occupancy.items())),
        "trap_gate_busy_time": {
            name: value.hex() for name, value in sorted(result.trap_gate_busy_time.items())
        },
        "trap_comm_busy_time": {
            name: value.hex() for name, value in sorted(result.trap_comm_busy_time.items())
        },
        "op_counts": {kind.value: count for kind, count in sorted(
            result.op_counts.items(), key=lambda item: item[0].value)},
        "num_shuttles": result.num_shuttles,
        "num_ms_gates": result.num_ms_gates,
    }


def result_fingerprint(result: SimulationResult) -> str:
    """Digest of every headline metric of a simulation result."""

    return _digest(repr(sorted(result_metrics_hex(result).items(), key=lambda kv: kv[0])))

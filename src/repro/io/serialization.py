"""JSON serialisation of programs, results and sweep outputs.

The format is intentionally flat and stable:

* a compiled program becomes ``{"circuit", "device", "placement", "operations"}``
  with one dictionary per operation (kind, operands, annotations,
  dependencies);
* a simulation result becomes its headline metrics plus operation counts and
  per-trap energies;
* a figure bundle (the output of :func:`repro.toolflow.figures.figure6` etc.)
  becomes the same nested dictionaries with the non-serialisable
  ``ArchitectureConfig`` replaced by its name and fields.

Loading returns plain dictionaries -- the JSON files are an interchange
format, not a substitute for recompiling.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, List

from repro.isa.operations import (
    GateOp,
    IonSwapOp,
    JunctionCrossOp,
    MeasureOp,
    MergeOp,
    MoveOp,
    OpKind,
    SplitOp,
    SwapGateOp,
)
from repro.isa.program import InitialPlacement, QCCDProgram
from repro.models.params import (
    FidelityParams,
    HeatingParams,
    PhysicalModel,
    ShuttleTimes,
    SingleQubitParams,
)
from repro.sim.results import SimulationResult
from repro.toolflow.config import ArchitectureConfig
from repro.toolflow.runner import ExperimentRecord

#: Version stamped into every persisted payload (programs, results, figure
#: bundles, experiment-store rows).  Bump when a field changes meaning or is
#: removed, or when an addition carries semantics downstream tooling must be
#: able to detect (inert additions alone do not require one).  Loaders accept
#: any version up to and including this one (missing = 0, the pre-versioned
#: format).
#:
#: History: 1 = first versioned format; 2 = experiment-store rows may carry a
#: per-point ``wall_s`` timing (absent in v1 rows, which still load -- missing
#: timings are treated as unknown, never as zero; the bump is what lets
#: timing-aware tooling tell the two generations apart); 3 = experiment-store
#: rows may carry a ``provenance`` stamp (strategy name, seed, multi-fidelity
#: rung) and dispatch manifests may declare a coordination ``mode``
#: (``"shards"`` or ``"adaptive"`` propose/evaluate) -- v1/v2 artefacts still
#: load with provenance absent and mode defaulting to shards.
SCHEMA_VERSION = 3


def check_schema_version(payload: Dict, *, source: str = "payload") -> int:
    """Validate a payload's ``schema_version`` against what this build reads.

    Returns the payload's version (``0`` for pre-versioned artefacts, which
    are always accepted).  Raises ``ValueError`` for payloads written by a
    *newer* schema than this build understands -- silently misreading a field
    is worse than a loud failure.
    """

    version = payload.get("schema_version", 0)
    if not isinstance(version, int) or version < 0:
        raise ValueError(f"{source}: malformed schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"{source}: schema_version {version} is newer than the supported "
            f"version {SCHEMA_VERSION}; upgrade the toolflow to read it"
        )
    return version


def _jsonify(value):
    """Recursively convert dataclasses, enums and tuples to JSON-safe types."""

    if isinstance(value, Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {key: _jsonify(item) for key, item in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {_key_to_str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


def _key_to_str(key):
    if isinstance(key, Enum):
        return key.value
    return str(key) if not isinstance(key, (str, int, float, bool)) else key


# --------------------------------------------------------------------------- #
# Programs
# --------------------------------------------------------------------------- #
def program_to_dict(program: QCCDProgram) -> Dict:
    """Serialise a compiled program (operations, placement, metadata)."""

    operations: List[Dict] = []
    for op in program.operations:
        entry = {"kind": op.kind.value, "op_id": op.op_id,
                 "dependencies": list(op.dependencies)}
        for field in dataclasses.fields(op):
            if field.name in ("op_id", "dependencies"):
                continue
            entry[field.name] = _jsonify(getattr(op, field.name))
        operations.append(entry)
    return {
        "schema_version": SCHEMA_VERSION,
        "circuit": program.circuit_name,
        "device": program.device_name,
        "metadata": _jsonify(program.metadata),
        "placement": {
            "qubit_to_ion": {str(q): ion for q, ion in program.placement.qubit_to_ion.items()},
            "ion_to_trap": {str(i): trap for i, trap in program.placement.ion_to_trap.items()},
            "trap_chains": {trap: list(chain)
                            for trap, chain in program.placement.trap_chains.items()},
        },
        "num_operations": len(program),
        "op_counts": {kind.value: count for kind, count in program.op_counts().items()},
        "operations": operations,
    }


def program_from_dict(payload: Dict) -> QCCDProgram:
    """Rebuild a :class:`QCCDProgram` from :func:`program_to_dict` output.

    The inverse exists for offline verification (``repro check --program``)
    and program diffing; recompiling stays the canonical way to obtain a
    program.  Construction re-runs every ``__post_init__`` check, so a
    hand-edited payload fails here before the verifier ever sees it.
    """

    check_schema_version(payload, source="program payload")
    placement_payload = payload["placement"]
    placement = InitialPlacement(
        qubit_to_ion={int(q): ion
                      for q, ion in placement_payload["qubit_to_ion"].items()},
        ion_to_trap={int(i): trap
                     for i, trap in placement_payload["ion_to_trap"].items()},
        trap_chains={trap: tuple(chain)
                     for trap, chain in placement_payload["trap_chains"].items()},
    )
    operations = []
    for entry in payload["operations"]:
        fields = dict(entry)
        kind = fields.pop("kind")
        op_type = _OP_TYPES.get(kind)
        if op_type is None:
            raise ValueError(f"program payload: unknown operation kind {kind!r}")
        fields["dependencies"] = tuple(fields.get("dependencies", ()))
        for name in ("ions", "qubits"):
            if name in fields:
                fields[name] = tuple(fields[name])
        operations.append(op_type(**fields))
    return QCCDProgram(
        operations=operations,
        placement=placement,
        circuit_name=payload.get("circuit", "circuit"),
        device_name=payload.get("device", "device"),
        metadata=dict(payload.get("metadata") or {}),
    )


#: Operation kind tag -> concrete class, for :func:`program_from_dict`.
#: ``gate_1q``/``gate_2q`` are both :class:`GateOp`; the arity is derived
#: from the operand tuple, so the two tags share a constructor.
_OP_TYPES = {
    OpKind.GATE_1Q.value: GateOp,
    OpKind.GATE_2Q.value: GateOp,
    OpKind.SWAP_GATE.value: SwapGateOp,
    OpKind.MEASURE.value: MeasureOp,
    OpKind.SPLIT.value: SplitOp,
    OpKind.MOVE.value: MoveOp,
    OpKind.JUNCTION.value: JunctionCrossOp,
    OpKind.MERGE.value: MergeOp,
    OpKind.ION_SWAP.value: IonSwapOp,
}


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
def result_to_dict(result: SimulationResult, include_timeline: bool = False) -> Dict:
    """Serialise a simulation result's metrics (optionally with its timeline)."""

    payload = {
        "schema_version": SCHEMA_VERSION,
        "circuit": result.circuit_name,
        "device": result.device_name,
        "duration_us": result.duration,
        "duration_s": result.duration_seconds,
        "computation_s": result.computation_seconds,
        "communication_s": result.communication_seconds,
        "fidelity": result.fidelity,
        "log_fidelity": result.log_fidelity,
        "mean_background_error": result.mean_background_error,
        "mean_motional_error": result.mean_motional_error,
        "max_motional_energy": result.max_motional_energy,
        "num_shuttles": result.num_shuttles,
        "num_ms_gates": result.num_ms_gates,
        "op_counts": {kind.value: count for kind, count in result.op_counts.items()},
        "final_trap_energies": dict(result.final_trap_energies),
        "peak_occupancy": dict(result.peak_occupancy),
    }
    if include_timeline and result.timeline is not None:
        payload["timeline"] = [
            {"op_id": record.op_id, "kind": record.kind.value,
             "start": record.start, "finish": record.finish,
             "fidelity": record.fidelity}
            for record in result.timeline
        ]
    return payload


def records_to_json(records: Iterable[ExperimentRecord]) -> List[Dict]:
    """Serialise experiment records (one row per design point)."""

    rows = []
    for record in records:
        row = {
            "schema_version": SCHEMA_VERSION,
            "application": record.application,
            "config": _config_to_dict(record.config),
            "program_ops": record.program_size,
            "shuttles": record.num_shuttles,
            "result": result_to_dict(record.result),
        }
        rows.append(row)
    return rows


def _config_to_dict(config: ArchitectureConfig) -> Dict:
    return {
        "name": config.name,
        "topology": config.topology,
        "trap_capacity": config.trap_capacity,
        "gate": config.gate,
        "reorder": config.reorder,
        "buffer_ions": config.buffer_ions,
    }


# Embedded fragment: always nested inside a stamped payload (result/store
# rows), never written standalone.
def model_to_dict(model: PhysicalModel) -> Dict:  # repro: allow DT004
    """Serialise every physical-model constant (nested, by sub-model)."""

    return _jsonify(model)


def model_from_dict(payload: Dict) -> PhysicalModel:
    """Rebuild a :class:`PhysicalModel` from :func:`model_to_dict` output."""

    return PhysicalModel(
        shuttle=ShuttleTimes(**payload["shuttle"]),
        heating=HeatingParams(**payload["heating"]),
        fidelity=FidelityParams(**payload["fidelity"]),
        single_qubit=SingleQubitParams(**payload["single_qubit"]),
    )


# Embedded fragment: stamped by the store/result payloads that carry it.
def config_to_dict(config: ArchitectureConfig, *,  # repro: allow DT004
                   include_model: bool = False) -> Dict:
    """Serialise an architecture config, optionally with its physical model.

    The model is included wherever the dictionary must round-trip back to an
    equivalent config (the DSE experiment store); report-style outputs keep
    the compact model-free form.
    """

    payload = _config_to_dict(config)
    if include_model:
        payload["model"] = model_to_dict(config.model)
    return payload


def config_from_dict(payload: Dict) -> ArchitectureConfig:
    """Rebuild an :class:`ArchitectureConfig` from :func:`config_to_dict`."""

    model = (model_from_dict(payload["model"]) if "model" in payload
             else PhysicalModel())
    return ArchitectureConfig(
        topology=payload["topology"],
        trap_capacity=payload["trap_capacity"],
        gate=payload["gate"],
        reorder=payload["reorder"],
        buffer_ions=payload["buffer_ions"],
        model=model,
    )


# --------------------------------------------------------------------------- #
# Figure bundles
# --------------------------------------------------------------------------- #
def figure_bundle_to_dict(bundle: Dict) -> Dict:
    """Serialise a figure6/figure7/figure8 bundle (configs become dicts)."""

    payload = {"schema_version": SCHEMA_VERSION}
    for key, value in bundle.items():
        if isinstance(value, ArchitectureConfig):
            payload[key] = _config_to_dict(value)
        else:
            payload[key] = _jsonify(value)
    return payload


# --------------------------------------------------------------------------- #
# File I/O
# --------------------------------------------------------------------------- #
def save_json(payload, path) -> Path:
    """Write ``payload`` (any JSON-safe structure) to ``path``; returns the path."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
    return path


def load_json(path) -> Dict:
    """Read a JSON artefact written by :func:`save_json`."""

    with open(path) as handle:
        return json.load(handle)

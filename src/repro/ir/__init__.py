"""Quantum circuit intermediate representation (IR).

The IR mirrors what the paper's compiler consumes (Section V.A): a fully
unrolled sequence of single-qubit gates, two-qubit gates and measurement
operations with data (qubit) dependencies and no control flow.

Public surface:

* :class:`~repro.ir.gate.Gate` -- a single operation on one or two qubits.
* :class:`~repro.ir.circuit.Circuit` -- an ordered gate list plus helpers for
  counting, slicing and lowering to the trapped-ion native gate set.
* :class:`~repro.ir.dag.DependencyDAG` -- per-qubit data-dependency graph used
  by the earliest-ready-gate-first scheduler.
* :mod:`~repro.ir.qasm` -- a small OpenQASM 2.0 subset reader/writer so the
  toolflow can interface with external front ends (Qiskit, Cirq, ScaffCC).
"""

from repro.ir.gate import Gate, GateKind
from repro.ir.circuit import Circuit
from repro.ir.dag import DependencyDAG
from repro.ir import qasm

__all__ = ["Gate", "GateKind", "Circuit", "DependencyDAG", "qasm"]

"""Circuit: an ordered list of gates over ``num_qubits`` program qubits.

Circuits in this toolflow are always fully unrolled (Section VI of the paper):
no loops, no classical control.  The class therefore stays deliberately
simple -- an immutable-ish gate list with builder helpers, statistics used by
the experiment tables, and a lowering pass to the trapped-ion native set.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.ir.gate import Gate, GateKind


class Circuit:
    """A gate-level quantum program.

    Parameters
    ----------
    num_qubits:
        Number of program qubits.  Gates may only reference indices in
        ``[0, num_qubits)``.
    gates:
        Optional initial gate sequence.
    name:
        Optional human-readable name (used in reports and tables).
    """

    def __init__(self, num_qubits: int, gates: Optional[Iterable[Gate]] = None,
                 name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: List[Gate] = []
        for gate in gates or ():
            self.append(gate)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def append(self, gate: Gate) -> "Circuit":
        """Append ``gate`` after validating its qubit indices."""

        if max(gate.qubits) >= self.num_qubits:
            raise ValueError(
                f"gate {gate} references qubit >= num_qubits ({self.num_qubits})"
            )
        self._gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Sequence[float] = ()) -> "Circuit":
        """Convenience builder: ``circuit.add("cx", 0, 1)``."""

        return self.append(Gate(name, tuple(qubits), tuple(params)))

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append every gate in ``gates``."""

        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "Circuit", qubit_offset: int = 0) -> "Circuit":
        """Append another circuit, shifting its qubits by ``qubit_offset``."""

        if other.num_qubits + qubit_offset > self.num_qubits:
            raise ValueError("composed circuit does not fit")
        for gate in other.gates:
            self.append(Gate(gate.name,
                             tuple(q + qubit_offset for q in gate.qubits),
                             gate.params))
        return self

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Return a shallow copy (gates are immutable, so sharing is safe)."""

        return Circuit(self.num_qubits, self._gates, name or self.name)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""

        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    @property
    def num_gates(self) -> int:
        """Total gate count, including measurements."""

        return len(self._gates)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of entangling gates (the metric reported in Table II)."""

        return sum(1 for g in self._gates if g.is_two_qubit)

    @property
    def num_single_qubit_gates(self) -> int:
        """Number of single-qubit gates."""

        return sum(1 for g in self._gates if g.is_single_qubit)

    @property
    def num_measurements(self) -> int:
        """Number of measurement operations."""

        return sum(1 for g in self._gates if g.is_measurement)

    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names."""

        return dict(Counter(g.name for g in self._gates))

    def two_qubit_pairs(self) -> List[Tuple[int, int]]:
        """Ordered list of (q0, q1) pairs touched by entangling gates."""

        return [(g.qubits[0], g.qubits[1]) for g in self._gates if g.is_two_qubit]

    def interaction_counts(self) -> Dict[Tuple[int, int], int]:
        """Undirected interaction histogram ``{(min, max): count}``.

        This is what the mapper uses to estimate communication affinity
        between program qubits.
        """

        counts: Dict[Tuple[int, int], int] = defaultdict(int)
        for a, b in self.two_qubit_pairs():
            key = (a, b) if a < b else (b, a)
            counts[key] += 1
        return dict(counts)

    def qubits_used(self) -> List[int]:
        """Sorted list of qubit indices referenced by at least one gate."""

        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return sorted(used)

    def depth(self) -> int:
        """Circuit depth counting every gate as one time step."""

        frontier = [0] * self.num_qubits
        for gate in self._gates:
            if gate.kind is GateKind.BARRIER:
                level = max(frontier[q] for q in gate.qubits)
                for q in gate.qubits:
                    frontier[q] = level
                continue
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def two_qubit_depth(self) -> int:
        """Depth counting only entangling gates."""

        frontier = [0] * self.num_qubits
        for gate in self._gates:
            if not gate.is_two_qubit:
                continue
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def communication_distance_histogram(self) -> Dict[int, int]:
        """Histogram of |q0 - q1| over entangling gates.

        Used to characterise the communication pattern column of Table II
        (nearest neighbour, short range, long range, all distances).
        """

        histogram: Dict[int, int] = defaultdict(int)
        for a, b in self.two_qubit_pairs():
            histogram[abs(a - b)] += 1
        return dict(histogram)

    def mean_interaction_distance(self) -> float:
        """Average |q0 - q1| over entangling gates (0.0 if there are none)."""

        pairs = self.two_qubit_pairs()
        if not pairs:
            return 0.0
        return sum(abs(a - b) for a, b in pairs) / len(pairs)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def with_measurements(self) -> "Circuit":
        """Return a copy with a final measurement on every used qubit.

        If the circuit already measures a qubit, no duplicate is added.
        """

        measured = {g.qubits[0] for g in self._gates if g.is_measurement}
        result = self.copy()
        for qubit in self.qubits_used():
            if qubit not in measured:
                result.add("measure", qubit)
        return result

    def lowered(self) -> "Circuit":
        """Lower to the trapped-ion native set: {1q rotations, MS-class 2q}.

        The paper treats every two-qubit gate as one Molmer-Sorensen
        interaction plus single-qubit corrections (Section VII.A, [76]).  We
        therefore rewrite SWAP as three MS-class gates and leave every other
        recognised two-qubit name in place (they are all one MS each).
        """

        gates: List[Gate] = []
        for gate in self._gates:
            if gate.is_two_qubit and gate.name.lower() == "swap":
                a, b = gate.qubits
                gates.append(Gate("cx", (a, b)))
                gates.append(Gate("cx", (b, a)))
                gates.append(Gate("cx", (a, b)))
            else:
                gates.append(gate)
        result = Circuit(self.num_qubits, name=self.name)
        # Every gate is either taken from this (already validated) circuit or
        # references the same qubits, so skip the per-append range checks.
        result._gates = gates
        return result

    def remapped(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "Circuit":
        """Return a copy with qubit indices renumbered through ``mapping``."""

        new_n = num_qubits if num_qubits is not None else self.num_qubits
        return Circuit(new_n, (g.remap(mapping) for g in self._gates), self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Circuit(name={self.name!r}, qubits={self.num_qubits}, "
                f"gates={self.num_gates}, twoq={self.num_two_qubit_gates})")

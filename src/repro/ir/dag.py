"""Data-dependency DAG over a circuit's gate list.

Quantum IR has only data dependencies: two gates conflict exactly when they
share a qubit.  The scheduler (Section VI) needs, for every gate, the set of
gates that must complete first, and a way to walk the program in
"earliest ready gate first" order.  This module provides both.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.ir.circuit import Circuit


class DependencyDAG:
    """Gate-level dependency graph for a :class:`~repro.ir.circuit.Circuit`.

    Nodes are gate indices (positions in the circuit's gate list).  An edge
    ``i -> j`` means gate ``j`` uses a qubit last touched by gate ``i`` and
    therefore cannot start before ``i`` finishes.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        num_gates = len(circuit)
        # Dense index-keyed adjacency (every gate has an entry; most have one
        # or two edges) -- lists beat defaultdicts in this hot constructor.
        predecessors: List[List[int]] = [[] for _ in range(num_gates)]
        successors: List[List[int]] = [[] for _ in range(num_gates)]
        last_use: Dict[int, int] = {}
        for index, gate in enumerate(circuit):
            for qubit in gate.qubits:
                prev = last_use.get(qubit)
                if prev is not None:
                    predecessors[index].append(prev)
                    successors[prev].append(index)
                last_use[qubit] = index
        self._predecessors = predecessors
        self._successors = successors
        self._num_gates = num_gates

    # ------------------------------------------------------------------ #
    @property
    def num_gates(self) -> int:
        """Number of nodes (gates) in the DAG."""

        return self._num_gates

    def predecessors(self, index: int) -> Tuple[int, ...]:
        """Gate indices that must finish before gate ``index`` may start."""

        return tuple(self._predecessors[index])

    def successors(self, index: int) -> Tuple[int, ...]:
        """Gate indices that directly depend on gate ``index``."""

        return tuple(self._successors[index])

    def roots(self) -> List[int]:
        """Gates with no predecessors (ready at time zero)."""

        return [i for i in range(self._num_gates) if not self._predecessors[i]]

    def in_degrees(self) -> List[int]:
        """In-degree per gate index; useful for ready-list scheduling."""

        return [len(preds) for preds in self._predecessors]

    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[int]:
        """A topological order of gate indices (Kahn's algorithm).

        Ties are broken by picking the smallest ready index, which makes the
        result identical to the original gate list (dependencies always point
        backwards in program order) -- a useful invariant checked by tests.
        """

        in_degree = self.in_degrees()
        ready = [i for i in range(self._num_gates) if in_degree[i] == 0]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            node = heapq.heappop(ready)
            order.append(node)
            for succ in self._successors[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    heapq.heappush(ready, succ)
        if len(order) != self._num_gates:
            raise RuntimeError("dependency graph has a cycle; IR is malformed")
        return order

    def ready_frontier(self, completed: Set[int]) -> List[int]:
        """Gates whose predecessors are all in ``completed`` and that are not
        themselves completed.  This is the "ready list" of the earliest-ready-
        gate-first heuristic."""

        frontier = []
        for index in range(self._num_gates):
            if index in completed:
                continue
            if all(p in completed for p in self._predecessors[index]):
                frontier.append(index)
        return frontier

    def layers(self) -> List[List[int]]:
        """Partition gates into ASAP layers (all gates in a layer are
        mutually independent)."""

        level: Dict[int, int] = {}
        for index in self.topological_order():
            preds = self._predecessors[index]
            level[index] = 1 + max((level[p] for p in preds), default=-1)
        grouped: Dict[int, List[int]] = defaultdict(list)
        for index, lev in level.items():
            grouped[lev].append(index)
        return [sorted(grouped[lev]) for lev in sorted(grouped)]

    def critical_path_length(self, weights: Sequence[float] = None) -> float:
        """Length of the longest dependency chain.

        ``weights`` optionally gives a duration per gate index; the default
        counts every gate as 1.
        """

        if weights is None:
            weights = [1.0] * self._num_gates
        finish: Dict[int, float] = {}
        for index in self.topological_order():
            start = max((finish[p] for p in self._predecessors[index]), default=0.0)
            finish[index] = start + weights[index]
        return max(finish.values(), default=0.0)

    def iter_program_order(self) -> Iterator[int]:
        """Iterate gate indices in original program order."""

        return iter(range(self._num_gates))

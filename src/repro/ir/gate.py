"""Gate: the atomic unit of the circuit IR.

A gate records its name, the qubits it acts on and optional real parameters
(rotation angles).  The simulator only distinguishes three *kinds* of gates
(single-qubit, two-qubit, measurement), but keeping the original names allows
round-tripping through OpenQASM and makes debugging output readable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Tuple


class GateKind(enum.Enum):
    """Coarse classification used by the compiler and simulator."""

    SINGLE_QUBIT = "single_qubit"
    TWO_QUBIT = "two_qubit"
    MEASUREMENT = "measurement"
    BARRIER = "barrier"


#: Gate names recognised as single-qubit operations.
SINGLE_QUBIT_NAMES = frozenset(
    {"x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "u1", "u2", "u3", "id", "sx"}
)

#: Gate names recognised as two-qubit operations.  All of these lower to one
#: Molmer-Sorensen (MS) interaction plus single-qubit rotations on trapped-ion
#: hardware, so the simulator treats them identically.
TWO_QUBIT_NAMES = frozenset({"cx", "cnot", "cz", "ms", "xx", "rxx", "rzz", "swap", "cp", "cu1", "crz"})

#: Names recognised as measurement.
MEASUREMENT_NAMES = frozenset({"measure", "m"})

#: Two-qubit gates that are symmetric in their operands.
SYMMETRIC_TWO_QUBIT_NAMES = frozenset({"cz", "ms", "xx", "rxx", "rzz", "swap", "cp", "cu1", "crz"})


@lru_cache(maxsize=None)
def classify(name: str) -> GateKind:
    """Return the :class:`GateKind` for a gate ``name``.

    Raises ``ValueError`` for unknown names so that typos surface early
    instead of silently producing a zero-duration operation.  The result is
    memoised: circuits use a handful of distinct names but the compiler asks
    for classifications millions of times across a sweep.
    """

    lowered = name.lower()
    if lowered in SINGLE_QUBIT_NAMES:
        return GateKind.SINGLE_QUBIT
    if lowered in TWO_QUBIT_NAMES:
        return GateKind.TWO_QUBIT
    if lowered in MEASUREMENT_NAMES:
        return GateKind.MEASUREMENT
    if lowered == "barrier":
        return GateKind.BARRIER
    raise ValueError(f"unknown gate name: {name!r}")


@dataclass(frozen=True)
class Gate:
    """A single gate in the circuit IR.

    Parameters
    ----------
    name:
        Gate name, e.g. ``"h"``, ``"cx"``, ``"rz"``, ``"measure"``.
    qubits:
        Tuple of program-qubit indices the gate acts on.  One index for
        single-qubit gates and measurements, two for entangling gates.
    params:
        Optional tuple of real parameters (rotation angles, in radians).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        kind = classify(self.name)
        expected = 2 if kind is GateKind.TWO_QUBIT else 1
        if kind is GateKind.BARRIER:
            if not self.qubits:
                raise ValueError("barrier must name at least one qubit")
        elif len(self.qubits) != expected:
            raise ValueError(
                f"gate {self.name!r} expects {expected} qubit(s), got {len(self.qubits)}"
            )
        if kind is GateKind.TWO_QUBIT and self.qubits[0] == self.qubits[1]:
            raise ValueError(f"two-qubit gate {self.name!r} needs distinct qubits")
        if any(q < 0 for q in self.qubits):
            raise ValueError("qubit indices must be non-negative")

    @property
    def kind(self) -> GateKind:
        """The coarse classification of this gate."""

        return classify(self.name)

    @property
    def is_two_qubit(self) -> bool:
        """``True`` when the gate entangles two qubits."""

        return self.kind is GateKind.TWO_QUBIT

    @property
    def is_single_qubit(self) -> bool:
        """``True`` for single-qubit rotations/Cliffords."""

        return self.kind is GateKind.SINGLE_QUBIT

    @property
    def is_measurement(self) -> bool:
        """``True`` for measurement operations."""

        return self.kind is GateKind.MEASUREMENT

    @property
    def is_symmetric(self) -> bool:
        """``True`` when operand order does not matter (e.g. CZ, MS)."""

        return self.name.lower() in SYMMETRIC_TWO_QUBIT_NAMES

    def remap(self, mapping) -> "Gate":
        """Return a copy of the gate with qubits renumbered through ``mapping``.

        ``mapping`` may be a dict or any object supporting ``__getitem__``.
        """

        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        args = ", ".join(str(q) for q in self.qubits)
        if self.params:
            pars = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({pars}) q[{args}]"
        return f"{self.name} q[{args}]"

"""Minimal OpenQASM 2.0 reader / writer.

The paper's backend compiler "supports an OpenQASM interface which allows us
to easily interface with high-level language frontends like Cirq and ScaffCC"
(Section VIII.A).  This module implements the subset needed for that
interface: a single quantum register, a single classical register, the
standard-library gate names recognised by :mod:`repro.ir.gate`, and
measurements.  It is intentionally small -- a full OpenQASM grammar is out of
scope for the architectural study.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.ir.circuit import Circuit
from repro.ir.gate import Gate

_HEADER_RE = re.compile(r"OPENQASM\s+2(\.\d+)?\s*;")
_INCLUDE_RE = re.compile(r'include\s+"[^"]*"\s*;')
_QREG_RE = re.compile(r"qreg\s+(?P<name>\w+)\s*\[\s*(?P<size>\d+)\s*\]\s*;")
_CREG_RE = re.compile(r"creg\s+(?P<name>\w+)\s*\[\s*(?P<size>\d+)\s*\]\s*;")
_MEASURE_RE = re.compile(
    r"measure\s+(?P<qreg>\w+)\s*\[\s*(?P<qidx>\d+)\s*\]\s*->\s*(?P<creg>\w+)\s*\[\s*(?P<cidx>\d+)\s*\]\s*;"
)
_GATE_RE = re.compile(
    r"(?P<name>[a-zA-Z_][\w]*)\s*(\((?P<params>[^)]*)\))?\s+(?P<args>[^;]+);"
)
_ARG_RE = re.compile(r"(?P<reg>\w+)\s*\[\s*(?P<idx>\d+)\s*\]")


class QasmError(ValueError):
    """Raised when the OpenQASM text cannot be parsed by this subset reader."""


def _eval_param(text: str) -> float:
    """Evaluate a parameter expression such as ``pi/4`` or ``-2*pi/8``.

    Only numbers, ``pi``, ``+ - * /`` and parentheses are allowed.
    """

    cleaned = text.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[\d\.\seE\+\-\*/\(\)]+", cleaned):
        raise QasmError(f"unsupported parameter expression: {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {}))  # noqa: S307 - sanitised above
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"could not evaluate parameter {text!r}") from exc


def loads(text: str, name: str = "qasm") -> Circuit:
    """Parse OpenQASM 2.0 ``text`` into a :class:`~repro.ir.circuit.Circuit`."""

    qreg_size = 0
    qreg_name = None
    gates: List[Gate] = []

    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        if _HEADER_RE.match(line) or _INCLUDE_RE.match(line):
            continue
        match = _QREG_RE.match(line)
        if match:
            if qreg_name is not None:
                raise QasmError("only a single qreg is supported")
            qreg_name = match.group("name")
            qreg_size = int(match.group("size"))
            continue
        if _CREG_RE.match(line):
            continue
        match = _MEASURE_RE.match(line)
        if match:
            gates.append(Gate("measure", (int(match.group("qidx")),)))
            continue
        if line.startswith("barrier"):
            continue
        match = _GATE_RE.match(line)
        if match is None:
            raise QasmError(f"could not parse line: {raw_line!r}")
        gate_name = match.group("name").lower()
        params_text = match.group("params")
        params = tuple(
            _eval_param(p) for p in params_text.split(",")
        ) if params_text else ()
        qubits: List[int] = []
        for arg in _ARG_RE.finditer(match.group("args")):
            qubits.append(int(arg.group("idx")))
        if not qubits:
            raise QasmError(f"gate with no qubit operands: {raw_line!r}")
        gates.append(Gate(gate_name, tuple(qubits), params))

    if qreg_name is None:
        raise QasmError("no qreg declaration found")
    circuit = Circuit(qreg_size, name=name)
    for gate in gates:
        circuit.append(gate)
    return circuit


def load(path, name: str = None) -> Circuit:
    """Read a file and parse it with :func:`loads`."""

    with open(path) as handle:
        text = handle.read()
    return loads(text, name=name or str(path))


def dumps(circuit: Circuit) -> str:
    """Serialise a circuit as OpenQASM 2.0 text.

    Measurements are mapped to a classical register of the same size as the
    quantum register, with ``c[i] = measure(q[i])``.
    """

    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for gate in circuit.gates:
        if gate.is_measurement:
            qubit = gate.qubits[0]
            lines.append(f"measure q[{qubit}] -> c[{qubit}];")
            continue
        args = ",".join(f"q[{q}]" for q in gate.qubits)
        if gate.params:
            pars = ",".join(f"{p!r}" for p in gate.params)
            lines.append(f"{gate.name}({pars}) {args};")
        else:
            lines.append(f"{gate.name} {args};")
    return "\n".join(lines) + "\n"


def dump(circuit: Circuit, path) -> None:
    """Serialise ``circuit`` to ``path``."""

    with open(path, "w") as handle:
        handle.write(dumps(circuit))

"""QCCD instruction set: the primitive operations a compiled program contains.

The compiler lowers a circuit to a sequence of these primitives (the paper's
"executable with primitive QCCD instructions", Section V.A); the simulator
assigns each a duration, a set of exclusive hardware resources, a heating
effect and a fidelity contribution.
"""

from repro.isa.operations import (
    Operation,
    GateOp,
    SwapGateOp,
    MeasureOp,
    SplitOp,
    MoveOp,
    JunctionCrossOp,
    MergeOp,
    IonSwapOp,
    OpKind,
)
from repro.isa.program import QCCDProgram, InitialPlacement

__all__ = [
    "Operation",
    "GateOp",
    "SwapGateOp",
    "MeasureOp",
    "SplitOp",
    "MoveOp",
    "JunctionCrossOp",
    "MergeOp",
    "IonSwapOp",
    "OpKind",
    "QCCDProgram",
    "InitialPlacement",
]

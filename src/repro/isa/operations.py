"""Primitive QCCD operations.

Every operation carries:

* ``op_id`` -- its index in the compiled program;
* ``dependencies`` -- op ids that must complete before it may start (data
  dependencies on ions plus the per-trap chain-structure order the compiler
  assumed);
* enough *annotations* from compile time (chain length, ion separation, chain
  size before a split) for the simulator to evaluate the performance and noise
  models without re-deriving chain contents.

Operation classes:

========================  =====================================================
:class:`GateOp`           a single-qubit gate, two-qubit MS gate inside a trap
:class:`SwapGateOp`       a gate-based SWAP (3 MS gates) used for GS reordering
:class:`MeasureOp`        qubit measurement
:class:`SplitOp`          split one ion off a trap's chain
:class:`MoveOp`           move a split ion through one segment
:class:`JunctionCrossOp`  cross (and possibly turn at) a junction
:class:`MergeOp`          merge a travelling ion into a trap's chain
:class:`IonSwapOp`        physically exchange two adjacent ions (IS reordering)
========================  =====================================================

All operation classes are frozen dataclasses with ``slots=True``: a compiled
program holds tens of thousands of these, and slotted instances drop the
per-op ``__dict__`` (roughly 3x smaller, measured by
``benchmarks/bench_pipeline_scale.py``) and speed up field access in the
compiler and simulator hot loops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpKind(enum.Enum):
    """Classification used for counting and for the compute/communication
    time breakdown (Figure 6b)."""

    GATE_1Q = "gate_1q"
    GATE_2Q = "gate_2q"
    SWAP_GATE = "swap_gate"
    MEASURE = "measure"
    SPLIT = "split"
    MOVE = "move"
    JUNCTION = "junction"
    MERGE = "merge"
    ION_SWAP = "ion_swap"

    @property
    def is_communication(self) -> bool:
        """Whether the op exists only to move quantum state between traps.

        Gate-based swaps and physical ion swaps are communication overhead:
        they are inserted by the compiler for chain reordering, not requested
        by the application.
        """

        return self in (OpKind.SPLIT, OpKind.MOVE, OpKind.JUNCTION, OpKind.MERGE,
                        OpKind.ION_SWAP, OpKind.SWAP_GATE)


@dataclass(frozen=True, slots=True)
class Operation:
    """Base class for every primitive operation."""

    op_id: int
    dependencies: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        op_id = self.op_id
        if op_id < 0:
            raise ValueError("op_id must be non-negative")
        for dep in self.dependencies:
            if dep >= op_id:
                raise ValueError("dependencies must reference earlier operations")

    @property
    def kind(self) -> OpKind:
        """The operation's :class:`OpKind`; overridden by subclasses."""

        raise NotImplementedError

    @property
    def resources(self) -> Tuple[str, ...]:
        """Exclusive hardware resources the op occupies while executing."""

        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class GateOp(Operation):
    """A laser gate executed inside one trap.

    Attributes
    ----------
    trap:
        Name of the trap executing the gate.
    ions:
        Physical ion ids involved (1 or 2).
    qubits:
        Program qubits whose state the gate acts on (mirrors ``ions``).
    name:
        Original gate name from the IR (``"cx"``, ``"rz"``, ...).
    chain_length:
        Number of ions in the trap's chain when the gate executes (annotated
        by the compiler; drives FM gate time and the ``A(N)`` error term).
    ion_distance:
        Number of ions strictly between the two gate ions (two-qubit gates
        only; drives AM/PM gate times).
    """

    trap: str = ""
    ions: Tuple[int, ...] = ()
    qubits: Tuple[int, ...] = ()
    name: str = ""
    chain_length: int = 0
    ion_distance: int = 0

    def __post_init__(self) -> None:
        Operation.__post_init__(self)
        if not self.trap:
            raise ValueError("GateOp needs a trap")
        if len(self.ions) not in (1, 2):
            raise ValueError("GateOp acts on one or two ions")
        if len(self.ions) != len(self.qubits):
            raise ValueError("ions and qubits must have the same arity")
        if self.chain_length < len(self.ions):
            raise ValueError("chain_length smaller than the number of gate ions")
        if len(self.ions) == 2 and self.ion_distance > self.chain_length - 2:
            raise ValueError("ion_distance impossible for the annotated chain length")

    @property
    def is_two_qubit(self) -> bool:
        """Whether this is an entangling (MS) gate."""

        return len(self.ions) == 2

    @property
    def kind(self) -> OpKind:
        return OpKind.GATE_2Q if self.is_two_qubit else OpKind.GATE_1Q

    @property
    def resources(self) -> Tuple[str, ...]:
        return (self.trap,)


@dataclass(frozen=True, slots=True)
class SwapGateOp(Operation):
    """A gate-based SWAP (three MS gates) used for GS chain reordering.

    The swap exchanges the *quantum states* of two ions in the same trap; the
    physical chain order is unchanged, but the program-qubit-to-ion binding
    recorded by the compiler flips.
    """

    trap: str = ""
    ions: Tuple[int, int] = (0, 0)
    qubits: Tuple[Optional[int], Optional[int]] = (None, None)
    chain_length: int = 0
    ion_distance: int = 0

    def __post_init__(self) -> None:
        Operation.__post_init__(self)
        if not self.trap:
            raise ValueError("SwapGateOp needs a trap")
        if self.ions[0] == self.ions[1]:
            raise ValueError("SwapGateOp needs two distinct ions")
        if self.chain_length < 2:
            raise ValueError("chain_length must be at least 2")
        if self.ion_distance > self.chain_length - 2:
            raise ValueError("ion_distance impossible for the annotated chain length")

    #: Number of MS gates one SWAP decomposes into.
    MS_GATES_PER_SWAP = 3

    @property
    def kind(self) -> OpKind:
        return OpKind.SWAP_GATE

    @property
    def resources(self) -> Tuple[str, ...]:
        return (self.trap,)


@dataclass(frozen=True, slots=True)
class MeasureOp(Operation):
    """Measurement (state detection) of one ion."""

    trap: str = ""
    ion: int = 0
    qubit: int = 0

    def __post_init__(self) -> None:
        Operation.__post_init__(self)
        if not self.trap:
            raise ValueError("MeasureOp needs a trap")

    @property
    def kind(self) -> OpKind:
        return OpKind.MEASURE

    @property
    def resources(self) -> Tuple[str, ...]:
        return (self.trap,)


@dataclass(frozen=True, slots=True)
class SplitOp(Operation):
    """Split one ion off a trap's chain so it can be shuttled away.

    ``chain_size`` is the number of ions in the chain *before* the split; the
    heating model divides the chain's motional energy proportionally.
    """

    trap: str = ""
    ion: int = 0
    chain_size: int = 0
    side: str = "tail"

    def __post_init__(self) -> None:
        Operation.__post_init__(self)
        if not self.trap:
            raise ValueError("SplitOp needs a trap")
        if self.chain_size < 1:
            raise ValueError("chain_size must be at least 1")
        if self.side not in ("head", "tail"):
            raise ValueError("side must be 'head' or 'tail'")

    @property
    def kind(self) -> OpKind:
        return OpKind.SPLIT

    @property
    def resources(self) -> Tuple[str, ...]:
        return (self.trap,)


@dataclass(frozen=True, slots=True)
class MoveOp(Operation):
    """Move a travelling ion through one segment."""

    ion: int = 0
    segment: str = ""
    length: int = 1
    from_node: str = ""
    to_node: str = ""

    def __post_init__(self) -> None:
        Operation.__post_init__(self)
        if not self.segment:
            raise ValueError("MoveOp needs a segment")
        if self.length < 1:
            raise ValueError("length must be at least 1")

    @property
    def kind(self) -> OpKind:
        return OpKind.MOVE

    @property
    def resources(self) -> Tuple[str, ...]:
        return (self.segment,)


@dataclass(frozen=True, slots=True)
class JunctionCrossOp(Operation):
    """Cross a junction (including any turn)."""

    ion: int = 0
    junction: str = ""
    junction_degree: int = 3

    def __post_init__(self) -> None:
        Operation.__post_init__(self)
        if not self.junction:
            raise ValueError("JunctionCrossOp needs a junction")
        if self.junction_degree < 2:
            raise ValueError("junction_degree must be at least 2")

    @property
    def kind(self) -> OpKind:
        return OpKind.JUNCTION

    @property
    def resources(self) -> Tuple[str, ...]:
        return (self.junction,)


@dataclass(frozen=True, slots=True)
class MergeOp(Operation):
    """Merge a travelling ion into a trap's chain at one end."""

    trap: str = ""
    ion: int = 0
    side: str = "tail"

    def __post_init__(self) -> None:
        Operation.__post_init__(self)
        if not self.trap:
            raise ValueError("MergeOp needs a trap")
        if self.side not in ("head", "tail"):
            raise ValueError("side must be 'head' or 'tail'")

    @property
    def kind(self) -> OpKind:
        return OpKind.MERGE

    @property
    def resources(self) -> Tuple[str, ...]:
        return (self.trap,)


@dataclass(frozen=True, slots=True)
class IonSwapOp(Operation):
    """Physically exchange two adjacent ions (one hop of IS reordering).

    Each hop is a split (isolating the pair), a 180-degree rotation and a
    merge (Section IV.C, [63]); ``chain_size`` is the chain size before the
    hop and drives the heating bookkeeping.
    """

    trap: str = ""
    ions: Tuple[int, int] = (0, 0)
    chain_size: int = 0

    def __post_init__(self) -> None:
        Operation.__post_init__(self)
        if not self.trap:
            raise ValueError("IonSwapOp needs a trap")
        if self.ions[0] == self.ions[1]:
            raise ValueError("IonSwapOp needs two distinct ions")
        if self.chain_size < 2:
            raise ValueError("chain_size must be at least 2")

    @property
    def kind(self) -> OpKind:
        return OpKind.ION_SWAP

    @property
    def resources(self) -> Tuple[str, ...]:
        return (self.trap,)

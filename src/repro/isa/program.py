"""QCCDProgram: the compiled executable.

A program is the output of :func:`repro.compiler.compile_circuit`: an ordered
operation list with explicit dependencies, plus the initial placement of
program qubits onto physical ions and traps.  The order is a valid execution
order (every dependency points backwards); the simulator may overlap
operations that have no dependency and no resource conflict.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.isa.operations import OpKind, Operation


@dataclass(frozen=True)
class InitialPlacement:
    """Where everything starts.

    Attributes
    ----------
    qubit_to_ion:
        Program qubit index -> physical ion id.
    ion_to_trap:
        Physical ion id -> trap name holding it at time zero.
    trap_chains:
        Trap name -> tuple of ion ids in chain order (head to tail).
    """

    qubit_to_ion: Dict[int, int]
    ion_to_trap: Dict[int, str]
    trap_chains: Dict[str, Tuple[int, ...]]

    def __post_init__(self) -> None:
        ions_in_chains = [ion for chain in self.trap_chains.values() for ion in chain]
        if len(ions_in_chains) != len(set(ions_in_chains)):
            raise ValueError("an ion appears in more than one trap chain")
        chain_set = set(ions_in_chains)
        for ion, trap in self.ion_to_trap.items():
            if ion not in chain_set:
                raise ValueError(f"ion {ion} has a trap but no chain position")
            if ion not in self.trap_chains.get(trap, ()):
                raise ValueError(f"ion {ion} not in the chain of its trap {trap}")
        for qubit, ion in self.qubit_to_ion.items():
            if ion not in self.ion_to_trap:
                raise ValueError(f"qubit {qubit} mapped to unplaced ion {ion}")

    def trap_of_qubit(self, qubit: int) -> str:
        """Trap initially holding ``qubit``."""

        return self.ion_to_trap[self.qubit_to_ion[qubit]]

    def occupancy(self) -> Dict[str, int]:
        """Initial number of ions per trap."""

        return {trap: len(chain) for trap, chain in self.trap_chains.items()}


@dataclass
class QCCDProgram:
    """A compiled QCCD executable."""

    operations: List[Operation]
    placement: InitialPlacement
    circuit_name: str = "circuit"
    device_name: str = "device"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index, op in enumerate(self.operations):
            if op.op_id != index:
                raise ValueError(
                    f"operation at position {index} has op_id {op.op_id}; ids must be dense"
                )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def __getitem__(self, index: int) -> Operation:
        return self.operations[index]

    def op_counts(self) -> Dict[OpKind, int]:
        """Histogram of operation kinds."""

        return dict(Counter(op.kind for op in self.operations))

    def count(self, kind: OpKind) -> int:
        """Number of operations of a given kind."""

        return sum(1 for op in self.operations if op.kind is kind)

    @property
    def num_two_qubit_gates(self) -> int:
        """Application-level entangling gates (excludes reordering swaps)."""

        return self.count(OpKind.GATE_2Q)

    @property
    def num_shuttles(self) -> int:
        """Number of trap-to-trap ion shuttles (counted as splits that leave a
        trap toward another trap, i.e. every SplitOp)."""

        return self.count(OpKind.SPLIT)

    @property
    def num_communication_ops(self) -> int:
        """Number of operations that exist purely for communication."""

        return sum(1 for op in self.operations if op.kind.is_communication)

    def communication_summary(self) -> Dict[str, int]:
        """Compact summary used by reports and the regression tests."""

        counts = self.op_counts()
        return {
            "splits": counts.get(OpKind.SPLIT, 0),
            "moves": counts.get(OpKind.MOVE, 0),
            "merges": counts.get(OpKind.MERGE, 0),
            "junction_crossings": counts.get(OpKind.JUNCTION, 0),
            "swap_gates": counts.get(OpKind.SWAP_GATE, 0),
            "ion_swaps": counts.get(OpKind.ION_SWAP, 0),
        }

    def validate(self) -> None:
        """Structural sanity checks used by tests and by the simulator.

        Thin wrapper over :func:`repro.analyze.verifier.quick_validate` --
        the cheap structural subset of the static verifier (placement
        consistency, referenced-ion existence, dependency ranges) that every
        compile pays for.  The full symbolic replay lives behind
        :func:`repro.analyze.verify_program` / ``repro check``; this method
        stays the one entry point so there is a single source of truth for
        program legality.
        """

        from repro.analyze.verifier import quick_validate

        quick_validate(self).raise_if_errors(ValueError)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"QCCDProgram({self.circuit_name!r} on {self.device_name!r}, "
                f"{len(self.operations)} ops)")

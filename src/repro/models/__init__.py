"""Performance and noise models for QCCD hardware (paper Section VII).

Four model families are implemented, each in its own module:

* :mod:`~repro.models.gate_times` -- Molmer-Sorensen gate durations for the
  AM1, AM2, PM and FM pulse-modulation methods (Section VII.A).
* :mod:`~repro.models.shuttle_times` -- shuttling primitive durations
  (Table I) plus the configurable ion-rotation time used by physical ion
  swapping.
* :mod:`~repro.models.heating` -- the quanta-accounting motional heating model
  (Section VII.B, constants k1 and k2).
* :mod:`~repro.models.fidelity` -- the gate fidelity model
  ``F = 1 - Gamma*tau - A*(2*nbar + 1)`` (Section VII.C, equation 1) with the
  error attribution used by Figure 6g.

:mod:`~repro.models.params` groups every tunable constant in frozen
dataclasses so that experiments are reproducible and ablations are explicit.
"""

from repro.models.params import (
    FidelityParams,
    HeatingParams,
    ShuttleTimes,
    SingleQubitParams,
    PhysicalModel,
)
from repro.models.gate_times import (
    GateImplementation,
    gate_time,
    am1_gate_time,
    am2_gate_time,
    pm_gate_time,
    fm_gate_time,
)
from repro.models.heating import HeatingModel
from repro.models.fidelity import FidelityModel, GateErrorBreakdown

__all__ = [
    "FidelityParams",
    "HeatingParams",
    "ShuttleTimes",
    "SingleQubitParams",
    "PhysicalModel",
    "GateImplementation",
    "gate_time",
    "am1_gate_time",
    "am2_gate_time",
    "pm_gate_time",
    "fm_gate_time",
    "HeatingModel",
    "FidelityModel",
    "GateErrorBreakdown",
]

"""Gate fidelity model (paper Section VII.C, equation 1).

The fidelity of a Molmer-Sorensen gate executed in a chain of ``N`` ions with
motional energy ``nbar`` (quanta) and duration ``tau`` (microseconds) is

    F = 1 - Gamma * tau - A(N) * (2 * nbar + 1)

where ``Gamma`` is the trap's background heating rate and
``A(N) = a0 * N / ln(N)`` captures thermal laser-beam instabilities (the
perpendicular thermal motion of the beams relative to the chain).

Two error mechanisms fall out of the formula and are reported separately for
Figure 6g:

* *background* error: ``Gamma * tau`` -- grows with gate duration;
* *motional* error: ``A(N) * (2 * nbar + 1)`` -- grows with chain length and
  with the motional energy accumulated through shuttling.

Single-qubit gates and measurements use constant error rates (they do not use
the motional bus), configurable through :class:`~repro.models.params.FidelityParams`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.params import FidelityParams


@dataclass(frozen=True)
class GateErrorBreakdown:
    """Error attribution for one two-qubit gate."""

    #: Error from background heating of the trap during the gate (Gamma*tau).
    background: float
    #: Error from motional energy and laser-beam instability (A*(2*nbar+1)).
    motional: float

    @property
    def total(self) -> float:
        """Total gate error (1 - fidelity before clamping)."""

        return self.background + self.motional

    @property
    def fidelity(self) -> float:
        """Gate fidelity implied by the breakdown, clamped to [0, 1]."""

        return max(0.0, min(1.0, 1.0 - self.total))


class FidelityModel:
    """Evaluates equation (1) and the constant 1q/measurement error rates."""

    def __init__(self, params: FidelityParams = None) -> None:
        self.params = params or FidelityParams()
        self.params.validate()

    # ------------------------------------------------------------------ #
    def laser_instability(self, chain_length: int) -> float:
        """The scaling factor ``A(N) = a0 * N / ln(N)``.

        For chains of one ion the formula is singular; two-qubit gates never
        run in such chains, but the guard keeps the model total.
        """

        if chain_length < 2:
            raise ValueError("A(N) is defined for chains of at least 2 ions")
        return self.params.laser_instability_prefactor * chain_length / math.log(chain_length)

    def two_qubit_error(self, *, duration: float, chain_length: int,
                        motional_energy: float) -> GateErrorBreakdown:
        """Error breakdown of one MS gate.

        NOTE: the fused simulation engine (:mod:`repro.sim.engine`) inlines
        this formula (and the clamp of :meth:`two_qubit_fidelity`) in its hot
        loop; keep the two in sync when changing it.

        Parameters
        ----------
        duration:
            Gate time ``tau`` in microseconds.
        chain_length:
            Number of ions in the chain executing the gate.
        motional_energy:
            Chain motional energy ``nbar`` in quanta.
        """

        if duration < 0:
            raise ValueError("duration must be non-negative")
        if motional_energy < 0:
            raise ValueError("motional_energy must be non-negative")
        background = self.params.background_heating_rate * duration
        motional = self.laser_instability(chain_length) * (2.0 * motional_energy + 1.0)
        return GateErrorBreakdown(background=background, motional=motional)

    def two_qubit_fidelity(self, *, duration: float, chain_length: int,
                           motional_energy: float) -> float:
        """Fidelity of one MS gate, clamped to ``[min_fidelity, 1]``."""

        breakdown = self.two_qubit_error(duration=duration, chain_length=chain_length,
                                         motional_energy=motional_energy)
        return max(self.params.min_fidelity, min(1.0, 1.0 - breakdown.total))

    def single_qubit_fidelity(self) -> float:
        """Fidelity of a single-qubit gate (constant)."""

        return 1.0 - self.params.single_qubit_error

    def measurement_fidelity(self) -> float:
        """Fidelity of a measurement operation (constant)."""

        return 1.0 - self.params.measurement_error

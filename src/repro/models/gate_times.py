"""Two-qubit (Molmer-Sorensen) gate duration models (paper Section VII.A).

The paper considers four pulse-modulation methods.  With ``d`` the number of
ions *between* the two ions being entangled and ``N`` the total number of ions
in the chain (all durations in microseconds):

* AM1 (robust amplitude modulation, Wu et al. [59]):      ``tau = 100*d - 22``
* AM2 (fast amplitude modulation, Trout et al. [61]):      ``tau = 38*d + 10``
* PM  (phase modulation, Milne et al. [62]):               ``tau = 5*d + 160``
* FM  (frequency modulation, Leung et al. [40, 58]):       ``tau = max(13.33*N - 54, 100)``

AM and PM durations depend on the ion separation; FM duration depends only on
the chain length.  The AM1 formula goes non-physical (negative) for adjacent
ions (d=0), so we clamp every model to a minimum duration, which also reflects
the paper's statement that "extremely fast gates are somewhat sensitive to
noise".
"""

from __future__ import annotations

import enum

#: Minimum physical duration of any entangling gate, microseconds.  The FM
#: model already embeds a 100us floor; AM/PM formulas are clamped here so that
#: adjacent-ion AM1 gates (100*0 - 22 = -22us) stay physical.
MIN_GATE_TIME = 10.0

#: Floor of the FM gate duration (paper: "We assume a gate time of 100us for
#: all chains below 12 ions").
FM_MIN_GATE_TIME = 100.0


class GateImplementation(enum.Enum):
    """The four Molmer-Sorensen implementation methods studied in the paper."""

    AM1 = "AM1"
    AM2 = "AM2"
    PM = "PM"
    FM = "FM"

    @classmethod
    def from_name(cls, name) -> "GateImplementation":
        """Parse ``name`` (enum member, or case-insensitive string)."""

        if isinstance(name, cls):
            return name
        try:
            return cls[str(name).upper()]
        except KeyError:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(f"unknown gate implementation {name!r}; expected one of {valid}")

    @property
    def is_distance_dependent(self) -> bool:
        """Whether duration depends on the ion separation ``d``."""

        return self in (GateImplementation.AM1, GateImplementation.AM2, GateImplementation.PM)


def am1_gate_time(distance: int) -> float:
    """AM1 gate duration for ions separated by ``distance`` intermediate ions."""

    _check_distance(distance)
    return max(100.0 * distance - 22.0, MIN_GATE_TIME)


def am2_gate_time(distance: int) -> float:
    """AM2 gate duration for ions separated by ``distance`` intermediate ions."""

    _check_distance(distance)
    return max(38.0 * distance + 10.0, MIN_GATE_TIME)


def pm_gate_time(distance: int) -> float:
    """PM gate duration for ions separated by ``distance`` intermediate ions."""

    _check_distance(distance)
    return max(5.0 * distance + 160.0, MIN_GATE_TIME)


def fm_gate_time(chain_length: int) -> float:
    """FM gate duration for a chain of ``chain_length`` ions (distance independent)."""

    if chain_length < 2:
        raise ValueError("an entangling gate needs a chain of at least 2 ions")
    return max(13.33 * chain_length - 54.0, FM_MIN_GATE_TIME)


def gate_time(implementation, *, distance: int, chain_length: int) -> float:
    """Duration of a two-qubit MS gate.

    Parameters
    ----------
    implementation:
        A :class:`GateImplementation` (or its name).
    distance:
        Number of ions strictly between the two ions being entangled
        (adjacent ions have ``distance == 0``).
    chain_length:
        Total number of ions in the chain holding both ions.
    """

    impl = GateImplementation.from_name(implementation)
    if chain_length < 2:
        raise ValueError("an entangling gate needs a chain of at least 2 ions")
    if distance > chain_length - 2:
        raise ValueError(
            f"distance {distance} impossible in a chain of {chain_length} ions"
        )
    if impl is GateImplementation.AM1:
        return am1_gate_time(distance)
    if impl is GateImplementation.AM2:
        return am2_gate_time(distance)
    if impl is GateImplementation.PM:
        return pm_gate_time(distance)
    return fm_gate_time(chain_length)


def _check_distance(distance: int) -> None:
    if distance < 0:
        raise ValueError("distance must be non-negative")

"""Motional heating model (paper Section VII.B).

Each ion chain is modelled as a quantum oscillator whose motional energy is
tracked in units of quanta.  The accounting rules, copied from the paper:

* Every chain starts in the zero-energy state.
* **Split**: the chain's energy is divided between the two sub-chains in
  proportion to their ion counts (energy is conserved), then *each* sub-chain
  gains ``k1`` quanta.
* **Merge**: the merged chain's energy is the sum of the two parts, plus an
  additional ``k1`` quanta "to account for the energy needed to stop the
  chains and prevent collisions".
* **Move**: a shuttled ion picks up ``k2`` quanta per segment it traverses
  (and ``k_junction`` per junction crossing).

The model lives in its own class so the simulator, the compiler's cost
estimator and the tests all share one implementation.
"""

from __future__ import annotations

from typing import Tuple

from repro.models.params import HeatingParams


class HeatingModel:
    """Pure functions implementing the quanta-accounting rules.

    The model is stateless; chain energies are stored by the simulator (on
    trap/ion objects) and passed in explicitly.  This keeps the physics in one
    place and the state management in another.
    """

    def __init__(self, params: HeatingParams = None) -> None:
        self.params = params or HeatingParams()
        self.params.validate()

    # ------------------------------------------------------------------ #
    def split(self, chain_energy: float, chain_size: int,
              split_size: int) -> Tuple[float, float]:
        """Energies after splitting ``split_size`` ions off a chain.

        Parameters
        ----------
        chain_energy:
            Motional energy (quanta) of the chain before the split.
        chain_size:
            Number of ions in the chain before the split.
        split_size:
            Number of ions split off (typically 1).

        Returns
        -------
        (remaining_energy, split_energy):
            Energy of the chain left behind and of the split-off sub-chain.
        """

        if chain_size <= 0:
            raise ValueError("chain_size must be positive")
        if not 0 < split_size <= chain_size:
            raise ValueError("split_size must be in (0, chain_size]")
        if chain_energy < 0:
            raise ValueError("chain_energy must be non-negative")

        fraction = split_size / chain_size
        split_energy = chain_energy * fraction + self.params.k1
        if split_size == chain_size:
            # Splitting the whole chain off just relabels it; the "remaining"
            # chain is empty and carries no energy.
            return 0.0, split_energy
        remaining_energy = chain_energy * (1.0 - fraction) + self.params.k1
        return remaining_energy, split_energy

    def merge(self, chain_energy: float, incoming_energy: float) -> float:
        """Energy of a chain after merging an incoming sub-chain into it."""

        if chain_energy < 0 or incoming_energy < 0:
            raise ValueError("energies must be non-negative")
        return chain_energy + incoming_energy + self.params.k1

    def move(self, ion_energy: float, num_segments: int = 1) -> float:
        """Energy of a shuttled ion after traversing ``num_segments`` segments."""

        if ion_energy < 0:
            raise ValueError("ion_energy must be non-negative")
        if num_segments < 0:
            raise ValueError("num_segments must be non-negative")
        return ion_energy + self.params.k2 * num_segments

    def cross_junction(self, ion_energy: float, num_junctions: int = 1) -> float:
        """Energy of a shuttled ion after crossing ``num_junctions`` junctions."""

        if ion_energy < 0:
            raise ValueError("ion_energy must be non-negative")
        if num_junctions < 0:
            raise ValueError("num_junctions must be non-negative")
        return ion_energy + self.params.k_junction * num_junctions

    def idle(self, chain_energy: float, duration: float) -> float:
        """Background (anomalous) heating of a resting chain over ``duration`` us."""

        if duration < 0:
            raise ValueError("duration must be non-negative")
        return chain_energy + self.params.background_rate * duration

    # ------------------------------------------------------------------ #
    def shuttle_energy_cost(self, num_segments: int, num_junctions: int) -> float:
        """Total quanta a single shuttled ion accrues in transit (excluding the
        split/merge contributions, which depend on the chains involved)."""

        return self.params.k2 * num_segments + self.params.k_junction * num_junctions

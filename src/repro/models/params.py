"""Physical model parameters.

Every constant used by the performance and noise models lives here, in frozen
dataclasses with the paper's published values as defaults.  Constants the
paper does not print (background heating rate, laser-instability prefactor,
single-qubit gate characteristics, ion-rotation time for physical swapping)
are documented as calibration parameters; DESIGN.md records how their defaults
were chosen.

All times are in microseconds, all energies in motional quanta, and heating
rates in quanta (or error probability) per microsecond, so that products such
as ``Gamma * tau`` are dimensionless error probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ShuttleTimes:
    """Durations of shuttling primitives (paper Table I), in microseconds."""

    #: Move an ion through one straight segment.
    move_segment: float = 5.0
    #: Split one ion off an ion chain.
    split: float = 80.0
    #: Merge an ion into an ion chain.
    merge: float = 80.0
    #: Cross a three-way (Y) junction, including the turn.
    cross_y_junction: float = 100.0
    #: Cross a four-way (X) junction, including the turn.
    cross_x_junction: float = 120.0
    #: Physically rotate a pair of adjacent ions by 180 degrees (used by the
    #: ion-swapping (IS) chain-reordering method).  Not printed in the paper;
    #: Kaufmann et al. [63] report tens of microseconds.
    ion_rotation: float = 42.0

    def junction_time(self, degree: int) -> float:
        """Crossing time for a junction with ``degree`` incident segments."""

        if degree <= 3:
            return self.cross_y_junction
        return self.cross_x_junction

    def validate(self) -> None:
        """Raise ``ValueError`` if any duration is non-positive."""

        for name in ("move_segment", "split", "merge", "cross_y_junction",
                     "cross_x_junction", "ion_rotation"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class HeatingParams:
    """Motional heating constants (paper Section VII.B).

    The paper assumes heating rates an order of magnitude below Honeywell's
    measured <2 quanta/s and uses ``k1 = 0.1`` quanta per split/merge and
    ``k2 = 0.01`` quanta per segment traversed.
    """

    #: Quanta added to each sub-chain by a split, and to the merged chain by a
    #: merge.
    k1: float = 0.1
    #: Quanta added to a shuttled ion per segment it traverses.
    k2: float = 0.01
    #: Quanta added per junction crossing.  The paper folds junction heating
    #: into the per-segment term; we keep it separate but default it to the
    #: same value so the published model is recovered.
    k_junction: float = 0.01
    #: Background (anomalous) heating of a resting chain, in quanta per
    #: microsecond.  Real traps heat continuously even without shuttling; this
    #: term couples execution time to gate error and is what degrades very
    #: large traps, whose long FM gates stretch the execution (Section IX.A's
    #: "motional energy hot spots").  The default of 4e-5 quanta/us
    #: (40 quanta/s) is a calibration choice documented in DESIGN.md.
    background_rate: float = 4.0e-5

    def validate(self) -> None:
        """Raise ``ValueError`` on negative constants."""

        if self.k1 < 0 or self.k2 < 0 or self.k_junction < 0 or self.background_rate < 0:
            raise ValueError("heating constants must be non-negative")


@dataclass(frozen=True)
class FidelityParams:
    """Constants of the gate fidelity model (paper equation 1).

    ``F = 1 - Gamma * tau - A(N) * (2 * nbar + 1)`` with
    ``A(N) = a0 * N / ln(N)``.

    The paper does not print ``Gamma`` or ``a0``.  Defaults are calibrated so
    that, on the L6/FM/GS reference configuration at the 15-25 ion sweet spot,

    * application fidelities land in the ranges of Figures 6c-6e (BV ~0.95+,
      Adder ~0.7-0.9, QAOA/Supremacy a few tenths, QFT/SquareRoot well below
      1e-2),
    * the background-heating term stays a small fraction of the motional term
      (Figure 6g reports a negligible background contribution), and
    * ``A`` grows by ~1.5x between 20 and 35 ions, as stated in Section IX.A
      (this follows directly from N/ln N).

    DESIGN.md documents the calibration procedure; both constants are plain
    fields so ablation studies can sweep them.
    """

    #: Background heating error rate of the trap, per microsecond of gate
    #: time (the ``Gamma`` of equation 1).
    background_heating_rate: float = 2.0e-7
    #: Prefactor of the laser-beam-instability term ``A = a0 * N / ln(N)``.
    laser_instability_prefactor: float = 6.0e-6
    #: Error of a single-qubit gate (constant; trapped-ion hyperfine 1q gates
    #: are extremely good, ~99.999%).
    single_qubit_error: float = 1.0e-5
    #: Error of a measurement operation (state preparation and measurement).
    measurement_error: float = 3.0e-3
    #: Fidelity floor: a gate can never be better than perfect nor worse than
    #: a completely depolarised two-qubit operation.
    min_fidelity: float = 0.0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range constants."""

        if self.background_heating_rate < 0:
            raise ValueError("background_heating_rate must be non-negative")
        if self.laser_instability_prefactor < 0:
            raise ValueError("laser_instability_prefactor must be non-negative")
        if not 0 <= self.single_qubit_error < 1:
            raise ValueError("single_qubit_error must be in [0, 1)")
        if not 0 <= self.measurement_error < 1:
            raise ValueError("measurement_error must be in [0, 1)")
        if not 0 <= self.min_fidelity <= 1:
            raise ValueError("min_fidelity must be in [0, 1]")


@dataclass(frozen=True)
class SingleQubitParams:
    """Timing of non-entangling operations.

    The paper's evaluation is dominated by two-qubit gates and shuttling, but
    a complete executable also contains single-qubit gates and measurements;
    their durations are taken from typical trapped-ion systems ([17]).
    """

    #: Duration of a single-qubit rotation, microseconds.
    gate_time: float = 10.0
    #: Duration of a qubit measurement (state detection), microseconds.
    measurement_time: float = 200.0

    def validate(self) -> None:
        """Raise ``ValueError`` on non-positive durations."""

        if self.gate_time <= 0 or self.measurement_time <= 0:
            raise ValueError("durations must be positive")


@dataclass(frozen=True)
class PhysicalModel:
    """Bundle of every physical model parameter used by a simulation."""

    shuttle: ShuttleTimes = field(default_factory=ShuttleTimes)
    heating: HeatingParams = field(default_factory=HeatingParams)
    fidelity: FidelityParams = field(default_factory=FidelityParams)
    single_qubit: SingleQubitParams = field(default_factory=SingleQubitParams)

    def validate(self) -> None:
        """Validate every sub-model."""

        self.shuttle.validate()
        self.heating.validate()
        self.fidelity.validate()
        self.single_qubit.validate()

"""Shuttling primitive durations (paper Table I).

This module is a thin functional wrapper over
:class:`~repro.models.params.ShuttleTimes` so that callers can ask for the
duration of a primitive by name, and so that the benchmark harness for
Table I has a single source of truth to print.
"""

from __future__ import annotations

from typing import Dict

from repro.models.params import ShuttleTimes

#: Canonical Table I rows: operation label -> attribute on ShuttleTimes.
TABLE1_ROWS = (
    ("Move ion through one segment", "move_segment"),
    ("Splitting operation on a chain", "split"),
    ("Merging an ion with a chain", "merge"),
    ("Crossing Y-junction", "cross_y_junction"),
    ("Crossing X-junction", "cross_x_junction"),
)


def operation_times(params: ShuttleTimes = None) -> Dict[str, float]:
    """Return the Table I rows as ``{label: duration_us}``."""

    params = params or ShuttleTimes()
    params.validate()
    return {label: getattr(params, attr) for label, attr in TABLE1_ROWS}


def format_table1(params: ShuttleTimes = None) -> str:
    """Render Table I as aligned text (used by examples and benchmarks)."""

    rows = operation_times(params)
    width = max(len(label) for label in rows)
    lines = [f"{'Operation':<{width}}  Time"]
    lines.append("-" * (width + 8))
    for label, duration in rows.items():
        lines.append(f"{label:<{width}}  {duration:.0f}us")
    return "\n".join(lines)

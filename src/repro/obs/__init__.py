"""Observability: span tracing, metrics, trace export, timeline, profile.

The stack runs distributed, adaptive searches over process pools and a
lease-coordinated worker fleet; this package is the telemetry layer that
makes those executions debuggable:

* :mod:`~repro.obs.trace` -- context-manager spans
  (``with span("compile.route", gates=n):``) with ContextVar parenting and
  ``perf_counter`` timings; a zero-overhead no-op while tracing is
  disabled, which is the default.
* :mod:`~repro.obs.metrics` -- process-wide counters/gauges/histograms
  (with bounded-bucket p50/p90/p99 quantiles) and snapshot/delta/merge,
  generalising the hand-rolled ``ProgramCache.stats()`` /
  ``BatchPlan.stats()`` counter plumbing so pool workers and dispatched
  workers aggregate identically for any ``--jobs``.
* :mod:`~repro.obs.export` -- Chrome trace-event JSON (loads in
  Perfetto), flat span JSONL, and a per-run manifest (config fingerprint,
  schema versions, phase timings, metrics snapshot), all written through
  an atomic temp-file-rename writer so crashed runs keep their traces.
* :mod:`~repro.obs.distributed` -- fleet-wide tracing: trace-context
  propagation into worker subprocesses and pool children, per-worker
  crash-safe trace shards under ``<store>/traces/``, and the
  deterministic shard merger behind ``repro trace merge`` and the
  automatic merge of ``dse dispatch --trace``.
* :mod:`~repro.obs.timeline` -- windowed time-series aggregation over the
  fleet telemetry logs with straggler/stall detection; the engine behind
  ``repro dse top``.
* :mod:`~repro.obs.profile` -- span-derived hierarchical profiling
  (self/total per span name, quantiles, critical path, collapsed stacks);
  the engine behind ``repro profile`` and ``--profile``.
* :mod:`~repro.obs.benchdiff` -- threshold-based comparison of committed
  ``BENCH_*.json`` perf history; the engine behind ``repro bench diff``.

``repro run|sweep|dse run|dse dispatch --trace out.json`` enables tracing
for one command and writes the bundle; span/metric naming conventions and
the export schemas are documented in ``docs/observability.md``.
"""

from repro.obs.benchdiff import (
    classify_metric,
    compare_bench,
    diff_bench_files,
    format_bench_diff,
)
from repro.obs.distributed import (
    SHARD_SCHEMA_VERSION,
    TRACE_DIR,
    TraceContext,
    TraceShardWriter,
    adopt_shards,
    read_trace_shards,
    write_merged_trace,
)
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    atomic_write_text,
    chrome_trace,
    config_fingerprint,
    run_manifest,
    spans_jsonl,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    CounterDict,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
)
from repro.obs.profile import (
    build_profile,
    collapsed_stacks,
    format_profile,
    parse_spans_jsonl,
)
from repro.obs.timeline import (
    TelemetryReader,
    detect_stragglers,
    fold_timeline,
    render_top,
    rolling_rates,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_span_name,
    current_span_ref,
    current_tracer,
    disable_tracing,
    enable_tracing,
    span,
)

__all__ = [
    "SHARD_SCHEMA_VERSION",
    "TRACE_DIR",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "CounterDict",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TelemetryReader",
    "TraceContext",
    "TraceShardWriter",
    "Tracer",
    "adopt_shards",
    "atomic_write_text",
    "build_profile",
    "chrome_trace",
    "classify_metric",
    "collapsed_stacks",
    "compare_bench",
    "config_fingerprint",
    "current_span_name",
    "current_span_ref",
    "current_tracer",
    "detect_stragglers",
    "diff_bench_files",
    "disable_tracing",
    "enable_tracing",
    "fold_timeline",
    "format_bench_diff",
    "format_profile",
    "parse_spans_jsonl",
    "read_trace_shards",
    "registry",
    "render_top",
    "reset_registry",
    "rolling_rates",
    "run_manifest",
    "span",
    "spans_jsonl",
    "validate_chrome_trace",
    "write_merged_trace",
    "write_trace",
]

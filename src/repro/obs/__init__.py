"""Observability: span tracing, a metrics registry, and trace export.

The stack runs distributed, adaptive searches over process pools and a
lease-coordinated worker fleet; this package is the telemetry layer that
makes those executions debuggable:

* :mod:`~repro.obs.trace` -- context-manager spans
  (``with span("compile.route", gates=n):``) with ContextVar parenting and
  ``perf_counter`` timings; a zero-overhead no-op while tracing is
  disabled, which is the default.
* :mod:`~repro.obs.metrics` -- process-wide counters/gauges/histograms
  with snapshot/delta/merge, generalising the hand-rolled
  ``ProgramCache.stats()`` / ``BatchPlan.stats()`` counter plumbing so
  pool workers and dispatched workers aggregate identically for any
  ``--jobs``.
* :mod:`~repro.obs.export` -- Chrome trace-event JSON (loads in
  Perfetto), flat span JSONL, and a per-run manifest (config fingerprint,
  schema versions, phase timings, metrics snapshot).

``repro run|sweep|dse run|dse dispatch --trace out.json`` enables tracing
for one command and writes the bundle; span/metric naming conventions and
the export schemas are documented in ``docs/observability.md``.
"""

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    config_fingerprint,
    run_manifest,
    spans_jsonl,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    CounterDict,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    span,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "CounterDict",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace",
    "config_fingerprint",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "registry",
    "reset_registry",
    "run_manifest",
    "span",
    "spans_jsonl",
    "validate_chrome_trace",
    "write_trace",
]

"""Benchmark-history comparison: ``repro bench diff OLD NEW``.

``benchmarks/data/BENCH_*.json`` artefacts are committed per PR, so perf
history is data in the repo -- but until now comparing two snapshots was
eyeball work.  This module makes it a machine verdict: pair up the
numeric metrics of two artefacts section by section, classify each key
by its naming convention (the same unit-suffix discipline
``docs/observability.md`` prescribes for metrics), and flag changes past
a threshold in the *worse* direction:

* **lower is better** -- keys with time/size unit suffixes (``_s``,
  ``_ms``, ``_us``, ``_ns``, ``_bytes``) or containing ``overhead`` /
  ``latency``;
* **higher is better** -- keys containing ``speedup`` / ``hit_rate`` /
  ``throughput`` or ending in ``_per_s``;
* everything else (``points``, ``variants``, counts of work done) is
  informational -- reported when it changes, never a regression.

The CI ``bench-regression`` job runs this against the committed
artefacts with a generous threshold (timings cross machines), making the
perf gate's exit code -- not a human reading a diff -- the check.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "classify_metric",
    "compare_bench",
    "diff_bench_files",
    "format_bench_diff",
]

#: Key-name fragments marking a lower-is-better metric.
_LOWER_FRAGMENTS = ("overhead", "latency")
_LOWER_SUFFIXES = ("_s", "_ms", "_us", "_ns", "_bytes")

#: Key-name fragments marking a higher-is-better metric.
_HIGHER_FRAGMENTS = ("speedup", "hit_rate", "throughput")
_HIGHER_SUFFIXES = ("_per_s",)


def classify_metric(key: str) -> Optional[str]:
    """``"lower"``, ``"higher"`` or ``None`` (informational) for one key."""

    name = key.lower()
    if any(fragment in name for fragment in _HIGHER_FRAGMENTS) or \
            name.endswith(_HIGHER_SUFFIXES):
        return "higher"
    if any(fragment in name for fragment in _LOWER_FRAGMENTS) or \
            name.endswith(_LOWER_SUFFIXES):
        return "lower"
    return None


def _numeric_leaves(payload: object, prefix: str = "",
                    ) -> Dict[str, float]:
    """Flatten nested dicts to ``dotted.path -> number`` leaves.

    ``_meta`` subtrees (fingerprints, metrics snapshots, environment) are
    provenance, not performance -- they never participate in the diff.
    """

    leaves: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key in sorted(payload):
            if key == "_meta":
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_numeric_leaves(payload[key], path))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        leaves[prefix] = float(payload)
    return leaves


def compare_bench(old: Dict[str, object], new: Dict[str, object], *,
                  threshold: float = 0.25) -> Dict[str, object]:
    """Compare two BENCH artefact payloads; returns the verdict structure.

    ``threshold`` is the fractional change past which a directional
    metric counts as a regression (0.25 = 25% worse).  Improvements and
    informational changes are reported but never fail the diff.  Sections
    present on only one side are reported as added/removed (removed
    sections are suspicious -- history vanished -- but not a regression).
    """

    if not 0.0 <= threshold:
        raise ValueError("threshold must be non-negative")
    old_sections = old.get("sections") or {}
    new_sections = new.get("sections") or {}
    rows: List[Dict[str, object]] = []
    regressions = 0
    for section in sorted(set(old_sections) | set(new_sections)):
        if section not in new_sections:
            rows.append({"section": section, "key": None, "kind": "removed"})
            continue
        if section not in old_sections:
            rows.append({"section": section, "key": None, "kind": "added"})
            continue
        old_leaves = _numeric_leaves(old_sections[section])
        new_leaves = _numeric_leaves(new_sections[section])
        for key in sorted(set(old_leaves) | set(new_leaves)):
            if key not in old_leaves or key not in new_leaves:
                rows.append({"section": section, "key": key,
                             "kind": "added" if key in new_leaves
                             else "removed"})
                continue
            before, after = old_leaves[key], new_leaves[key]
            if before == after:
                continue
            direction = classify_metric(key)
            change = (after - before) / abs(before) if before else None
            kind = "info"
            if direction is not None and change is not None:
                worse = change > 0 if direction == "lower" else change < 0
                if worse and abs(change) > threshold:
                    kind = "regression"
                    regressions += 1
                elif worse:
                    kind = "worse"
                else:
                    kind = "improved"
            rows.append({"section": section, "key": key, "kind": kind,
                         "direction": direction, "old": before, "new": after,
                         "change": change})
    comparable = (old.get("machine") == new.get("machine")
                  and old.get("scale") == new.get("scale"))
    return {"threshold": threshold, "comparable": comparable,
            "regressions": regressions, "rows": rows,
            "old_meta": {"machine": old.get("machine"),
                         "scale": old.get("scale")},
            "new_meta": {"machine": new.get("machine"),
                         "scale": new.get("scale")}}


def diff_bench_files(old_path, new_path, *,
                     threshold: float = 0.25) -> Dict[str, object]:
    """:func:`compare_bench` over two artefact files."""

    with open(Path(old_path)) as handle:
        old = json.load(handle)
    with open(Path(new_path)) as handle:
        new = json.load(handle)
    report = compare_bench(old, new, threshold=threshold)
    report["old_path"] = str(old_path)
    report["new_path"] = str(new_path)
    return report


def format_bench_diff(report: Dict[str, object]) -> str:
    """Human-readable rendering of a :func:`compare_bench` report."""

    lines: List[str] = []
    header = (f"bench diff: {report.get('old_path', 'old')} -> "
              f"{report.get('new_path', 'new')} "
              f"(threshold {100 * report['threshold']:.0f}%)")
    lines.append(header)
    if not report["comparable"]:
        lines.append(
            f"  note: artefacts span machines/scales "
            f"({report['old_meta']} vs {report['new_meta']}); timing "
            f"deltas are indicative only")
    shown = 0
    for row in report["rows"]:
        if row["kind"] in ("added", "removed"):
            what = row["key"] if row["key"] else "(section)"
            lines.append(f"  [{row['kind']:<10}] {row['section']}.{what}")
            shown += 1
            continue
        arrow = {"regression": "REGRESSION", "worse": "worse",
                 "improved": "improved", "info": "info"}[row["kind"]]
        change = row["change"]
        delta = f"{100 * change:+.1f}%" if change is not None else "n/a"
        lines.append(
            f"  [{arrow:<10}] {row['section']}.{row['key']}: "
            f"{row['old']:.6g} -> {row['new']:.6g} ({delta})")
        shown += 1
    if not shown:
        lines.append("  no changes")
    verdict = report["regressions"]
    lines.append(f"verdict: {verdict} regression(s)"
                 if verdict else "verdict: OK")
    return "\n".join(lines)

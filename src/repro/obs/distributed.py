"""Fleet-wide distributed tracing: context propagation, shards, merging.

A ``--trace`` on ``repro dse dispatch`` must see the whole fleet, not just
the dispatcher process.  Three pieces make that work:

* :class:`TraceContext` -- the root ``trace_id`` plus the dispatcher's
  open-span ``parent_ref``, carried to worker subprocesses through the
  environment (the ``REPRO_CHECK`` pattern of
  :mod:`repro.analyze.runtime`: ``spawn_worker_process`` copies the
  parent environment, so stamping the spawn env is all the propagation
  needed) and into process-pool children through the pool initializer of
  :func:`repro.toolflow.parallel.iter_tasks`.  Every process arms a
  tracer parented under the same root.
* **Trace shards** -- each worker flushes its span records to
  ``<store>/traces/<owner>.jsonl`` (:class:`TraceShardWriter`), through
  the same atomic temp+rename discipline as
  :func:`repro.obs.export.atomic_write_text`, after every completed work
  unit and at exit; a SIGKILLed worker leaves its last complete flush.
  Records carry *absolute* wall-clock starts (``epoch_start_s``), so any
  process can place them on a shared timeline.
* **A deterministic merger** -- :func:`read_trace_shards` parses every
  shard (skipping torn or corrupt lines with a
  :class:`~repro.dse.store.StoreCorruptionWarning`, counted per file like
  the experiment store does) and returns records in a total content
  ordering, so the same span set merges byte-identically regardless of
  how it was split across shard files.  :func:`adopt_shards` folds them
  into a live tracer (what ``dse dispatch --trace`` does automatically);
  :func:`write_merged_trace` is the standalone ``repro trace merge``.

Shard records are the flat ``Span.to_dict`` schema plus ``trace_id``,
``owner``, ``epoch_start_s``, a per-record ``schema_version``
(:data:`SHARD_SCHEMA_VERSION`) and -- on spans with no in-process parent
-- the tracer's cross-process ``parent_ref``.  Profiling resolves
``parent_ref`` links, so the fleet critical path descends from the
dispatcher's ``dse.dispatch`` span into the worker that actually spent
the wall time.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.export import atomic_write_text
from repro.obs.metrics import registry
from repro.obs.trace import Tracer, current_tracer, enable_tracing, span

__all__ = [
    "ENV_TRACE_ID",
    "ENV_TRACE_PARENT",
    "SHARD_SCHEMA_VERSION",
    "TRACE_DIR",
    "TraceContext",
    "TraceShardWriter",
    "adopt_exported",
    "adopt_shards",
    "drain_records",
    "export_records",
    "read_trace_shards",
    "write_merged_trace",
]

#: Environment variables carrying the trace context to child processes.
ENV_TRACE_ID = "REPRO_TRACE"
ENV_TRACE_PARENT = "REPRO_TRACE_PARENT"

#: Subdirectory of the store directory holding per-worker trace shards
#: (a sibling of ``telemetry/``; one level down so the store never
#: ingests span records as experiment rows).
TRACE_DIR = "traces"

#: Version stamped on every shard record; readers skip-with-warning any
#: record from a future schema instead of misinterpreting it.
SHARD_SCHEMA_VERSION = 1

#: Keys a shard record must carry to be mergeable.
_REQUIRED_KEYS = ("name", "span_id", "pid", "tid", "epoch_start_s",
                  "duration_s")


def _filename_safe(owner: str) -> str:
    # Same sanitisation as repro.dse.dispatch._filename_safe (duplicated
    # to keep obs free of an import cycle with the dispatch layer).
    return re.sub(r"[^A-Za-z0-9._-]", "_", owner)


@dataclass(frozen=True)
class TraceContext:
    """The cross-process trace context: root id + parent span reference."""

    trace_id: str
    parent_ref: Optional[str] = None

    @classmethod
    def from_tracer(cls, tracer: Tracer,
                    parent_ref: Optional[str] = None) -> "TraceContext":
        return cls(trace_id=tracer.trace_id, parent_ref=parent_ref)

    @classmethod
    def from_env(cls, env=None) -> Optional["TraceContext"]:
        """The context a parent process stamped, or ``None``."""

        env = os.environ if env is None else env
        trace_id = env.get(ENV_TRACE_ID, "")
        if not trace_id:
            return None
        return cls(trace_id=trace_id,
                   parent_ref=env.get(ENV_TRACE_PARENT) or None)

    def stamp(self, env) -> None:
        """Write the context into an environment mapping for a child."""

        env[ENV_TRACE_ID] = self.trace_id
        if self.parent_ref:
            env[ENV_TRACE_PARENT] = self.parent_ref
        else:
            env.pop(ENV_TRACE_PARENT, None)

    def arm(self) -> Tracer:
        """Install a tracer joined to this context (idempotent)."""

        tracer = current_tracer()
        if tracer is not None and tracer.trace_id == self.trace_id:
            return tracer
        return enable_tracing(trace_id=self.trace_id,
                              parent_ref=self.parent_ref)


def export_records(tracer: Tracer, *,
                   owner: Optional[str] = None) -> List[Dict[str, object]]:
    """The tracer's records in the self-contained shard schema.

    Times become absolute (``epoch_start_s``) so the records merge onto
    any process's timeline; every record is stamped with the trace id,
    the shard schema version and (when given) the flushing worker's
    ``owner``; spans with no in-process parent inherit the tracer's
    cross-process ``parent_ref``.
    """

    shard_records = []
    for record in tracer.records():
        record = dict(record)
        record["epoch_start_s"] = tracer.epoch_s + float(
            record.pop("start_s", 0.0) or 0.0)
        record.setdefault("trace_id", tracer.trace_id)
        record["schema_version"] = SHARD_SCHEMA_VERSION
        if owner and not record.get("owner"):
            record["owner"] = owner
        if (tracer.parent_ref and record.get("parent_id") is None
                and not record.get("parent_ref")):
            record["parent_ref"] = tracer.parent_ref
        shard_records.append(record)
    return shard_records


def drain_records(tracer: Tracer, *,
                  owner: Optional[str] = None) -> List[Dict[str, object]]:
    """Export and *clear* the tracer's records (pool-child shipping).

    Span ids keep incrementing, so records drained in separate batches
    stay unique per ``(pid, span_id)``.
    """

    records = export_records(tracer, owner=owner)
    tracer.spans.clear()
    tracer.foreign.clear()
    return records


def _to_frame(record: Dict[str, object],
              epoch_s: float) -> Dict[str, object]:
    """A shard record rebased into a host tracer's time frame."""

    record = dict(record)
    record["start_s"] = float(record.pop("epoch_start_s", 0.0)) - epoch_s
    record.pop("schema_version", None)
    return record


def adopt_exported(tracer: Tracer, records) -> None:
    """Adopt exported (``epoch_start_s``-framed) records into a tracer.

    The in-memory counterpart of :func:`adopt_shards`: pool children ship
    their drained records home through the task result instead of a shard
    file, and the parent folds them in here, rebased into its time frame.
    """

    tracer.adopt(_to_frame(record, tracer.epoch_s) for record in records)


class TraceShardWriter:
    """Crash-safe flusher of one worker's span records to its shard file.

    Every :meth:`flush` rewrites ``<store>/traces/<owner>.jsonl``
    atomically with all records so far, so readers (and the post-run
    merger) always see a complete prefix of the worker's trace -- a
    SIGKILL costs only the spans since the last flush.
    """

    def __init__(self, store_dir, owner: str) -> None:
        self.owner = owner
        self.path = (Path(store_dir) / TRACE_DIR
                     / f"{_filename_safe(owner)}.jsonl")

    def flush(self, tracer: Optional[Tracer]) -> Optional[Path]:
        if tracer is None:
            return None
        records = export_records(tracer, owner=self.owner)
        if not records:
            return None
        text = "".join(json.dumps(record, sort_keys=True, default=str) + "\n"
                       for record in records)
        return atomic_write_text(self.path, text)


def _record_sort_key(record: Dict[str, object]):
    return (float(record.get("epoch_start_s") or 0.0),
            record.get("pid") or 0, record.get("span_id") or 0,
            json.dumps(record, sort_keys=True, default=str))


def read_trace_shards(store_dir) -> Tuple[List[Dict[str, object]],
                                          Dict[str, int]]:
    """Parse every trace shard under a store; returns (records, skips).

    Records come back in a total content ordering (start, pid, span id,
    canonical JSON), so downstream merges are independent of the shard
    split.  Unparseable or incomplete lines are skipped: a torn *final*
    line without a trailing newline is counted silently (it may be a live
    writer's in-flight append -- the experiment store's tail discipline),
    anything else warns with a :class:`~repro.dse.store.StoreCorruptionWarning`.
    ``skips`` counts skipped lines per shard file name, mirrored into the
    ``trace.lines_skipped`` metrics counter.
    """

    from repro.dse.store import StoreCorruptionWarning

    directory = Path(store_dir) / TRACE_DIR
    records: List[Dict[str, object]] = []
    skips: Dict[str, int] = {}
    paths = sorted(directory.glob("*.jsonl")) if directory.is_dir() else []
    for path in paths:
        text = path.read_text(encoding="utf-8")
        lines = text.split("\n")
        torn_tail = bool(lines and lines[-1].strip())
        if lines and not lines[-1].strip():
            lines.pop()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            reason = None
            try:
                record = json.loads(line)
            except ValueError as exc:
                reason = f"invalid JSON ({exc})"
                record = None
            if reason is None:
                if not isinstance(record, dict) or any(
                        key not in record for key in _REQUIRED_KEYS):
                    reason = "not a trace-shard span record"
                elif int(record.get("schema_version") or 0) \
                        > SHARD_SCHEMA_VERSION:
                    reason = (f"schema_version "
                              f"{record['schema_version']} is newer than "
                              f"this reader ({SHARD_SCHEMA_VERSION})")
            if reason is None:
                records.append(record)
                continue
            skips[path.name] = skips.get(path.name, 0) + 1
            registry().counter("trace.lines_skipped").inc()
            if not (torn_tail and lineno == len(lines)):
                warnings.warn(f"trace shards: skipping "
                              f"{path.name}:{lineno}: {reason}",
                              StoreCorruptionWarning, stacklevel=3)
    records.sort(key=_record_sort_key)
    return records, skips


def _merge_info(records, skips,
                shard_count: int) -> Dict[str, object]:
    return {
        "shards": shard_count,
        "spans": len(records),
        "pids": sorted({record["pid"] for record in records}),
        "trace_ids": sorted({str(record.get("trace_id"))
                             for record in records
                             if record.get("trace_id")}),
        "skipped": skips,
    }


def adopt_shards(tracer: Tracer, store_dir) -> Dict[str, object]:
    """Fold a store's trace shards into a live tracer (dispatch merge).

    Shard records are rebased into the tracer's time frame and adopted as
    foreign records, so the ordinary ``--trace`` flush then writes one
    fleet-wide bundle: a metadata-annotated Chrome trace, a spans JSONL
    the profiler reads across pids, and a manifest whose phase timings
    cover every process.  Records the tracer itself produced (matching
    pid) are dropped -- the dispatcher's own spans are already in it.

    Returns a summary: shard file count, adopted span count, pids, trace
    ids seen and per-file skip counts.
    """

    with span("trace.merge", store=str(store_dir)) as merge_span:
        records, skips = read_trace_shards(store_dir)
        shard_count = len({record.get("owner") for record in records
                           if record.get("owner")})
        adopted = [_to_frame(record, tracer.epoch_s) for record in records
                   if record["pid"] != tracer.pid]
        tracer.adopt(adopted)
        info = _merge_info(adopted, skips, shard_count)
        merge_span.set(spans=len(adopted), shards=shard_count)
    return info


def write_merged_trace(store_dir, output, *,
                       config: Optional[object] = None
                       ) -> Tuple[Dict[str, Path], Dict[str, object]]:
    """Merge a store's trace shards into one trace bundle at ``output``.

    The standalone merger behind ``repro trace merge``: a synthetic host
    tracer anchored at the earliest record (so the output is a pure
    function of the record set -- merging the same spans twice, however
    sharded, writes byte-identical Chrome traces) adopts every shard
    record and is written through the ordinary
    :func:`~repro.obs.export.write_trace` bundle.

    Raises ``ValueError`` when the store has no readable shard records.
    """

    with span("trace.merge", store=str(store_dir)):
        records, skips = read_trace_shards(store_dir)
        if not records:
            raise ValueError(f"no trace shards under "
                             f"{Path(store_dir) / TRACE_DIR}")
        origin = min(float(record["epoch_start_s"]) for record in records)
        info = _merge_info(records, skips,
                           len({record.get("owner") for record in records
                                if record.get("owner")}))
        host = Tracer(trace_id=(info["trace_ids"][0]
                                if info["trace_ids"] else None))
        # Anchor the synthetic host at the earliest span and mark the
        # records as foreign even if one shard came from this very pid:
        # determinism requires the output to depend on records alone.
        host.epoch_s = origin
        host.pid = -1
        host.adopt(_to_frame(record, origin) for record in records)

    from repro.obs.export import write_trace

    paths = write_trace(output, host, config=config,
                        extra={"merged_shards": info["shards"],
                               "skipped_lines": sum(skips.values())})
    return paths, info

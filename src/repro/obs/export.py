"""Trace export: Chrome trace-event JSON, flat span JSONL, run manifest.

Three views of one :class:`~repro.obs.trace.Tracer`:

* :func:`chrome_trace` -- the Chrome trace-event format (``traceEvents``
  with complete ``"ph": "X"`` events, microsecond ``ts``/``dur``), which
  loads directly in Perfetto / ``chrome://tracing``.  A tracer that
  adopted foreign records (a fleet run) additionally gets ``"ph": "M"``
  ``process_name``/``thread_name`` metadata events and a *total content
  ordering* of its events, so the same span set exports byte-identically
  regardless of how it was sharded across processes.
* :func:`spans_jsonl` -- one flat JSON object per span (the
  ``Span.to_dict`` schema), for grep/jq-style analysis.
* :func:`run_manifest` -- what produced the trace: config fingerprint,
  schema versions, per-phase timing totals and a metrics snapshot.

:func:`write_trace` writes all three next to each other
(``out.json`` + ``out.spans.jsonl`` + ``out.manifest.json``) and is what
the ``--trace`` CLI flag calls.  :func:`validate_chrome_trace` is the
schema check used by the tests and the CI ``obs-smoke`` job.

None of this touches experiment data: traces are a side channel, and the
canonical store export stays byte-identical with tracing enabled (CI
enforces this against the committed golden export).
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.trace import Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "atomic_write_text",
    "chrome_trace",
    "config_fingerprint",
    "run_manifest",
    "spans_jsonl",
    "validate_chrome_trace",
    "write_trace",
]

#: Version of the span/manifest schemas (independent of the store's
#: row ``SCHEMA_VERSION``; bump when the exported shapes change).
#: v2: spans may carry ``parent_ref``/``owner``/``trace_id`` (distributed
#: traces), the manifest carries ``trace_id``, and fleet Chrome traces
#: carry ``process_name``/``thread_name`` metadata events.
TRACE_SCHEMA_VERSION = 2

#: Keys every Chrome trace event emitted here must carry.
_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")

#: Metadata event names the merger emits (the only ``ph: "M"`` kinds the
#: validator accepts).
_METADATA_NAMES = ("process_name", "thread_name")


def config_fingerprint(payload: object) -> str:
    """SHA-256 over the canonical JSON of a run's configuration."""

    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _span_event(record: Dict[str, object]) -> Dict[str, object]:
    """One span record as a complete (``ph: "X"``) Chrome trace event."""

    args = dict(record.get("attrs") or {})
    args["span_id"] = record["span_id"]
    if record.get("parent_id") is not None:
        args["parent_id"] = record["parent_id"]
    if record.get("parent_ref"):
        args["parent_ref"] = record["parent_ref"]
    if record.get("owner"):
        args["owner"] = record["owner"]
    name = str(record["name"])
    return {
        "name": name,
        "cat": name.split(".", 1)[0],
        "ph": "X",
        "ts": round(float(record.get("start_s") or 0.0) * 1e6, 3),
        "dur": round(float(record.get("duration_s") or 0.0) * 1e6, 3),
        "pid": record["pid"],
        "tid": record["tid"],
        "args": args,
    }


def _fleet_metadata_events(records) -> List[Dict[str, object]]:
    """Stable ``process_name``/``thread_name`` metadata for a fleet trace.

    One ``process_name`` per pid (the worker's ``owner`` when its records
    carry one, else ``pid-<pid>``) and one ``thread_name`` per
    ``(pid, tid)``, both in sorted order -- a pure function of the record
    set, so merged traces stay byte-identical however they were sharded.
    """

    labels: Dict[int, str] = {}
    threads = set()
    for record in records:
        pid = record["pid"]
        owner = record.get("owner")
        if pid not in labels and isinstance(owner, str) and owner:
            labels[pid] = owner
        threads.add((pid, record["tid"]))
    events: List[Dict[str, object]] = []
    for pid in sorted({pid for pid, _ in threads}):
        events.append({"name": "process_name", "ph": "M", "ts": 0.0,
                       "pid": pid, "tid": 0,
                       "args": {"name": labels.get(pid, f"pid-{pid}")}})
    for pid, tid in sorted(threads):
        events.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                       "pid": pid, "tid": tid,
                       "args": {"name": f"tid-{tid}"}})
    return events


def _event_sort_key(event: Dict[str, object]):
    return (event["ts"], event["pid"], event["tid"],
            event["args"].get("span_id", 0),
            json.dumps(event, sort_keys=True, default=str))


def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """The tracer's spans in Chrome trace-event JSON (Perfetto-loadable).

    A single-process tracer exports its spans in completion order, exactly
    as before distributed tracing.  A tracer holding foreign records (or
    records spanning several pids) exports the *fleet* form: metadata
    events first, then every span event in a total content ordering
    (start time, pid, tid, span id, canonical JSON) -- the
    ``fold_timeline`` discipline, so a given span set merges to the same
    bytes regardless of the shard split it arrived through.
    """

    records = tracer.records()
    fleet = bool(tracer.foreign) or len({rec["pid"] for rec in records}) > 1
    events = [_span_event(record) for record in records]
    if fleet:
        events.sort(key=_event_sort_key)
        events = _fleet_metadata_events(records) + events
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_schema": TRACE_SCHEMA_VERSION,
            "trace_id": tracer.trace_id,
            "epoch_s": tracer.epoch_s,
            "hostname": socket.gethostname(),
        },
    }


def spans_jsonl(tracer: Tracer) -> str:
    """Flat span JSONL text (one ``Span.to_dict`` object per line)."""

    lines = [json.dumps(record, sort_keys=True, default=str)
             for record in tracer.records()]
    return "".join(line + "\n" for line in lines)


def run_manifest(tracer: Tracer, *,
                 metrics: Optional[MetricsRegistry] = None,
                 config: Optional[object] = None,
                 extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """The per-run manifest: fingerprint, schema versions, phase timings."""

    from repro.io.serialization import SCHEMA_VERSION

    metrics = metrics if metrics is not None else registry()
    manifest: Dict[str, object] = {
        "trace_schema": TRACE_SCHEMA_VERSION,
        "store_schema_version": SCHEMA_VERSION,
        "config_fingerprint": config_fingerprint(config),
        "created_epoch_s": tracer.epoch_s,
        "hostname": socket.gethostname(),
        "pid": tracer.pid,
        "trace_id": tracer.trace_id,
        "num_spans": len(tracer.spans) + len(tracer.foreign),
        "phase_timings": tracer.phase_timings(),
        "metrics": metrics.snapshot(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` via a temp file and ``os.replace``.

    A reader (or a crash mid-write) never observes a half-written file:
    either the old content is still there or the new content is complete.
    The ``--trace`` flush-on-failure path depends on this -- a command
    that raises still leaves every trace artefact readable.
    """

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        scratch.write_text(text)
        os.replace(scratch, path)
    finally:
        if scratch.exists():  # replace failed; don't litter
            scratch.unlink()
    return path


def write_trace(path, tracer: Tracer, *,
                metrics: Optional[MetricsRegistry] = None,
                config: Optional[object] = None,
                extra: Optional[Dict[str, object]] = None) -> Dict[str, Path]:
    """Write the trace bundle for one run; returns the three paths.

    ``out.json`` gets the Chrome trace; the span JSONL and the manifest go
    to ``out.spans.jsonl`` and ``out.manifest.json`` beside it.  Every
    file lands through :func:`atomic_write_text`, so a crashed run's
    partial trace is always a *valid* trace of the spans that finished.
    """

    path = Path(path)
    stem = path.name[:-len(".json")] if path.name.endswith(".json") \
        else path.name
    spans_path = path.with_name(f"{stem}.spans.jsonl")
    manifest_path = path.with_name(f"{stem}.manifest.json")
    payload = chrome_trace(tracer)
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True,
                                       default=str) + "\n")
    atomic_write_text(spans_path, spans_jsonl(tracer))
    manifest = run_manifest(tracer, metrics=metrics, config=config,
                            extra=extra)
    atomic_write_text(manifest_path,
                      json.dumps(manifest, indent=2, sort_keys=True,
                                 default=str) + "\n")
    return {"trace": path, "spans": spans_path, "manifest": manifest_path}


def validate_chrome_trace(payload: Dict[str, object]) -> int:
    """Check a Chrome-trace payload's schema; returns the event count.

    Raises ``ValueError`` naming the first violation.  Used by the span
    round-trip tests and the CI ``obs-smoke`` job to guarantee the emitted
    trace actually loads in Perfetto-compatible viewers.  Accepts the two
    event kinds the exporter emits: complete spans (``ph: "X"``, which
    need a non-negative ``dur``) and the merger's
    ``process_name``/``thread_name`` metadata (``ph: "M"``, which need a
    non-empty ``args.name`` label).
    """

    if not isinstance(payload, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace must carry a 'traceEvents' list")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{position}] is not an object")
        for key in _EVENT_KEYS:
            if key not in event:
                raise ValueError(f"traceEvents[{position}] lacks {key!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise ValueError(f"traceEvents[{position}] has an empty name")
        if event["ph"] == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(
                    f"traceEvents[{position}] ('{event['name']}') has a "
                    f"missing or negative 'dur'")
        elif event["ph"] == "M":
            if event["name"] not in _METADATA_NAMES:
                raise ValueError(
                    f"traceEvents[{position}] has unknown metadata kind "
                    f"'{event['name']}'")
            args = event.get("args")
            label = args.get("name") if isinstance(args, dict) else None
            if not isinstance(label, str) or not label:
                raise ValueError(
                    f"traceEvents[{position}] ('{event['name']}') lacks a "
                    f"non-empty args.name label")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(
                f"traceEvents[{position}] ('{event['name']}') has a "
                f"non-numeric 'ts'")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                raise ValueError(
                    f"traceEvents[{position}] ('{event['name']}') has a "
                    f"non-integer {key!r}")
    return len(events)

"""Process-wide metrics: counters, gauges and histograms with delta-merge.

The registry generalises the hand-rolled counter plumbing that grew in
:mod:`repro.toolflow.parallel` (``ProgramCache.stats()`` /
``counters_delta`` / ``merge_counters``) and :mod:`repro.sim.batch`
(the ``stats=`` dict threaded through ``simulate_batch``): any component
registers named series, a process-pool worker snapshots before a task and
ships the :meth:`MetricsRegistry.delta` home with the result, and the
parent :meth:`MetricsRegistry.merge`\\ s it -- so aggregate counts are
identical for any ``--jobs`` value (deltas are merged in task-submission
order, and counters are integers, so there is no float-association drift).

Naming convention (see ``docs/observability.md``): dotted lowercase paths,
``<component>.<series>`` -- ``cache.hits``, ``cache.batch.variants``,
``store.lines_skipped``, ``dse.points.evaluated``,
``dse.propose.latency_s``.  Unit suffixes (``_s``, ``_bytes``) follow the
series name.

Metrics are always on (an increment is one attribute add); only *tracing*
has an enabled flag.  The process-wide default registry lives behind
:func:`registry`; components that need isolated counting (one
``ProgramCache`` per sweep) construct private registries.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, MutableMapping, Optional

__all__ = [
    "Counter",
    "CounterDict",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "reset_registry",
]

#: Log-spaced quantile buckets per decade.  Bucket ``i`` covers values in
#: ``[10**(i/8), 10**((i+1)/8))`` -- a x1.33 width, so quantile estimates
#: carry at most ~15% relative error either side of the bucket midpoint.
BUCKETS_PER_DECADE = 8

#: Bucket index clamp: values outside [1e-9, 1e9) land in the edge buckets,
#: bounding the bucket map at ``2 * 9 * BUCKETS_PER_DECADE + 2`` entries no
#: matter what is observed.
_BUCKET_MIN = -9 * BUCKETS_PER_DECADE
_BUCKET_MAX = 9 * BUCKETS_PER_DECADE

#: Non-positive observations (a zero-duration span) get their own bucket
#: below every log bucket; its representative value is 0.0.
_BUCKET_ZERO = _BUCKET_MIN - 1


class Counter:
    """A monotonically increasing integer series."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins series (queue depths, heartbeat ages)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


def bucket_index(value: float) -> int:
    """The bounded log-spaced bucket an observation falls into."""

    if value <= 0.0:
        return _BUCKET_ZERO
    index = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
    return max(_BUCKET_MIN, min(_BUCKET_MAX, index))


def bucket_value(index: int) -> float:
    """The representative (geometric-midpoint) value of one bucket."""

    if index <= _BUCKET_ZERO:
        return 0.0
    return 10.0 ** ((index + 0.5) / BUCKETS_PER_DECADE)


class Histogram:
    """A streaming summary of observed values with bounded-bucket quantiles.

    Beyond count / sum / min / max, every observation lands in one of a
    *bounded* set of log-spaced buckets (:data:`BUCKETS_PER_DECADE` per
    decade, clamped to [1e-9, 1e9)), so :meth:`quantile` answers p50/p90/p99
    in O(buckets) with a fixed memory ceiling regardless of how many values
    stream through.  Bucket counts are integers, so the pool
    snapshot->delta->merge protocol keeps quantiles **jobs-count-invariant**:
    merging worker deltas in any split reproduces the serial bucket counts
    exactly, and quantiles are a pure function of those counts.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0..1) from the bucket counts, or ``None`` if empty.

        Deterministic: walk the buckets in index order until the cumulative
        count reaches ``ceil(q * count)``, then report that bucket's
        geometric midpoint clamped into [min, max] (so a single observation
        reports itself exactly).
        """

        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        value = self.max
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                value = bucket_value(index)
                break
        if self.min is not None:
            value = max(self.min, min(self.max, value))
        return value

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The standard reporting triple: p50 / p90 / p99."""

        return {"p50": self.quantile(0.50), "p90": self.quantile(0.90),
                "p99": self.quantile(0.99)}


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot/delta/merge support.

    The pool-worker protocol: the worker takes ``before = reg.snapshot()``,
    does the work, and returns ``reg.delta(before)``; the parent calls
    ``reg.merge(delta)``.  Counter and histogram count/sum movements add;
    histogram min/max fold with min/max (idempotent, so re-reporting an
    old extreme is harmless); gauges carry their latest value.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        series = self._counters.get(name)
        if series is None:
            series = self._counters[name] = Counter(name)
        return series

    def gauge(self, name: str) -> Gauge:
        series = self._gauges.get(name)
        if series is None:
            series = self._gauges[name] = Gauge(name)
        return series

    def histogram(self, name: str) -> Histogram:
        series = self._histograms.get(name)
        if series is None:
            series = self._histograms[name] = Histogram(name)
        return series

    def dict_view(self, prefix: str) -> "CounterDict":
        """A dict facade over ``<prefix><key>`` counters (legacy hooks)."""

        return CounterDict(self, prefix)

    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, int]:
        """Flat name -> value view of every counter."""

        return {name: series.value
                for name, series in sorted(self._counters.items())}

    def snapshot(self) -> Dict[str, object]:
        """Every series, grouped by kind (the delta/merge interchange form)."""

        return {
            "counters": self.counters(),
            "gauges": {name: series.value
                       for name, series in sorted(self._gauges.items())},
            "histograms": {
                name: {"count": series.count, "sum": series.total,
                       "min": series.min, "max": series.max,
                       "buckets": {str(index): series.buckets[index]
                                   for index in sorted(series.buckets)}}
                for name, series in sorted(self._histograms.items())},
        }

    def delta(self, before: Dict[str, object]) -> Dict[str, object]:
        """Series movement since a previous :meth:`snapshot`.

        Counters and histogram count/sum are differences; histogram min/max
        and gauges are current values (min/max fold idempotently on merge).
        """

        now = self.snapshot()
        before_counters = before.get("counters", {})
        before_histograms = before.get("histograms", {})
        counters = {}
        for name, value in now["counters"].items():
            moved = value - before_counters.get(name, 0)
            if moved:
                counters[name] = moved
        histograms = {}
        for name, summary in now["histograms"].items():
            prior = before_histograms.get(name, {"count": 0, "sum": 0.0})
            moved = summary["count"] - prior["count"]
            if moved:
                prior_buckets = prior.get("buckets", {})
                histograms[name] = {
                    "count": moved,
                    "sum": summary["sum"] - prior["sum"],
                    "min": summary["min"],
                    "max": summary["max"],
                    "buckets": {
                        index: delta for index, count
                        in summary.get("buckets", {}).items()
                        for delta in (count - prior_buckets.get(index, 0),)
                        if delta},
                }
        return {"counters": counters, "gauges": dict(now["gauges"]),
                "histograms": histograms}

    def merge(self, delta: Dict[str, object]) -> None:
        """Fold a :meth:`delta` (e.g. from a pool worker) into this registry."""

        for name, moved in delta.get("counters", {}).items():
            self.counter(name).inc(moved)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in delta.get("histograms", {}).items():
            series = self.histogram(name)
            series.count += summary["count"]
            series.total += summary["sum"]
            for index, count in summary.get("buckets", {}).items():
                index = int(index)
                series.buckets[index] = series.buckets.get(index, 0) + count
            for bound, pick in (("min", min), ("max", max)):
                value = summary.get(bound)
                if value is None:
                    continue
                current = getattr(series, bound)
                setattr(series, bound,
                        value if current is None else pick(current, value))


class CounterDict(MutableMapping):
    """A mutable-mapping facade over prefixed counters of a registry.

    Exists for the ``stats=`` dict parameter of
    :func:`repro.sim.batch.simulate_batch` and friends: code written
    against a plain ``Dict[str, int]`` (``stats["plans"] = stats.get(...)``)
    transparently drives registry counters named ``<prefix><key>`` instead.
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def _names(self):
        prefix = self._prefix
        return [name for name in self._registry._counters
                if name.startswith(prefix)]

    def __getitem__(self, key: str) -> int:
        name = self._prefix + key
        series = self._registry._counters.get(name)
        if series is None:
            raise KeyError(key)
        return series.value

    def __setitem__(self, key: str, value: int) -> None:
        self._registry.counter(self._prefix + key).value = value

    def __delitem__(self, key: str) -> None:
        name = self._prefix + key
        if name not in self._registry._counters:
            raise KeyError(key)
        del self._registry._counters[name]

    def __iter__(self) -> Iterator[str]:
        start = len(self._prefix)
        return iter(sorted(name[start:] for name in self._names()))

    def __len__(self) -> int:
        return len(self._names())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CounterDict({dict(self)!r})"


#: The process-wide default registry.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry (store skips, DSE counters, proposers)."""

    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Replace the process-wide registry with a fresh one (test isolation)."""

    global _REGISTRY
    _REGISTRY = MetricsRegistry()
    return _REGISTRY

"""Span-derived profiling: hierarchical self/total report, critical path.

The Chrome trace that ``--trace`` writes is a *timeline* -- great in
Perfetto, useless in a terminal or a diff.  This module turns the flat
span JSONL (the :meth:`repro.obs.trace.Span.to_dict` schema) into the
aggregate views a profiler would give (the per-pass instrumentation
discipline pymtl3 applies to its pipeline):

* a **flat table** per span name -- call count, total time (nested
  same-name calls counted once), self time, and p50/p90/p99 call
  durations from the bounded-bucket :class:`~repro.obs.metrics.Histogram`;
* a **tree** keyed by the root-to-span name path, with self time
  telescoping exactly: summed over the whole tree it equals the traced
  wall time (the sum of root span durations), which is the invariant the
  tests and the acceptance criteria pin;
* the **critical path** -- from the longest root span, repeatedly descend
  into the longest child;
* **collapsed stacks** (``a;b;c <self_us>``) for flamegraph tooling.

Everything is a pure function of the span list with total orderings at
every step, so the same trace file produces byte-identical reports.

Records may span the whole fleet: spans are identified by the
``(pid, span_id)`` pair (per-tracer ids collide across processes), and a
worker root's cross-process ``parent_ref`` hangs its tree under the
dispatching span -- so the call tree, the per-pid self-time telescoping
and the critical path cover a merged distributed trace end to end.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.obs.trace import span

__all__ = [
    "build_profile",
    "collapsed_stacks",
    "format_profile",
    "parse_spans_jsonl",
]


def parse_spans_jsonl(source) -> List[Dict[str, object]]:
    """Load span records from a ``*.spans.jsonl`` path or its text."""

    text = Path(source).read_text(encoding="utf-8") \
        if not isinstance(source, str) or "\n" not in source else source
    records: List[Dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if not isinstance(record, dict) or "name" not in record:
            raise ValueError("not a span record: " + line[:80])
        records.append(record)
    return records


def _span_sort_key(record: Dict[str, object]) -> Tuple:
    return (float(record.get("start_s") or 0.0),
            int(record.get("pid") or 0),
            int(record.get("span_id") or 0))


def _span_key(record: Dict[str, object]) -> Tuple[int, int]:
    """The fleet-unique identity of a span record.

    Span ids are small per-tracer integers, so traces merged across
    processes collide on ``span_id`` alone; the ``(pid, span_id)`` pair
    is unique fleet-wide.
    """

    return (int(record.get("pid") or 0), int(record.get("span_id") or 0))


def _parent_key(record: Dict[str, object]) -> Optional[Tuple[int, int]]:
    """The parent's ``(pid, span_id)`` key, in- or cross-process.

    ``parent_id`` links within the record's own process; a worker root's
    ``parent_ref`` (``"pid:span_id"``) links across processes to the span
    that dispatched it.
    """

    parent = record.get("parent_id")
    if isinstance(parent, int):
        return (int(record.get("pid") or 0), parent)
    ref = record.get("parent_ref")
    if isinstance(ref, str) and ":" in ref:
        pid_text, _, span_text = ref.partition(":")
        try:
            return (int(pid_text), int(span_text))
        except ValueError:
            return None
    return None


def build_profile(spans: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate span records into the deterministic profile structure.

    Orphan spans (a ``parent_id`` that never finished -- e.g. a crashed
    run's partial trace) are treated as roots, so a flushed-on-failure
    trace still profiles cleanly.

    Returns a dict with ``num_spans``, ``wall_s`` (sum of root
    durations), ``names`` (the flat table), ``tree`` (per name-path
    rows), ``critical_path`` and ``collapsed`` stacks.  Self time is
    *not* clamped at zero in the tables -- a child overlapping past its
    parent (threads) shows up as negative self, keeping the telescoping
    sum exact.
    """

    with span("obs.profile.build", spans=len(spans)):
        ordered = sorted(spans, key=_span_sort_key)
        by_id: Dict[Tuple[int, int], Dict[str, object]] = {}
        for record in ordered:
            if isinstance(record.get("span_id"), int):
                by_id[_span_key(record)] = record
        children: Dict[Tuple[int, int], List[Dict[str, object]]] = {}
        roots: List[Dict[str, object]] = []
        for record in ordered:
            parent = _parent_key(record)
            if parent is not None and parent in by_id:
                children.setdefault(parent, []).append(record)
            else:
                roots.append(record)

        names: Dict[str, Dict[str, object]] = {}
        histograms: Dict[str, Histogram] = {}
        tree: Dict[Tuple[str, ...], Dict[str, float]] = {}
        critical: List[Dict[str, object]] = []

        def visit(record: Dict[str, object], path: Tuple[str, ...],
                  ancestors: frozenset) -> None:
            name = str(record["name"])
            duration = float(record.get("duration_s") or 0.0)
            kids = children.get(_span_key(record), [])
            self_s = duration - sum(float(kid.get("duration_s") or 0.0)
                                    for kid in kids)
            here = path + (name,)
            node = tree.setdefault(here, {"count": 0, "total_s": 0.0,
                                          "self_s": 0.0})
            node["count"] += 1
            node["total_s"] += duration
            node["self_s"] += self_s
            flat = names.setdefault(name, {"count": 0, "total_s": 0.0,
                                           "self_s": 0.0})
            flat["count"] += 1
            flat["self_s"] += self_s
            if name not in ancestors:
                # A recursive `sweep.point` inside `sweep.point` must not
                # count its duration twice in the flat table.
                flat["total_s"] += duration
            histograms.setdefault(name, Histogram(name)).observe(duration)
            nested = ancestors | {name}
            for kid in kids:
                visit(kid, here, nested)

        for root in roots:
            visit(root, (), frozenset())

        wall_s = sum(float(record.get("duration_s") or 0.0)
                     for record in roots)

        def longest(candidates: Sequence[Dict[str, object]]):
            return max(candidates,
                       key=lambda record: (
                           float(record.get("duration_s") or 0.0),
                           -int(record.get("pid") or 0),
                           -int(record.get("span_id") or 0)))

        cursor = longest(roots) if roots else None
        while cursor is not None:
            kids = children.get(_span_key(cursor), [])
            self_s = (float(cursor.get("duration_s") or 0.0)
                      - sum(float(kid.get("duration_s") or 0.0)
                            for kid in kids))
            critical.append({"name": str(cursor["name"]),
                             "span_id": cursor.get("span_id"),
                             "pid": cursor.get("pid"),
                             "duration_s": float(cursor.get("duration_s")
                                                 or 0.0),
                             "self_s": self_s})
            cursor = longest(kids) if kids else None

        for name, flat in names.items():
            flat.update(histograms[name].percentiles())

        return {
            "num_spans": len(ordered),
            "wall_s": wall_s,
            "names": {name: names[name] for name in sorted(names)},
            "tree": [{"path": ";".join(path), "depth": len(path) - 1,
                      **tree[path]}
                     for path in sorted(tree)],
            "critical_path": critical,
            "collapsed": collapsed_stacks(tree),
        }


def collapsed_stacks(tree: Dict[Tuple[str, ...], Dict[str, float]],
                     ) -> List[str]:
    """The tree as collapsed-stack lines: ``a;b;c <self_microseconds>``.

    The format every flamegraph renderer ingests.  Self time is floored
    at zero here (renderers reject negative sample counts); the exact
    telescoping lives in the ``tree`` rows.
    """

    lines = []
    for path in sorted(tree):
        micros = int(round(max(0.0, tree[path]["self_s"]) * 1e6))
        if micros:
            lines.append(f"{';'.join(path)} {micros}")
    return lines


def format_profile(profile: Dict[str, object], *, top: int = 20) -> str:
    """Render a profile as the terminal report ``repro profile`` prints."""

    lines: List[str] = []
    wall = profile["wall_s"]
    lines.append(f"{profile['num_spans']} spans, {wall:.6f}s traced wall time")
    lines.append("")
    lines.append(f"{'name':<40} {'calls':>7} {'total_s':>10} {'self_s':>10} "
                 f"{'p50':>9} {'p90':>9} {'p99':>9}")
    ranked = sorted(profile["names"].items(),
                    key=lambda item: (-item[1]["self_s"], item[0]))
    for name, row in ranked[:top]:
        lines.append(
            f"{name:<40} {row['count']:>7} {row['total_s']:>10.6f} "
            f"{row['self_s']:>10.6f} {_fmt(row['p50']):>9} "
            f"{_fmt(row['p90']):>9} {_fmt(row['p99']):>9}")
    if len(ranked) > top:
        lines.append(f"... ({len(ranked) - top} more names)")
    lines.append("")
    lines.append("call tree (self_s telescopes to traced wall time):")
    for node in profile["tree"]:
        name = node["path"].rsplit(";", 1)[-1]
        share = 100.0 * node["total_s"] / wall if wall else 0.0
        lines.append(f"  {'  ' * node['depth']}{name:<{40 - 2 * node['depth']}}"
                     f" {node['count']:>7} {node['total_s']:>10.6f}"
                     f" {node['self_s']:>10.6f} {share:>5.1f}%")
    lines.append("")
    lines.append("critical path:")
    for step, node in enumerate(profile["critical_path"]):
        lines.append(f"  {'  ' * step}{node['name']} "
                     f"{node['duration_s']:.6f}s "
                     f"(self {node['self_s']:.6f}s)")
    return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    return f"{value:.4g}" if value is not None else "-"

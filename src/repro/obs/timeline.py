"""Windowed time-series aggregation over fleet telemetry (``repro dse top``).

PR 7 gave every dispatched worker an append-only event log under
``<store>/telemetry/`` and folded the directory into per-worker *totals*
(:func:`repro.dse.dispatch.telemetry_summary`).  Totals answer "how much
happened"; a live fleet needs "how much is happening *now*" -- so this
module turns the same event logs into fixed-width time-series buckets:

* :class:`TelemetryReader` -- an incremental, O(new-rows) reader over the
  telemetry directory, the same stat-skip / byte-offset / rescan-on-shrink
  discipline as :meth:`repro.dse.store.ExperimentStore.reload`.  Rotated
  segments and compacted summary rows (see
  :class:`repro.dse.dispatch.WorkerTelemetry`) are read transparently.
* :func:`fold_timeline` -- deterministic aggregation of an event list into
  per-worker and fleet-wide bucket series (points, wall_s, claims, losses,
  heartbeats, cache hits/misses).  Same events in, byte-identical series
  out, regardless of how the events were split across worker files.
* :func:`detect_stragglers` -- a worker whose rolling points/s falls
  ``k * MAD`` below the fleet median, or whose last telemetry event is
  older than a fraction of the lease TTL, is flagged *before* its lease
  expires -- the early-warning analogue of lease reclaim.
* :func:`render_top` -- one dashboard frame (pure text, deterministic for
  a fixed snapshot), which ``repro dse top`` re-renders in place.

All wall-clock readings go through the injectable
:class:`~repro.dse.dispatch.LeaseClock`, so every series and frame is
drivable by a fake clock in tests -- no sleeps, no real fleets.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import span

__all__ = [
    "DEFAULT_BUCKET_S",
    "DEFAULT_WINDOW_BUCKETS",
    "FleetMonitor",
    "TelemetryReader",
    "detect_stragglers",
    "fold_timeline",
    "render_top",
    "rolling_rates",
]

#: Default width of one aggregation bucket.
DEFAULT_BUCKET_S = 5.0

#: Default trailing window (in buckets) for rolling rates and sparklines.
DEFAULT_WINDOW_BUCKETS = 12

#: Straggler rate test: flag a worker whose rolling points/s falls this
#: many MADs below the fleet median.
DEFAULT_MAD_K = 3.0

#: Straggler heartbeat test: flag a worker whose last telemetry event is
#: older than this fraction of the lease TTL.  Below 1.0 by design -- the
#: whole point is to flag a stalled (e.g. SIGSTOPped) worker *before* its
#: lease expires and the reclaim machinery kicks in.
DEFAULT_STALL_FRACTION = 0.5

#: Fields accumulated per bucket (all integers except wall_s).
_BUCKET_FIELDS = ("points", "replayed", "wall_s", "claims", "renews",
                  "losses", "done", "cache_hits", "cache_misses")


def _event_sort_key(record: Dict[str, object]) -> Tuple:
    """A total, content-only ordering of telemetry events.

    ``(t, owner)`` alone is not total (a fake clock can stamp several
    events identically); the canonical JSON of the record breaks ties, so
    float accumulation order -- and therefore the folded series bytes --
    is a pure function of the event *set*.
    """

    t = record.get("t")
    return (float(t) if isinstance(t, (int, float)) else 0.0,
            str(record.get("owner", "")),
            json.dumps(record, sort_keys=True, default=str))


class TelemetryReader:
    """Incremental reader of ``<store>/telemetry/*.jsonl`` event logs.

    :meth:`poll` stats every telemetry file and parses only bytes appended
    since the previous poll (torn trailing lines are left for the next
    poll); unchanged files are never opened.  Any shrunk or vanished file
    -- rotation replaced the active log, compaction rewrote or deleted a
    segment -- triggers a full rescan, which is when the
    summary-row/segment dedup guard (``folded_through``) re-applies.  The
    cumulative-summary segment (``*.seg0.jsonl``) is rewritten in place by
    compaction, so any change to it also forces a rescan.
    """

    def __init__(self, store_dir) -> None:
        from repro.dse.dispatch import TELEMETRY_DIR

        self.directory = Path(store_dir) / TELEMETRY_DIR
        self._events: List[Dict[str, object]] = []
        self._offsets: Dict[str, int] = {}
        self._sizes: Dict[str, int] = {}
        self._summary_sigs: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------------ #
    @property
    def events(self) -> List[Dict[str, object]]:
        """Every ingested event, in the canonical content ordering."""

        return list(self._events)

    @staticmethod
    def _is_summary_file(name: str) -> bool:
        return name.endswith(".seg0.jsonl")

    @staticmethod
    def _segment_of(name: str) -> Optional[Tuple[str, int]]:
        """``(stem, k)`` when ``name`` is ``<stem>.seg<k>.jsonl``."""

        if not name.endswith(".jsonl"):
            return None
        base = name[:-len(".jsonl")]
        stem, dot, seg = base.rpartition(".")
        if dot and seg.startswith("seg") and seg[len("seg"):].isdigit():
            return stem, int(seg[len("seg"):])
        return None

    def poll(self) -> int:
        """Ingest newly appended events; returns how many were added."""

        if not self.directory.is_dir():
            if self._events or self._offsets:
                self._reset()
            return 0
        paths = sorted(self.directory.glob("*.jsonl"))
        names = {path.name for path in paths}
        if self._needs_rescan(paths, names):
            return self._rescan(paths)
        added = 0
        for path in paths:
            name = path.name
            if self._is_summary_file(name):
                continue  # unchanged, or the rescan above caught it
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if size <= self._offsets.get(name, 0):
                continue
            added += self._consume(path, self._offsets.get(name, 0))
        if added:
            self._events.sort(key=_event_sort_key)
        return added

    def _needs_rescan(self, paths: Sequence[Path], names) -> bool:
        for name in self._offsets:
            if name not in names:
                return True
        for path in paths:
            name = path.name
            try:
                stat = path.stat()
            except OSError:
                return True
            if self._is_summary_file(name):
                sig = (stat.st_size, stat.st_mtime_ns)
                if sig != self._summary_sigs.get(name):
                    return True
            elif stat.st_size < self._offsets.get(name, 0):
                return True
        return False

    def _reset(self) -> None:
        self._events.clear()
        self._offsets.clear()
        self._sizes.clear()
        self._summary_sigs.clear()

    def _rescan(self, paths: Sequence[Path]) -> int:
        self._reset()
        # Summary segments first: their ``folded_through`` marker says
        # which raw segments they already account for, so reading a
        # summary *and* the raw segment it folded can never double count.
        folded: Dict[str, int] = {}
        for path in paths:
            if not self._is_summary_file(path.name):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            self._summary_sigs[path.name] = (stat.st_size, stat.st_mtime_ns)
            for record in _parse_lines(path):
                self._events.append(record)
                through = record.get("folded_through")
                stem = path.name[:-len(".seg0.jsonl")]
                if isinstance(through, int):
                    folded[stem] = max(folded.get(stem, 0), through)
        for path in paths:
            name = path.name
            if self._is_summary_file(name):
                continue
            segment = self._segment_of(name)
            if segment is not None and segment[1] <= folded.get(segment[0], 0):
                continue  # already folded into the stem's summary row
            self._consume(path, 0)
        self._events.sort(key=_event_sort_key)
        return len(self._events)

    def _consume(self, path: Path, start: int) -> int:
        """Parse newline-terminated records of ``path`` from byte ``start``."""

        try:
            with open(path, "rb") as handle:
                handle.seek(start)
                data = handle.read()
        except OSError:
            return 0
        cut = data.rfind(b"\n") + 1  # 0 when the chunk holds no newline
        added = 0
        for line in data[:cut].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn or garbled line: a live writer's in-flight append
            if isinstance(record, dict):
                self._events.append(record)
                added += 1
        self._offsets[path.name] = start + cut
        return added


def _parse_lines(path: Path) -> List[Dict[str, object]]:
    records: List[Dict[str, object]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


# --------------------------------------------------------------------------- #
# Folding events into fixed-width buckets
# --------------------------------------------------------------------------- #
def _empty_bucket() -> Dict[str, object]:
    bucket = {field: 0 for field in _BUCKET_FIELDS}
    bucket["wall_s"] = 0.0
    return bucket


def fold_timeline(events: Sequence[Dict[str, object]], *,
                  bucket_s: float = DEFAULT_BUCKET_S,
                  origin_t: Optional[float] = None,
                  until_t: Optional[float] = None) -> Dict[str, object]:
    """Fold telemetry events into per-worker and fleet-wide bucket series.

    Buckets are fixed-width (``bucket_s`` seconds) and anchored at
    ``origin_t`` -- by default the earliest event timestamp floored to a
    bucket boundary, so the series is a pure function of the events.
    ``until_t`` (usually the lease clock's *now*) extends the range so a
    stalled fleet shows trailing zero buckets instead of freezing at its
    last event.

    Per bucket: ``points`` / ``replayed`` / ``wall_s`` (from ``done``
    events), ``claims`` / ``renews`` / ``losses`` / ``done`` counts, and
    ``cache_hits`` / ``cache_misses`` from the per-``done`` metrics
    counter deltas workers ship since this PR.  Compacted ``summary`` rows
    represent history older than any live bucket and fold into the
    ``compacted`` totals instead of spiking one bucket.

    Determinism: events are processed in the canonical content ordering
    (:func:`_event_sort_key`), so the same event set yields byte-identical
    series no matter how it was split across worker files, ``--jobs``
    values or shard layouts.
    """

    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    with span("obs.timeline.fold", events=len(events)):
        ordered = sorted(events, key=_event_sort_key)
        stamped = [record for record in ordered
                   if isinstance(record.get("t"), (int, float))
                   and isinstance(record.get("owner"), str)]
        timeline: Dict[str, object] = {
            "bucket_s": float(bucket_s),
            "origin_t": None,
            "num_buckets": 0,
            "fleet": [],
            "workers": {},
            "compacted": {},
        }
        live = [record for record in stamped
                if record.get("event") != "summary"]
        if live:
            first_t = min(float(record["t"]) for record in live)
            last_t = max(float(record["t"]) for record in live)
            if until_t is not None:
                last_t = max(last_t, float(until_t))
            origin = (math.floor(first_t / bucket_s) * bucket_s
                      if origin_t is None else float(origin_t))
            count = max(1, math.floor((last_t - origin) / bucket_s) + 1)
        elif origin_t is not None:
            origin = float(origin_t)
            count = 1
        else:
            origin = None
            count = 0
        timeline["origin_t"] = origin
        timeline["num_buckets"] = count
        fleet = [_empty_bucket() for _ in range(count)]
        workers: Dict[str, List[Dict[str, object]]] = {}
        compacted: Dict[str, Dict[str, object]] = {}
        for record in stamped:
            owner = record["owner"]
            if record.get("event") == "summary":
                totals = compacted.setdefault(owner, _empty_bucket())
                for field, key in (("points", "points"),
                                   ("replayed", "replayed"),
                                   ("wall_s", "wall_s"),
                                   ("claims", "claims"),
                                   ("renews", "renews"),
                                   ("losses", "lost"),
                                   ("done", "done")):
                    value = record.get(key)
                    if isinstance(value, (int, float)):
                        totals[field] += value
                continue
            index = math.floor((float(record["t"]) - origin) / bucket_s)
            if not 0 <= index < count:
                index = max(0, min(count - 1, index))
            series = workers.setdefault(
                owner, [_empty_bucket() for _ in range(count)])
            for bucket in (series[index], fleet[index]):
                _fold_event(bucket, record)
        timeline["fleet"] = fleet
        timeline["workers"] = {owner: workers[owner]
                               for owner in sorted(workers)}
        timeline["compacted"] = {owner: compacted[owner]
                                 for owner in sorted(compacted)}
        return timeline


def _fold_event(bucket: Dict[str, object], record: Dict[str, object]) -> None:
    event = record.get("event")
    if event == "claim":
        bucket["claims"] += 1
    elif event == "renew":
        bucket["renews"] += 1
    elif event == "lease_lost":
        bucket["losses"] += 1
    elif event == "done":
        bucket["done"] += 1
        bucket["points"] += int(record.get("points") or 0)
        bucket["replayed"] += int(record.get("replayed") or 0)
        bucket["wall_s"] += float(record.get("wall_s") or 0.0)
        counters = record.get("counters")
        if isinstance(counters, dict):
            bucket["cache_hits"] += int(counters.get("cache.hits") or 0)
            bucket["cache_misses"] += int(counters.get("cache.misses") or 0)


def rolling_rates(timeline: Dict[str, object], *,
                  window: int = DEFAULT_WINDOW_BUCKETS) -> Dict[str, float]:
    """Per-worker points/s over the trailing ``window`` buckets."""

    count = timeline["num_buckets"]
    if not count:
        return {}
    take = max(1, min(int(window), count))
    window_s = take * timeline["bucket_s"]
    return {owner: sum(bucket["points"] for bucket in series[-take:]) / window_s
            for owner, series in timeline["workers"].items()}


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


# --------------------------------------------------------------------------- #
# Straggler / stall detection
# --------------------------------------------------------------------------- #
def detect_stragglers(workers: Dict[str, Dict[str, object]], *,
                      ttl_s: float,
                      timeline: Optional[Dict[str, object]] = None,
                      window: int = DEFAULT_WINDOW_BUCKETS,
                      k: float = DEFAULT_MAD_K,
                      stall_fraction: float = DEFAULT_STALL_FRACTION,
                      ) -> Dict[str, List[str]]:
    """Flag workers that are stalling or falling behind the fleet.

    ``workers`` is a :func:`repro.dse.dispatch.telemetry_summary` mapping.
    Two independent tests, both tuned to fire *before* the lease machinery
    would (so an operator sees the straggler while its lease is still
    active):

    * **stall** -- an alive worker whose last telemetry event is older
      than ``stall_fraction * ttl_s`` (a SIGSTOPped or wedged process
      stops emitting long before its lease's TTL runs out);
    * **slow** -- with at least three alive workers, one whose rolling
      points/s over the trailing ``window`` buckets falls more than
      ``k`` median-absolute-deviations below the fleet median (the MAD is
      floored at 10% of the median so a perfectly uniform fleet never
      flags its slowest member over noise).

    Returns ``{owner: [reason, ...]}`` for the flagged workers only.
    """

    if ttl_s <= 0:
        raise ValueError("ttl_s must be positive")
    flags: Dict[str, List[str]] = {}
    alive = {owner: row for owner, row in workers.items()
             if row.get("alive")}
    budget_s = stall_fraction * ttl_s
    for owner in sorted(alive):
        age = alive[owner].get("last_seen_age_s")
        if isinstance(age, (int, float)) and age > budget_s:
            flags.setdefault(owner, []).append(
                f"stalled: last event {age:.1f}s ago "
                f"(> {budget_s:.1f}s of the {ttl_s:.0f}s lease budget)")
    if timeline is not None and len(alive) >= 3:
        rates = {owner: rate
                 for owner, rate in rolling_rates(timeline,
                                                  window=window).items()
                 if owner in alive}
        if len(rates) >= 3:
            median = _median(list(rates.values()))
            mad = _median([abs(rate - median) for rate in rates.values()])
            spread = max(mad, 0.1 * median)
            threshold = median - k * spread
            if median > 0:
                for owner in sorted(rates):
                    if rates[owner] < threshold:
                        flags.setdefault(owner, []).append(
                            f"slow: {rates[owner]:.3f} points/s vs fleet "
                            f"median {median:.3f} (k={k:g} MADs below)")
    return flags


# --------------------------------------------------------------------------- #
# FleetMonitor: the stateful snapshot assembler behind `repro dse top`
# --------------------------------------------------------------------------- #
class FleetMonitor:
    """Incremental fleet snapshots of one dispatched store directory.

    Owns the persistent pieces a live dashboard needs -- the incremental
    :class:`TelemetryReader` and an open experiment-store view refreshed
    with the O(new-rows) ``reload()`` -- so each :meth:`snapshot` tick
    costs new rows, not a directory re-parse.  Works on any dispatched
    store from the outside (manifest + ledgers + telemetry), no
    :class:`~repro.dse.dispatch.Dispatcher` object required, so ``dse
    top`` can watch a fleet some other process (or machine) launched.

    Every timestamp flows through the injectable ``clock``
    (:class:`~repro.dse.dispatch.LeaseClock`), so a fake clock drives the
    whole dashboard in tests.
    """

    def __init__(self, store_dir, *,
                 bucket_s: float = DEFAULT_BUCKET_S,
                 window: int = DEFAULT_WINDOW_BUCKETS,
                 ttl_s: Optional[float] = None,
                 k: float = DEFAULT_MAD_K,
                 stall_fraction: float = DEFAULT_STALL_FRACTION,
                 clock=None) -> None:
        from repro.dse.dispatch import DEFAULT_TTL_S, LeaseClock, read_manifest

        self.store_dir = Path(store_dir)
        self.bucket_s = float(bucket_s)
        self.window = int(window)
        self.k = float(k)
        self.stall_fraction = float(stall_fraction)
        self.clock = clock if clock is not None else LeaseClock()
        self.reader = TelemetryReader(store_dir)
        try:
            self.manifest: Optional[Dict[str, object]] = \
                read_manifest(self.store_dir)
        except ValueError:
            self.manifest = None
        if ttl_s is not None:
            self.ttl_s = float(ttl_s)
        elif self.manifest is not None:
            self.ttl_s = float(self.manifest.get("ttl_s", DEFAULT_TTL_S))
        else:
            self.ttl_s = DEFAULT_TTL_S
        self._store = None

    def _progress(self) -> Dict[str, object]:
        """Dispatcher-style progress from the store's own records."""

        from repro.dse.dispatch import ShardLedger, estimate_eta_s
        from repro.dse.space import DesignSpace
        from repro.dse.store import ExperimentStore

        progress: Dict[str, object] = {}
        try:
            if self._store is None:
                self._store = ExperimentStore(self.store_dir)
            else:
                self._store.reload()
        except (OSError, ValueError):
            return progress
        progress["points_done"] = len(self._store)
        if self.manifest is None:
            return progress
        space = DesignSpace.from_dict(self.manifest["space"])
        total = space.size
        pending = max(0, total - len(self._store))
        progress["points_total"] = total
        progress["points_pending"] = pending
        active = 1
        if self.manifest.get("mode", "shards") == "shards":
            ledger = ShardLedger.for_store(self.store_dir,
                                           self.manifest["shards"],
                                           ttl_s=self.ttl_s,
                                           clock=self.clock)
            counts = ledger.status_counts()
            progress["shards"] = counts
            active = max(1, counts["active"])
        progress["eta_s"] = estimate_eta_s(pending,
                                           self._store.wall_timings(), active)
        return progress

    def snapshot(self) -> Dict[str, object]:
        """Poll everything and assemble one :func:`render_top` snapshot."""

        from repro.dse.dispatch import telemetry_summary

        self.reader.poll()
        now = self.clock.now()
        timeline = fold_timeline(self.reader.events, bucket_s=self.bucket_s,
                                 until_t=now)
        workers = telemetry_summary(self.store_dir, now=now)
        stragglers = detect_stragglers(workers, ttl_s=self.ttl_s,
                                       timeline=timeline, window=self.window,
                                       k=self.k,
                                       stall_fraction=self.stall_fraction)
        return {
            "store": str(self.store_dir),
            "progress": self._progress(),
            "workers": workers,
            "timeline": timeline,
            "stragglers": stragglers,
            "ttl_s": self.ttl_s,
        }

    def close(self) -> None:
        if self._store is not None:
            self._store.close()
            self._store = None


# --------------------------------------------------------------------------- #
# The `dse top` frame
# --------------------------------------------------------------------------- #
def render_top(snapshot: Dict[str, object], *,
               window: int = DEFAULT_WINDOW_BUCKETS,
               width: int = 100) -> str:
    """Render one ``dse top`` frame from an assembled snapshot.

    ``snapshot`` carries ``store`` (label), ``progress`` (the
    dispatcher-style points/shards/eta dict, may be partial), ``workers``
    (the telemetry summary), ``timeline`` (:func:`fold_timeline` output),
    ``stragglers`` (:func:`detect_stragglers` output) and ``ttl_s``.  Pure
    text in, pure text out: a fixed snapshot renders byte-identically,
    which is what the determinism tests pin.
    """

    from repro.visualize.ascii_chart import ascii_sparkline

    progress = snapshot.get("progress") or {}
    workers = snapshot.get("workers") or {}
    timeline = snapshot.get("timeline") or fold_timeline([])
    stragglers = snapshot.get("stragglers") or {}
    bucket_s = timeline["bucket_s"]
    count = timeline["num_buckets"]
    take = max(1, min(int(window), count)) if count else 0
    lines: List[str] = []

    header = f"repro dse top -- {snapshot.get('store', '?')}"
    done = progress.get("points_done")
    total = progress.get("points_total")
    if done is not None and total is not None:
        header += f" -- {done}/{total} points"
        pending = progress.get("points_pending")
        if pending:
            header += f" ({pending} pending)"
    shards = progress.get("shards")
    if shards:
        header += (f" | shards {shards.get('done', 0)} done"
                   f" / {shards.get('active', 0)} active"
                   f" / {shards.get('expired', 0)} expired"
                   f" / {shards.get('open', 0)} open")
    eta_s = progress.get("eta_s")
    if eta_s is not None:
        from repro.dse.dispatch import format_eta

        header += f" | ETA {format_eta(eta_s)}"
    lines.append(header[:width])

    fleet = timeline["fleet"][-take:] if take else []
    window_s = take * bucket_s if take else 0.0
    points = sum(bucket["points"] for bucket in fleet)
    hits = sum(bucket["cache_hits"] for bucket in fleet)
    misses = sum(bucket["cache_misses"] for bucket in fleet)
    wall = sum(bucket["wall_s"] for bucket in fleet)
    rate = points / window_s if window_s else 0.0
    per_point = wall / points if points else None
    hit_rate = hits / (hits + misses) if (hits + misses) else None
    fleet_line = (f"fleet: {rate:.3f} points/s over the last "
                  f"{window_s:.0f}s")
    if per_point is not None:
        fleet_line += f" | {per_point:.3f} wall_s/point"
    if hit_rate is not None:
        fleet_line += f" | cache hit rate {100 * hit_rate:.1f}%"
    fleet_line += (f" | {sum(b['claims'] for b in fleet)} claims, "
                   f"{sum(b['losses'] for b in fleet)} losses")
    lines.append(fleet_line[:width])
    if fleet:
        spark = ascii_sparkline([bucket["points"] for bucket in fleet])
        lines.append(f"points/bucket ({bucket_s:g}s): [{spark}]")

    rates = rolling_rates(timeline, window=window) if count else {}
    lines.append("")
    lines.append(f"workers ({len(workers)}):")
    name_width = max([len(owner) for owner in workers], default=6)
    for owner in sorted(workers):
        row = workers[owner]
        state = "alive " if row.get("alive") else "exited"
        age = row.get("last_seen_age_s")
        age_note = f"{age:6.1f}s" if isinstance(age, (int, float)) else "  never"
        series = timeline["workers"].get(owner)
        spark = (ascii_sparkline([b["points"] for b in series[-take:]])
                 if series and take else "")
        phase = row.get("phase")
        phase_note = f"  in {phase}" if isinstance(phase, str) and phase else ""
        flag_note = ""
        if owner in stragglers:
            flag_note = "  ** STRAGGLER: " + "; ".join(stragglers[owner])
        lines.append(
            f"  {owner:<{name_width}} {state} last {age_note}"
            f"  {rates.get(owner, 0.0):7.3f} pts/s"
            f"  {row.get('done', 0)} done/{row.get('lost', 0)} lost"
            f"/{row.get('claims', 0)} claims"
            f"{phase_note}  [{spark}]{flag_note}")
    if not workers:
        lines.append("  (no telemetry yet -- is this store dispatched?)")
    compacted = timeline.get("compacted") or {}
    if compacted:
        folded_points = sum(t["points"] for t in compacted.values())
        lines.append(f"  (+{folded_points} points in compacted history "
                     f"across {len(compacted)} worker log(s))")
    return "\n".join(lines)

"""Span-based tracing with a zero-overhead disabled path.

The tracer answers one question about a run: *where did the wall time go?*
Call sites wrap units of work in ``with span("compile.route", gates=n):``;
when tracing is enabled the block becomes a :class:`Span` carrying
``perf_counter`` start/end times, process/thread ids and a parent link, and
when tracing is disabled (the default) ``span()`` returns one shared
do-nothing context manager -- no allocation, no clock read, no ContextVar
touch -- so instrumented hot paths cost a dict build and a global load.
The ``bench_obs`` smoke pins that cost below 1% of the 96-point
``bench_pipeline_scale`` sweep.

Parenting uses a :class:`contextvars.ContextVar`, so nesting follows the
call stack (including across threads, each of which sees its own chain).
Tracing also crosses process boundaries: every tracer carries a root
``trace_id`` plus an optional ``parent_ref`` (``"pid:span_id"`` naming a
span in another process), and :mod:`repro.obs.distributed` propagates
both into dispatched worker subprocesses and process-pool children, whose
spans flow back as *foreign records* via :meth:`Tracer.adopt` -- so a
fleet run yields one trace under one root id.

Span ids are small per-tracer integers (allocation order), so traces of a
deterministic run are structurally reproducible; only the timings vary.
Cross-process spans are identified by the ``(pid, span_id)`` pair.
"""

from __future__ import annotations

import os
import threading
import time
from contextvars import ContextVar
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "current_span_name",
    "current_span_ref",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "span",
]

#: Parent span id of the current execution context (``None`` at top level).
_PARENT: ContextVar[Optional[int]] = ContextVar("repro_obs_parent",
                                                default=None)

#: The installed tracer; ``None`` means tracing is disabled.  Read on every
#: ``span()`` call, so the disabled fast path is one global load and an
#: ``is None`` test.
_TRACER: Optional["Tracer"] = None


class _NullSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One timed unit of work; a context manager recording itself on exit.

    ``start_s``/``end_s`` are ``perf_counter`` readings; subtract the owning
    tracer's ``origin_s`` for run-relative time.  ``attrs`` holds the call
    site's keyword annotations plus anything added through :meth:`set`; an
    exception escaping the block is recorded as ``attrs["error"]``.
    """

    __slots__ = ("name", "span_id", "parent_id", "pid", "tid",
                 "start_s", "end_s", "attrs", "_tracer", "_token")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 attrs: Dict[str, object]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.pid = tracer.pid
        self.tid = threading.get_ident()
        self.start_s: float = 0.0
        self.end_s: float = 0.0
        self.attrs = attrs
        self._tracer = tracer
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach annotations mid-block (counts known only at the end)."""

        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.parent_id = _PARENT.get()
        self._token = _PARENT.set(self.span_id)
        self._tracer.open_spans[self.span_id] = self
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        _PARENT.reset(self._token)
        self._tracer.open_spans.pop(self.span_id, None)
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer.spans.append(self)
        return False

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self, origin_s: float = 0.0) -> Dict[str, object]:
        """The span as the flat-JSONL schema (times relative to origin)."""

        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "start_s": self.start_s - origin_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects finished spans for one run of the pipeline.

    ``epoch_s`` (wall clock) and ``origin_s`` (``perf_counter``) are read
    together at construction, anchoring the monotonic span times to real
    time for the export manifest.

    ``trace_id`` names the root trace this tracer contributes to: minted
    here for a root (dispatcher/CLI) tracer, inherited via
    :mod:`repro.obs.distributed` context propagation in worker processes,
    whose tracers also carry a ``parent_ref`` (``"pid:span_id"``) naming
    the cross-process span their root spans hang under.  ``foreign`` holds
    adopted span *records* (dicts in the ``Span.to_dict`` schema, times
    already in this tracer's frame) shipped back from other processes.
    """

    def __init__(self, *, trace_id: Optional[str] = None,
                 parent_ref: Optional[str] = None) -> None:
        self.epoch_s = time.time()
        self.origin_s = time.perf_counter()
        self.pid = os.getpid()
        self.trace_id = trace_id or f"{self.pid:x}-{int(self.epoch_s * 1e6):x}"
        self.parent_ref = parent_ref
        self.spans: List[Span] = []
        self.foreign: List[Dict[str, object]] = []
        self.open_spans: Dict[int, Span] = {}
        self._next_id = 0
        self._lock = threading.Lock()

    def span(self, name: str, **attrs) -> Span:
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        return Span(self, name, span_id, attrs)

    def adopt(self, records) -> None:
        """Append foreign span records (already in this tracer's frame)."""

        self.foreign.extend(records)

    def records(self) -> List[Dict[str, object]]:
        """All span records -- own spans first, then adopted foreign ones.

        Own spans use the plain :meth:`Span.to_dict` schema (plus a
        ``parent_ref`` on roots when this tracer was armed under one), so
        a single-process trace exports exactly as before fleet support.
        """

        records = []
        for item in self.spans:
            record = item.to_dict(self.origin_s)
            if self.parent_ref and record["parent_id"] is None:
                record["parent_ref"] = self.parent_ref
            records.append(record)
        records.extend(self.foreign)
        return records

    def phase_timings(self) -> Dict[str, Dict[str, float]]:
        """Total duration and call count per span name (manifest summary)."""

        timings: Dict[str, Dict[str, float]] = {}
        for record in self.records():
            name = str(record["name"])
            entry = timings.setdefault(name, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += float(record.get("duration_s") or 0.0)
        return timings


def span(name: str, **attrs):
    """A context manager timing one unit of work (no-op when disabled)."""

    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def enable_tracing(*, trace_id: Optional[str] = None,
                   parent_ref: Optional[str] = None) -> Tracer:
    """Install (and return) a fresh process-wide tracer.

    ``trace_id``/``parent_ref`` join this process to an existing fleet
    trace (see :mod:`repro.obs.distributed`); omitted, a new root trace
    id is minted.

    The parent chain restarts with the tracer: a forked pool child
    inherits the parent process's ``_PARENT`` ContextVar, and without the
    reset its spans would carry a ``parent_id`` naming a span of a
    *different* process's tracer.
    """

    global _TRACER
    _TRACER = Tracer(trace_id=trace_id, parent_ref=parent_ref)
    _PARENT.set(None)
    return _TRACER


def disable_tracing() -> Optional[Tracer]:
    """Uninstall the tracer, returning it (with its spans) if one was set."""

    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""

    return _TRACER


def current_span_ref() -> Optional[str]:
    """The open span of this context as a cross-process ``pid:span_id`` ref.

    ``None`` when tracing is disabled or no span is open.  This is what a
    dispatcher stamps into worker environments so worker root spans parent
    under the dispatching span in the merged fleet trace.
    """

    tracer = _TRACER
    if tracer is None:
        return None
    parent = _PARENT.get()
    if parent is None:
        return None
    return f"{tracer.pid}:{parent}"


def current_span_name() -> Optional[str]:
    """Name of the innermost *open* span, or ``None``.

    Workers stamp this onto their telemetry events as the live ``phase``
    the ``dse top`` dashboard shows per worker.
    """

    tracer = _TRACER
    if tracer is None:
        return None
    parent = _PARENT.get()
    if parent is None:
        return None
    open_span = tracer.open_spans.get(parent)
    return open_span.name if open_span is not None else None

"""Span-based tracing with a zero-overhead disabled path.

The tracer answers one question about a run: *where did the wall time go?*
Call sites wrap units of work in ``with span("compile.route", gates=n):``;
when tracing is enabled the block becomes a :class:`Span` carrying
``perf_counter`` start/end times, process/thread ids and a parent link, and
when tracing is disabled (the default) ``span()`` returns one shared
do-nothing context manager -- no allocation, no clock read, no ContextVar
touch -- so instrumented hot paths cost a dict build and a global load.
The ``bench_obs`` smoke pins that cost below 1% of the 96-point
``bench_pipeline_scale`` sweep.

Parenting uses a :class:`contextvars.ContextVar`, so nesting follows the
call stack (including across threads, each of which sees its own chain).
Process-pool workers inherit the enabled flag on fork but their spans stay
in the worker process; cross-process telemetry instead flows through
:mod:`repro.obs.metrics` deltas and the dispatcher's worker telemetry
files (:mod:`repro.dse.dispatch`).

Span ids are small per-tracer integers (allocation order), so traces of a
deterministic run are structurally reproducible; only the timings vary.
"""

from __future__ import annotations

import os
import threading
import time
from contextvars import ContextVar
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "span",
]

#: Parent span id of the current execution context (``None`` at top level).
_PARENT: ContextVar[Optional[int]] = ContextVar("repro_obs_parent",
                                                default=None)

#: The installed tracer; ``None`` means tracing is disabled.  Read on every
#: ``span()`` call, so the disabled fast path is one global load and an
#: ``is None`` test.
_TRACER: Optional["Tracer"] = None


class _NullSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One timed unit of work; a context manager recording itself on exit.

    ``start_s``/``end_s`` are ``perf_counter`` readings; subtract the owning
    tracer's ``origin_s`` for run-relative time.  ``attrs`` holds the call
    site's keyword annotations plus anything added through :meth:`set`; an
    exception escaping the block is recorded as ``attrs["error"]``.
    """

    __slots__ = ("name", "span_id", "parent_id", "pid", "tid",
                 "start_s", "end_s", "attrs", "_tracer", "_token")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 attrs: Dict[str, object]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.pid = tracer.pid
        self.tid = threading.get_ident()
        self.start_s: float = 0.0
        self.end_s: float = 0.0
        self.attrs = attrs
        self._tracer = tracer
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach annotations mid-block (counts known only at the end)."""

        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.parent_id = _PARENT.get()
        self._token = _PARENT.set(self.span_id)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        _PARENT.reset(self._token)
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer.spans.append(self)
        return False

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self, origin_s: float = 0.0) -> Dict[str, object]:
        """The span as the flat-JSONL schema (times relative to origin)."""

        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "start_s": self.start_s - origin_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects finished spans for one run of the pipeline.

    ``epoch_s`` (wall clock) and ``origin_s`` (``perf_counter``) are read
    together at construction, anchoring the monotonic span times to real
    time for the export manifest.
    """

    def __init__(self) -> None:
        self.epoch_s = time.time()
        self.origin_s = time.perf_counter()
        self.pid = os.getpid()
        self.spans: List[Span] = []
        self._next_id = 0
        self._lock = threading.Lock()

    def span(self, name: str, **attrs) -> Span:
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        return Span(self, name, span_id, attrs)

    def phase_timings(self) -> Dict[str, Dict[str, float]]:
        """Total duration and call count per span name (manifest summary)."""

        timings: Dict[str, Dict[str, float]] = {}
        for item in self.spans:
            entry = timings.setdefault(item.name, {"count": 0,
                                                   "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += item.duration_s
        return timings


def span(name: str, **attrs):
    """A context manager timing one unit of work (no-op when disabled)."""

    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def enable_tracing() -> Tracer:
    """Install (and return) a fresh process-wide tracer."""

    global _TRACER
    _TRACER = Tracer()
    return _TRACER


def disable_tracing() -> Optional[Tracer]:
    """Uninstall the tracer, returning it (with its spans) if one was set."""

    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""

    return _TRACER

"""Simulator for compiled QCCD programs (paper Sections V.B and VII).

The simulator replays a :class:`~repro.isa.program.QCCDProgram` on a
:class:`~repro.hardware.device.QCCDDevice`:

* **Timing** -- every operation starts as soon as its dependencies have
  finished and its exclusive resources (trap, segment or junction) are free;
  gates within one trap run serially while independent shuttles and gates in
  other traps overlap.
* **Heating** -- split, merge and move operations update per-chain motional
  energies following the quanta-accounting model.
* **Fidelity** -- every gate multiplies the running program fidelity by its
  own fidelity from equation (1); the per-gate error is also attributed to its
  background and motional components for Figure 6g.

:func:`simulate` is the public entry point and returns a
:class:`SimulationResult`.
"""

from repro.sim.engine import simulate
from repro.sim.results import SimulationResult, OperationRecord
from repro.sim.metrics import (
    communication_fraction,
    mean_two_qubit_error,
    shuttles_per_two_qubit_gate,
)

__all__ = [
    "simulate",
    "SimulationResult",
    "OperationRecord",
    "communication_fraction",
    "mean_two_qubit_error",
    "shuttles_per_two_qubit_gate",
]

"""Simulator for compiled QCCD programs (paper Sections V.B and VII).

The simulator replays a :class:`~repro.isa.program.QCCDProgram` on a
:class:`~repro.hardware.device.QCCDDevice`:

* **Timing** -- every operation starts as soon as its dependencies have
  finished and its exclusive resources (trap, segment or junction) are free;
  gates within one trap run serially while independent shuttles and gates in
  other traps overlap.
* **Heating** -- split, merge and move operations update per-chain motional
  energies following the quanta-accounting model.
* **Fidelity** -- every gate multiplies the running program fidelity by its
  own fidelity from equation (1); the per-gate error is also attributed to its
  background and motional components for Figure 6g.

:func:`simulate` is the public entry point for one (program, device) pair and
returns a :class:`SimulationResult`; :func:`simulate_batch` (and the
:func:`simulate_gate_variants` / :func:`simulate_model_variants` helpers)
evaluates one compiled program under a whole axis of device variants in a
single shared pass, bit-identical to serial :func:`simulate`.
"""

from repro.sim.batch import (
    BatchPlan,
    batch_plan,
    simulate_batch,
    simulate_gate_variants,
    simulate_model_variants,
)
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult, OperationRecord
from repro.sim.metrics import (
    communication_fraction,
    mean_two_qubit_error,
    shuttles_per_two_qubit_gate,
)

__all__ = [
    "simulate",
    "simulate_batch",
    "simulate_gate_variants",
    "simulate_model_variants",
    "BatchPlan",
    "batch_plan",
    "SimulationResult",
    "OperationRecord",
    "communication_fraction",
    "mean_two_qubit_error",
    "shuttles_per_two_qubit_gate",
]

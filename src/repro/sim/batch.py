"""Batched variant simulation: one plan, many (gate x physical-model) variants.

The DSE fan-outs evaluate thousands of *near-identical* simulations: the same
compiled :class:`~repro.isa.program.QCCDProgram` under different two-qubit
gate implementations (the Figure 8 axis) or different physical-model
parameter vectors (the heating/fidelity ablations).  The serial engine
(:func:`repro.sim.engine.simulate`) re-walks the full fused loop once per
variant, recomputing a dependency/resource timeline that is byte-identical
across most of the fan-out.

This module lowers a program once into a :class:`BatchPlan` -- a
struct-of-arrays view with flat parallel arrays for op codes, merged
dependency/resource predecessor lists and the model-facing annotation slots
-- and then evaluates a whole axis of variants against it:

* **Merged predecessors.**  In the serial engine an operation waits on its
  dependencies (``finish``) and on its exclusive resources (``free_at``).
  Because operations are visited in program order, the resource term is
  simply the finish time of the *previous operation in program order using
  that resource* -- a fact of the op stream, not of any duration vector.  The
  plan therefore merges dependencies and per-resource predecessors into one
  deduplicated predecessor entry per op (a bare int in the common
  single-predecessor case), and a timeline walk reduces to
  ``finish[i] = max(finish[p] for p in preds[i]) + dur[i]``.
* **Duration-vector dedup.**  The timeline depends on the duration vector
  alone, so it is walked once per *distinct* vector and cached on the plan:
  variants that only change heating/fidelity parameters (and gate variants
  whose clamped gate times collide) skip the walk entirely and re-accumulate
  log-fidelity over the cached finish times.
* **Shared heating trajectory.**  Chain-energy accounting depends only on the
  op stream and the heating constants ``k1``/``k2``/``k_junction`` -- never
  on durations -- so the trajectory (per-gate chain energies, final trap
  energies, peak occupancy) is computed once per distinct heating vector and
  shared by every gate variant.
* **Reduced noise pass.**  Per variant only the fidelity-bearing ops are
  visited: two-qubit/SWAP gates evaluate equation (1) against the cached
  finish times and trajectory energies; single-qubit gates and measurements
  add a precomputed constant log-fidelity.  The accumulated totals are
  memoised per (timeline, trajectory, fidelity-parameter) combination, so
  re-evaluating an already-seen variant (a warm re-sweep, a resumed run)
  skips even this pass.
* **No device churn.**  Variants are evaluated from ``(gate, model)`` pairs
  directly: :func:`simulate_gate_variants` never constructs the per-variant
  :class:`~repro.hardware.device.QCCDDevice` copies (and their topology
  re-validation) that a serial ``device.with_gate(...)`` loop pays for.

Every arithmetic expression mirrors :func:`repro.sim.engine.simulate`
operation for operation, so batch results are **bit-identical** to the serial
engine (``tests/test_sim_batch.py`` asserts this across the application
suite, both reorder methods, all four gate implementations and the ablation
parameter grids; the determinism goldens then pin both engines to the seed).

The batch path does not produce per-operation timelines; callers that need
``keep_timeline=True`` fall back to the serial engine
(:func:`~repro.toolflow.parallel.execute_task` does this automatically).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.hardware.device import QCCDDevice
from repro.isa.program import QCCDProgram
from repro.models.fidelity import FidelityModel
from repro.models.gate_times import GateImplementation
from repro.models.heating import HeatingModel
from repro.obs.trace import span
from repro.sim.engine import (
    _CODE_TO_KIND,
    _GATE_1Q,
    _GATE_2Q,
    _ION_SWAP,
    _JUNCTION,
    _MEASURE,
    _MERGE,
    _MOVE,
    _SPLIT,
    _SWAP_GATE,
    _durations,
    _op_records,
)
from repro.sim.results import SimulationResult

#: Sentinels in the fidelity schedule for ops whose fidelity is a constant of
#: the model (everything else is a gate tuple).
_FID_1Q = -1
_FID_MEASURE = -2

#: Tags in the heating schedule (gate snapshots plus the energy-moving ops).
_H_SNAPSHOT, _H_SPLIT, _H_MERGE, _H_MOVE, _H_JUNCTION, _H_ION_SWAP = range(6)

_MS_PER_SWAP = 3  # SwapGateOp.MS_GATES_PER_SWAP; asserted at import below


def _merged_predecessors(records) -> List[Union[int, Tuple[int, ...]]]:
    """Dependency + resource predecessors per op, deduplicated.

    The resource predecessor of op ``i`` on resource ``r`` is the previous op
    in program order using ``r`` (exactly what ``free_at[r]`` holds when the
    serial engine reaches ``i``).  Predecessor indices ``>= i`` are dropped:
    the serial engine reads their still-unset finish time of ``0.0`` there,
    which contributes nothing to the running max.  Single-predecessor entries
    (the overwhelmingly common case) are stored as bare ints so the timeline
    walk skips the max loop entirely.
    """

    last_user: Dict[int, int] = {}
    merged: List[Union[int, Tuple[int, ...]]] = []
    for index, rec in enumerate(records):
        preds = {dep for dep in rec.deps if dep < index}
        for rid in rec.resources:
            prev = last_user.get(rid)
            if prev is not None:
                preds.add(prev)
            last_user[rid] = index
        if len(preds) == 1:
            merged.append(preds.pop())
        else:
            merged.append(tuple(sorted(preds)))
    return merged


class _Timeline:
    """Finish times and derived timing metrics of one duration vector."""

    __slots__ = ("finish", "makespan", "computation_time", "communication_time",
                 "trap_gate_busy", "trap_comm_busy")

    def __init__(self, finish, makespan, computation_time, communication_time,
                 trap_gate_busy, trap_comm_busy) -> None:
        self.finish = finish
        self.makespan = makespan
        self.computation_time = computation_time
        self.communication_time = communication_time
        self.trap_gate_busy = trap_gate_busy
        self.trap_comm_busy = trap_comm_busy


class _Trajectory:
    """Heating state shared by every variant with the same heating constants."""

    __slots__ = ("gate_energies", "final_trap_energies", "peak_occupancy",
                 "max_energy")

    def __init__(self, gate_energies, final_trap_energies, peak_occupancy,
                 max_energy) -> None:
        self.gate_energies = gate_energies
        self.final_trap_energies = final_trap_energies
        self.peak_occupancy = peak_occupancy
        self.max_energy = max_energy


class _DeviceView:
    """The slice of a device that :func:`repro.sim.engine._durations` reads.

    Lets the batch engine price one (gate, model) variant without building a
    full :class:`~repro.hardware.device.QCCDDevice` copy (whose constructor
    re-validates the topology).  The duration memo key ``(gate, model)``
    matches a real device's, so serial and batch runs share the memo.
    """

    __slots__ = ("gate", "model")

    def __init__(self, gate, model) -> None:
        self.gate = gate
        self.model = model


class BatchPlan:
    """Struct-of-arrays lowering of one compiled program, with variant caches.

    Built once per program (and cached on it, keyed by the identity of the
    operation list like the serial engine's record cache), then reused by
    every batch-simulation call.  The plan owns the memo layers shared across
    variants:

    * duration vectors per (gate, shuttle, single-qubit) parameter slot;
    * timelines per distinct duration vector (:meth:`timeline_for`);
    * heating trajectories per distinct ``(k1, k2, k_junction)`` vector;
    * accumulated noise totals per (timeline, trajectory, fidelity
      parameters, background rate) combination;
    * validated :class:`~repro.models.fidelity.FidelityModel` instances per
      parameter set (construction implies validation, so invalid parameters
      still raise exactly like the serial engine).
    """

    def __init__(self, program: QCCDProgram) -> None:
        records, resource_names = _op_records(program)
        self.operations = program.operations
        self.records = records
        self.resource_names = resource_names
        self.num_ops = len(records)
        self.preds = _merged_predecessors(records)
        self.is_comm = [rec.is_comm for rec in records]

        op_count_by_code = [0] * 9
        first_seen: List[int] = []
        chain_lengths: List[int] = []
        cl_index: Dict[int, int] = {}
        fid_items: List[object] = []
        heat_items: List[Tuple] = []
        for index, rec in enumerate(records):
            code = rec.code
            if not op_count_by_code[code]:
                first_seen.append(code)
            op_count_by_code[code] += 1
            if code == _GATE_2Q or code == _SWAP_GATE:
                slot = cl_index.get(rec.chain_length)
                if slot is None:
                    slot = len(chain_lengths)
                    cl_index[rec.chain_length] = slot
                    chain_lengths.append(rec.chain_length)
                reps = 1 if code == _GATE_2Q else _MS_PER_SWAP
                fid_items.append((index, slot, reps))
                heat_items.append((_H_SNAPSHOT, rec.trap))
            elif code == _GATE_1Q:
                fid_items.append(_FID_1Q)
            elif code == _MEASURE:
                fid_items.append(_FID_MEASURE)
            elif code == _SPLIT:
                heat_items.append((_H_SPLIT, rec.trap, rec.ion, rec.chain_size))
            elif code == _MERGE:
                heat_items.append((_H_MERGE, rec.trap, rec.ion))
            elif code == _MOVE:
                heat_items.append((_H_MOVE, rec.ion, rec.length))
            elif code == _JUNCTION:
                heat_items.append((_H_JUNCTION, rec.ion))
            else:  # _ION_SWAP
                heat_items.append((_H_ION_SWAP, rec.trap, rec.chain_size))

        self.fid_items = fid_items
        self.heat_items = heat_items
        self.chain_lengths = chain_lengths
        self.op_counts = {_CODE_TO_KIND[code]: op_count_by_code[code]
                          for code in first_seen}
        self.num_shuttles = op_count_by_code[_SPLIT]

        #: (gate, shuttle, single_qubit) -> (durations, timeline)
        self._duration_slots: Dict[Tuple, Tuple[List[float], _Timeline]] = {}
        #: duration tuple -> _Timeline (content-keyed: equal vectors dedup).
        self._timelines: Dict[Tuple[float, ...], _Timeline] = {}
        #: (k1, k2, k_junction, trap names) -> _Trajectory
        self._trajectories: Dict[Tuple, _Trajectory] = {}
        #: trap names -> per-trap (name, gate op ids, comm op ids) busy lists.
        self._busy_lists: Dict[Tuple[str, ...], List[Tuple]] = {}
        #: (timeline id, trajectory id, fidelity params, background rate) ->
        #: (log_fid, background_total, motional_total, num_ms).  The id keys
        #: are stable: the plan holds every timeline/trajectory forever.
        self._noise_memo: Dict[Tuple, Tuple] = {}
        #: fidelity params -> validated FidelityModel.
        self._fidelity_models: Dict[object, FidelityModel] = {}

        self.timelines_built = 0
        self.timeline_hits = 0
        self.trajectories_built = 0
        self.trajectory_hits = 0
        self.variants_evaluated = 0

    # ------------------------------------------------------------------ #
    def _busy_for(self, trap_names: Tuple[str, ...]) -> List[Tuple]:
        lists = self._busy_lists.get(trap_names)
        if lists is None:
            members = set(trap_names)
            per_rid: Dict[int, Tuple[str, List[int], List[int]]] = {}
            for rid, name in enumerate(self.resource_names):
                if name in members:
                    per_rid[rid] = (name, [], [])
            for index, rec in enumerate(self.records):
                is_comm = rec.is_comm
                for rid in rec.resources:
                    entry = per_rid.get(rid)
                    if entry is not None:
                        entry[2 if is_comm else 1].append(index)
            lists = list(per_rid.values())
            self._busy_lists[trap_names] = lists
        return lists

    def timeline_for(self, durations: Sequence[float],
                     trap_names: Tuple[str, ...]) -> _Timeline:
        """The (cached) timeline of one duration vector.

        Equal vectors -- however they were produced -- return the *same*
        timeline object; this is the duration-vector dedup that lets
        fidelity/heating-only variants skip the walk.
        """

        key = tuple(durations)
        timeline = self._timelines.get(key)
        if timeline is not None:
            self.timeline_hits += 1
            return timeline
        self.timelines_built += 1

        # Zero-communication durations for the Figure 6b breakdown: the
        # serial engine adds the zeroed duration too, and x + 0.0 == x for
        # every value the accumulator can take (all finish times are >= 0.0).
        cdur = [0.0 if comm else dur
                for comm, dur in zip(self.is_comm, durations)]
        finish: List[float] = []
        finish_c: List[float] = []
        fin_append = finish.append
        fin_c_append = finish_c.append
        for preds, duration, cduration in zip(self.preds, durations, cdur):
            if preds.__class__ is int:
                ready = finish[preds]
                ready_c = finish_c[preds]
            else:
                ready = 0.0
                ready_c = 0.0
                for p in preds:
                    value = finish[p]
                    if value > ready:
                        ready = value
                    value = finish_c[p]
                    if value > ready_c:
                        ready_c = value
            fin_append(ready + duration)
            fin_c_append(ready_c + cduration)

        makespan = max(finish, default=0.0)
        computation_time = max(finish_c, default=0.0)
        communication_time = max(0.0, makespan - computation_time)

        # Busy accounting: the serial engine adds durations in op order into
        # per-resource slots; summing each trap's op list in order is the
        # same addition sequence.  Only trap resources are reported.
        trap_gate_busy = {name: 0.0 for name in trap_names}
        trap_comm_busy = dict(trap_gate_busy)
        for name, gate_ids, comm_ids in self._busy_for(trap_names):
            total = 0.0
            for index in gate_ids:
                total += durations[index]
            trap_gate_busy[name] = total
            total = 0.0
            for index in comm_ids:
                total += durations[index]
            trap_comm_busy[name] = total

        timeline = _Timeline(finish, makespan, computation_time,
                             communication_time, trap_gate_busy, trap_comm_busy)
        self._timelines[key] = timeline
        return timeline

    def trajectory_for(self, program: QCCDProgram, heating_params,
                       trap_names: Tuple[str, ...]) -> _Trajectory:
        """The (cached) heating trajectory of one heating-constant vector.

        Keyed by ``(k1, k2, k_junction)`` -- the only constants the
        split/merge/move accounting reads -- so variants that differ in the
        background rate (or any fidelity parameter) share the trajectory.
        """

        key = (heating_params.k1, heating_params.k2, heating_params.k_junction,
               trap_names)
        trajectory = self._trajectories.get(key)
        if trajectory is not None:
            self.trajectory_hits += 1
            return trajectory
        self.trajectories_built += 1

        heating = HeatingModel(heating_params)
        trap_energy: Dict[str, float] = {name: 0.0 for name in trap_names}
        transit_energy: Dict[int, float] = {}
        occupancy: Dict[str, int] = {name: 0 for name in trap_names}
        for trap_name, chain in program.placement.trap_chains.items():
            occupancy[trap_name] = len(chain)
        peak_occupancy = dict(occupancy)
        max_energy = 0.0
        gate_energies: List[float] = []

        heating_split = heating.split
        heating_merge = heating.merge
        for item in self.heat_items:
            tag = item[0]
            if tag == _H_SNAPSHOT:
                gate_energies.append(trap_energy[item[1]])
            elif tag == _H_SPLIT:
                _, trap, ion, chain_size = item
                remaining, split_off = heating_split(trap_energy[trap],
                                                     chain_size, 1)
                trap_energy[trap] = remaining
                if remaining > max_energy:
                    max_energy = remaining
                transit_energy[ion] = split_off
                occupancy[trap] -= 1
            elif tag == _H_MERGE:
                _, trap, ion = item
                incoming = transit_energy.pop(ion, 0.0)
                merged = heating_merge(trap_energy[trap], incoming)
                trap_energy[trap] = merged
                if merged > max_energy:
                    max_energy = merged
                count = occupancy[trap] + 1
                occupancy[trap] = count
                if count > peak_occupancy[trap]:
                    peak_occupancy[trap] = count
            elif tag == _H_MOVE:
                _, ion, length = item
                transit_energy[ion] = heating.move(
                    transit_energy.get(ion, 0.0), length)
            elif tag == _H_JUNCTION:
                ion = item[1]
                transit_energy[ion] = heating.cross_junction(
                    transit_energy.get(ion, 0.0))
            else:  # _H_ION_SWAP
                _, trap, chain_size = item
                remaining, pair = heating_split(trap_energy[trap], chain_size, 2)
                merged = heating_merge(remaining, pair)
                trap_energy[trap] = merged
                if merged > max_energy:
                    max_energy = merged

        trajectory = _Trajectory(gate_energies, trap_energy, peak_occupancy,
                                 max_energy)
        self._trajectories[key] = trajectory
        return trajectory

    def stats(self) -> Dict[str, int]:
        """Cumulative cache counters of this plan."""

        return {
            "variants": self.variants_evaluated,
            "timelines_built": self.timelines_built,
            "timeline_hits": self.timeline_hits,
            "trajectories_built": self.trajectories_built,
            "trajectory_hits": self.trajectory_hits,
        }


def batch_plan(program: QCCDProgram) -> BatchPlan:
    """The program's batch plan, built on first use and cached on it."""

    plan = getattr(program, "_batch_plan", None)
    if plan is not None and plan.operations is program.operations:
        return plan
    plan = BatchPlan(program)
    program._batch_plan = plan
    return plan


def _noise_pass(plan: BatchPlan, durations: Sequence[float],
                finish: Sequence[float], gate_energies: Sequence[float],
                fidelity_model: FidelityModel, background_rate: float):
    """Per-variant fidelity accumulation over the cached finish times.

    Mirrors the noise arm of the serial fused loop exactly; only the
    fidelity-bearing ops are visited, and the per-op fidelity list is not
    materialised (it only feeds ``keep_timeline``, which the batch path does
    not produce).
    """

    params = fidelity_model.params
    min_fidelity = params.min_fidelity
    error_rate = params.background_heating_rate
    single_qubit_fid = fidelity_model.single_qubit_fidelity()
    measurement_fid = fidelity_model.measurement_fidelity()
    # log() of a constant is a constant: accumulating the precomputed value
    # is the same addition the serial engine performs per op.
    log = math.log
    neg_inf = -math.inf
    log_1q = log(single_qubit_fid) if single_qubit_fid > 0.0 else None
    log_measure = log(measurement_fid) if measurement_fid > 0.0 else None
    instability = [fidelity_model.laser_instability(length)
                   for length in plan.chain_lengths]

    log_fid = 0.0
    background_total = 0.0
    motional_total = 0.0
    num_ms = 0
    gate_pos = 0
    for item in plan.fid_items:
        if item.__class__ is int:
            if item == _FID_1Q:
                if log_1q is None:
                    log_fid = neg_inf
                elif log_fid != neg_inf:
                    log_fid += log_1q
            else:
                if log_measure is None:
                    log_fid = neg_inf
                elif log_fid != neg_inf:
                    log_fid += log_measure
            continue
        index, slot, repetitions = item
        duration = durations[index]
        end = finish[index]
        background_energy = background_rate * (end - duration)
        one_ms = duration if repetitions == 1 else duration / _MS_PER_SWAP
        background = error_rate * one_ms
        motional = instability[slot] * (
            2.0 * (gate_energies[gate_pos] + background_energy) + 1.0)
        gate_pos += 1
        background_total += background * repetitions
        motional_total += motional * repetitions
        num_ms += repetitions
        total = background + motional
        clamped = 1.0 - total
        if clamped > 1.0:
            clamped = 1.0
        if clamped < min_fidelity:
            clamped = min_fidelity
        # clamped ** 1 is exact (IEEE pow(x, 1) == x); skip the call.
        fid = clamped if repetitions == 1 else clamped ** repetitions
        if fid <= 0.0:
            log_fid = neg_inf
        elif log_fid != neg_inf:
            log_fid += log(fid)

    return log_fid, background_total, motional_total, num_ms


def _evaluate(plan: BatchPlan, program: QCCDProgram, gate, model,
              trap_names: Tuple[str, ...],
              with_breakdown: bool) -> SimulationResult:
    """Evaluate one (gate, physical-model) variant against the plan."""

    # The serial engine validates both noise models on entry (via the
    # HeatingModel/FidelityModel constructors); keep the same contract even
    # when every heavy structure comes from a cache.
    heating_params = model.heating
    heating_params.validate()
    fidelity_model = plan._fidelity_models.get(model.fidelity)
    if fidelity_model is None:
        fidelity_model = FidelityModel(model.fidelity)
        plan._fidelity_models[model.fidelity] = fidelity_model

    slot_key = (gate, model.shuttle, model.single_qubit)
    slot = plan._duration_slots.get(slot_key)
    if slot is None:
        durations = _durations(program, plan.records, _DeviceView(gate, model))
        timeline = plan.timeline_for(durations, trap_names)
        plan._duration_slots[slot_key] = (durations, timeline)
    else:
        durations, timeline = slot
        plan.timeline_hits += 1
    trajectory = plan.trajectory_for(program, heating_params, trap_names)

    noise_key = (id(timeline), id(trajectory), model.fidelity,
                 heating_params.background_rate)
    noise = plan._noise_memo.get(noise_key)
    if noise is None:
        noise = _noise_pass(plan, durations, timeline.finish,
                            trajectory.gate_energies, fidelity_model,
                            heating_params.background_rate)
        plan._noise_memo[noise_key] = noise
    log_fid, background_total, motional_total, num_ms = noise

    plan.variants_evaluated += 1
    makespan = timeline.makespan
    if with_breakdown:
        computation_time = timeline.computation_time
        communication_time = timeline.communication_time
    else:
        computation_time = makespan
        communication_time = 0.0
    return SimulationResult(
        duration=makespan,
        fidelity=SimulationResult.fidelity_from_log(log_fid),
        log_fidelity=log_fid,
        computation_time=computation_time,
        communication_time=communication_time,
        op_counts=dict(plan.op_counts),
        mean_background_error=background_total / num_ms if num_ms else 0.0,
        mean_motional_error=motional_total / num_ms if num_ms else 0.0,
        total_background_error=background_total,
        total_motional_error=motional_total,
        max_motional_energy=trajectory.max_energy,
        final_trap_energies=dict(trajectory.final_trap_energies),
        peak_occupancy=dict(trajectory.peak_occupancy),
        num_shuttles=plan.num_shuttles,
        num_ms_gates=num_ms,
        trap_gate_busy_time=dict(timeline.trap_gate_busy),
        trap_comm_busy_time=dict(timeline.trap_comm_busy),
        timeline=None,
        circuit_name=program.circuit_name,
        device_name=program.device_name,
    )


def _run_specs(program: QCCDProgram, specs: Sequence[Tuple],
               trap_names: Tuple[str, ...], with_breakdown: bool,
               stats: Optional[Dict[str, int]]) -> List[SimulationResult]:
    """Shared driver: evaluate ``(gate, model)`` specs, tracking counters."""

    had_plan = getattr(program, "_batch_plan", None) is not None and \
        program._batch_plan.operations is program.operations
    with span("sim.batch.plan", reused=had_plan,
              circuit=program.circuit_name):
        plan = batch_plan(program)
    timelines_before = plan.timelines_built
    hits_before = plan.timeline_hits

    with span("sim.batch.variants", circuit=program.circuit_name,
              variants=len(specs)) as trace:
        results = [_evaluate(plan, program, gate, model, trap_names,
                             with_breakdown)
                   for gate, model in specs]
        trace.set(timelines=plan.timelines_built - timelines_before,
                  timeline_hits=plan.timeline_hits - hits_before)

    if stats is not None:
        stats["plans"] = stats.get("plans", 0) + (0 if had_plan else 1)
        stats["plan_reuses"] = stats.get("plan_reuses", 0) + (1 if had_plan else 0)
        stats["variants"] = stats.get("variants", 0) + len(results)
        stats["timelines"] = stats.get("timelines", 0) + \
            (plan.timelines_built - timelines_before)
        stats["timeline_hits"] = stats.get("timeline_hits", 0) + \
            (plan.timeline_hits - hits_before)
    return results


def _trap_names(device: QCCDDevice) -> Tuple[str, ...]:
    return tuple(trap.name for trap in device.topology.traps)


def simulate_batch(program: QCCDProgram, devices: Sequence[QCCDDevice], *,
                   with_breakdown: bool = True,
                   stats: Optional[Dict[str, int]] = None,
                   ) -> List[SimulationResult]:
    """Simulate ``program`` under every device variant, in one shared pass.

    Every device must target the same topology as the program was compiled
    for (gate implementation and physical-model parameters are free to vary;
    that is the fan-out).  Results are bit-identical to calling
    :func:`repro.sim.engine.simulate` once per device, in order.

    Parameters
    ----------
    with_breakdown:
        As in the serial engine: when ``False`` the computation versus
        communication split collapses to the makespan.
    stats:
        Optional counter dictionary (e.g. ``ProgramCache.batch``);
        plan/timeline activity for this call is accumulated into it under
        the keys ``plans``/``plan_reuses``/``variants``/``timelines``/
        ``timeline_hits``.
    """

    devices = list(devices)
    if not devices:
        return []
    first_topology = devices[0].topology
    trap_names = _trap_names(devices[0])
    for device in devices[1:]:
        if device.topology is not first_topology and \
                _trap_names(device) != trap_names:
            raise ValueError(
                "simulate_batch variants must share the compiled program's "
                f"topology; got {device.topology.name!r} after "
                f"{first_topology.name!r}")
    return _run_specs(program,
                      [(device.gate, device.model) for device in devices],
                      trap_names, with_breakdown, stats)


def simulate_gate_variants(program: QCCDProgram, device: QCCDDevice,
                           gates: Sequence[str], *,
                           stats: Optional[Dict[str, int]] = None,
                           ) -> List[SimulationResult]:
    """Batch-simulate one compiled program under several gate implementations.

    The Figure 8 fan-out: the compiled operation stream is shared, only gate
    durations and fidelities differ per variant.  Bit-identical with
    simulating ``device.with_gate(gate)`` per entry, but without constructing
    any per-variant device.
    """

    specs = [(GateImplementation.from_name(gate), device.model)
             for gate in gates]
    return _run_specs(program, specs, _trap_names(device), True, stats)


def simulate_model_variants(program: QCCDProgram, device: QCCDDevice,
                            models: Sequence, *,
                            stats: Optional[Dict[str, int]] = None,
                            ) -> List[SimulationResult]:
    """Batch-simulate one compiled program under several physical models.

    The ablation-bench fan-out: heating/fidelity parameter vectors that share
    the gate implementation reuse one timeline (the duration vector is
    unchanged) and, when only fidelity parameters differ, one heating
    trajectory as well.
    """

    specs = [(device.gate, model) for model in models]
    return _run_specs(program, specs, _trap_names(device), True, stats)


def _assert_swap_constant() -> None:
    from repro.isa.operations import SwapGateOp

    if SwapGateOp.MS_GATES_PER_SWAP != _MS_PER_SWAP:  # pragma: no cover
        raise AssertionError(
            "repro.sim.batch hard-codes MS_GATES_PER_SWAP; update _MS_PER_SWAP")


_assert_swap_constant()

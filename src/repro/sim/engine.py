"""Simulation engine: replay a compiled program on a candidate device.

The engine conceptually evaluates three models -- durations (gate-time model
for the selected MS implementation, Table I shuttling times), noise (heating
and fidelity accumulation in program order) and timing (start/finish times
under dependency and exclusive-resource constraints).  The seed implementation
ran them as three separate passes over the operation objects, plus a *fourth*
pass (a second timing pass with communication durations zeroed) for the
computation/communication breakdown of Figure 6b.

This implementation makes a single dispatch-table-driven pass over
*precomputed per-op records*: each operation is lowered once per program to a
compact record (integer kind code, resource ids interned to ints, the
annotations the models need) that is cached on the program, so re-simulating
the same program under a different gate implementation -- the Figure 8
fan-out -- skips all of the isinstance/property dispatch.  The fused loop
advances the real timeline, the zero-communication timeline (for the
Figure 6b breakdown), the per-trap busy accounting and the heating/fidelity
state together.  Every arithmetic expression matches the seed implementation
operation for operation, so all metrics are bit-identical to the three-pass
engine (the determinism golden tests assert this).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.hardware.device import QCCDDevice
from repro.isa.operations import (
    GateOp,
    IonSwapOp,
    JunctionCrossOp,
    MergeOp,
    MeasureOp,
    MoveOp,
    OpKind,
    SplitOp,
    SwapGateOp,
)
from repro.isa.program import QCCDProgram
from repro.models.fidelity import FidelityModel
from repro.models.gate_times import gate_time
from repro.models.heating import HeatingModel
from repro.obs.trace import span
from repro.sim.results import OperationRecord, SimulationResult

# --------------------------------------------------------------------------- #
# Precomputed per-op records
# --------------------------------------------------------------------------- #
#: Integer kind codes used by the dispatch loops (cheaper than enum identity).
_GATE_1Q, _GATE_2Q, _SWAP_GATE, _MEASURE, _SPLIT, _MERGE, _MOVE, _JUNCTION, _ION_SWAP = range(9)

_CODE_TO_KIND: Dict[int, OpKind] = {
    _GATE_1Q: OpKind.GATE_1Q,
    _GATE_2Q: OpKind.GATE_2Q,
    _SWAP_GATE: OpKind.SWAP_GATE,
    _MEASURE: OpKind.MEASURE,
    _SPLIT: OpKind.SPLIT,
    _MERGE: OpKind.MERGE,
    _MOVE: OpKind.MOVE,
    _JUNCTION: OpKind.JUNCTION,
    _ION_SWAP: OpKind.ION_SWAP,
}

#: Codes whose operations exist purely to move state between traps (mirrors
#: :meth:`OpKind.is_communication`).
_COMM_CODES = frozenset({_SWAP_GATE, _SPLIT, _MERGE, _MOVE, _JUNCTION, _ION_SWAP})


class _OpRecord:
    """Flat, device-independent view of one operation."""

    __slots__ = ("code", "deps", "resources", "is_comm", "trap", "ion",
                 "chain_length", "ion_distance", "chain_size", "length",
                 "junction_degree")

    def __init__(self) -> None:
        self.code = -1
        self.deps: Tuple[int, ...] = ()
        self.resources: Tuple[int, ...] = ()
        self.is_comm = False
        self.trap = ""
        self.ion = -1
        self.chain_length = 0
        self.ion_distance = 0
        self.chain_size = 0
        self.length = 0
        self.junction_degree = 0


def _op_records(program: QCCDProgram) -> Tuple[List[_OpRecord], Tuple[str, ...]]:
    """Lower ``program`` to records; cached on the program instance.

    Returns ``(records, resource_names)`` where ``resource_names[rid]`` is the
    hardware resource interned as integer ``rid``.  The cache key is the
    identity of the operation list, so the (immutable in practice) program can
    be re-simulated under many devices without re-lowering.
    """

    cached = getattr(program, "_sim_records", None)
    if cached is not None and cached[0] is program.operations:
        return cached[1], cached[2]
    program._sim_durations = {}

    intern: Dict[str, int] = {}
    records: List[_OpRecord] = []
    for op in program.operations:
        rec = _OpRecord()
        rec.deps = op.dependencies
        if isinstance(op, GateOp):
            rec.code = _GATE_2Q if len(op.ions) == 2 else _GATE_1Q
            rec.trap = op.trap
            rec.chain_length = op.chain_length
            rec.ion_distance = op.ion_distance
        elif isinstance(op, SwapGateOp):
            rec.code = _SWAP_GATE
            rec.trap = op.trap
            rec.chain_length = op.chain_length
            rec.ion_distance = op.ion_distance
        elif isinstance(op, MeasureOp):
            rec.code = _MEASURE
            rec.trap = op.trap
        elif isinstance(op, SplitOp):
            rec.code = _SPLIT
            rec.trap = op.trap
            rec.ion = op.ion
            rec.chain_size = op.chain_size
        elif isinstance(op, MergeOp):
            rec.code = _MERGE
            rec.trap = op.trap
            rec.ion = op.ion
        elif isinstance(op, MoveOp):
            rec.code = _MOVE
            rec.ion = op.ion
            rec.length = op.length
        elif isinstance(op, JunctionCrossOp):
            rec.code = _JUNCTION
            rec.ion = op.ion
            rec.junction_degree = op.junction_degree
        elif isinstance(op, IonSwapOp):
            rec.code = _ION_SWAP
            rec.trap = op.trap
            rec.chain_size = op.chain_size
        else:
            raise TypeError(f"unknown operation type: {type(op).__name__}")
        rec.is_comm = rec.code in _COMM_CODES
        rec.resources = tuple(
            intern.setdefault(name, len(intern)) for name in op.resources
        )
        records.append(rec)

    resource_names = tuple(sorted(intern, key=intern.get))
    program._sim_records = (program.operations, records, resource_names)
    return records, resource_names


def _durations(program: QCCDProgram, records: List[_OpRecord],
               device: QCCDDevice) -> List[float]:
    """Duration of every operation under the device's performance models.

    Two-qubit gate times are memoised by ``(ion_distance, chain_length)`` --
    the gate-time formulas are pure, and large circuits revisit a handful of
    distinct geometries thousands of times.  The whole duration list is
    additionally memoised per (gate implementation, physical model): in the
    Figure 8 fan-out the same program is re-simulated under several devices
    that differ only in those two (hashable, frozen) inputs.
    """

    memo = getattr(program, "_sim_durations", None)
    if memo is not None:
        key = (device.gate, device.model)
        durations = memo.get(key)
        if durations is not None:
            return durations

    shuttle = device.model.shuttle
    single = device.model.single_qubit
    gate = device.gate
    single_gate_time = single.gate_time
    measurement_time = single.measurement_time
    split_time = shuttle.split
    merge_time = shuttle.merge
    move_segment = shuttle.move_segment
    ion_swap_time = shuttle.split + shuttle.ion_rotation + shuttle.merge
    ms_cache: Dict[Tuple[int, int], float] = {}
    junction_cache: Dict[int, float] = {}

    durations: List[float] = []
    append = durations.append
    for rec in records:
        code = rec.code
        if code == _GATE_2Q or code == _SWAP_GATE:
            key = (rec.ion_distance, rec.chain_length)
            one_ms = ms_cache.get(key)
            if one_ms is None:
                one_ms = gate_time(gate, distance=rec.ion_distance,
                                   chain_length=rec.chain_length)
                ms_cache[key] = one_ms
            append(one_ms if code == _GATE_2Q else SwapGateOp.MS_GATES_PER_SWAP * one_ms)
        elif code == _GATE_1Q:
            append(single_gate_time)
        elif code == _MEASURE:
            append(measurement_time)
        elif code == _SPLIT:
            append(split_time)
        elif code == _MERGE:
            append(merge_time)
        elif code == _MOVE:
            append(move_segment * rec.length)
        elif code == _JUNCTION:
            degree = rec.junction_degree
            value = junction_cache.get(degree)
            if value is None:
                value = shuttle.junction_time(degree)
                junction_cache[degree] = value
            append(value)
        else:  # _ION_SWAP
            append(ion_swap_time)
    if memo is not None:
        memo[(device.gate, device.model)] = durations
    return durations


# --------------------------------------------------------------------------- #
# Noise accumulator
# --------------------------------------------------------------------------- #
class _NoiseState:
    """Mutable accumulator for the heating/fidelity bookkeeping."""

    def __init__(self, program: QCCDProgram, device: QCCDDevice) -> None:
        self.trap_energy: Dict[str, float] = {
            trap.name: 0.0 for trap in device.topology.traps
        }
        self.transit_energy: Dict[int, float] = {}
        self.occupancy: Dict[str, int] = {trap.name: 0 for trap in device.topology.traps}
        for trap_name, chain in program.placement.trap_chains.items():
            self.occupancy[trap_name] = len(chain)
        self.peak_occupancy: Dict[str, int] = dict(self.occupancy)
        self.log_fidelity: float = 0.0
        self.op_fidelities: List[float] = []
        self.background_error: float = 0.0
        self.motional_error: float = 0.0
        self.num_ms_gates: int = 0
        self.max_energy: float = 0.0

    def bump_energy(self, trap: str, value: float) -> None:
        self.trap_energy[trap] = value
        if value > self.max_energy:
            self.max_energy = value

    def bump_occupancy(self, trap: str, delta: int) -> None:
        self.occupancy[trap] += delta
        if self.occupancy[trap] > self.peak_occupancy[trap]:
            self.peak_occupancy[trap] = self.occupancy[trap]


# --------------------------------------------------------------------------- #
# The fused pass
# --------------------------------------------------------------------------- #
def simulate(program: QCCDProgram, device: QCCDDevice, *,
             keep_timeline: bool = False,
             with_breakdown: bool = True) -> SimulationResult:
    """Simulate ``program`` on ``device`` and return the metrics.

    Parameters
    ----------
    keep_timeline:
        Also record a per-operation (start, finish, fidelity) timeline.
    with_breakdown:
        Also advance the zero-communication timeline that produces the
        computation versus communication time split of Figure 6b.
    """

    with span("sim.simulate", circuit=program.circuit_name,
              ops=len(program), gate=device.gate.value):
        return _simulate(program, device, keep_timeline=keep_timeline,
                         with_breakdown=with_breakdown)


def _simulate(program: QCCDProgram, device: QCCDDevice, *,
              keep_timeline: bool, with_breakdown: bool) -> SimulationResult:
    records, resource_names = _op_records(program)
    durations = _durations(program, records, device)
    num_ops = len(records)
    num_resources = len(resource_names)

    heating = HeatingModel(device.model.heating)
    fidelity_model = FidelityModel(device.model.fidelity)
    noise = _NoiseState(program, device)
    fidelity_params = fidelity_model.params
    min_fidelity = fidelity_params.min_fidelity
    error_rate = fidelity_params.background_heating_rate
    background_rate = device.model.heating.background_rate
    single_qubit_fid = fidelity_model.single_qubit_fidelity()
    measurement_fid = fidelity_model.measurement_fidelity()
    instability_cache: Dict[int, float] = {}
    trap_energy = noise.trap_energy
    transit_energy = noise.transit_energy
    ms_per_swap = SwapGateOp.MS_GATES_PER_SWAP
    # Log-fidelity accumulation inlined into the loop (a method call per op
    # is measurable at sweep scale).  Appending 1.0 without touching the
    # accumulator is exact: log(1.0) == +0.0 and x + 0.0 == x for every
    # value the accumulator can take (0.0 or a negative sum or -inf).
    log_fid = 0.0
    neg_inf = -math.inf
    log = math.log
    op_fidelities: List[float] = []
    fid_append = op_fidelities.append

    finish: List[float] = [0.0] * num_ops
    free_at: List[float] = [0.0] * num_resources
    finish_c: List[float] = [0.0] * num_ops if with_breakdown else []
    free_c: List[float] = [0.0] * num_resources
    gate_busy: List[float] = [0.0] * num_resources
    comm_busy: List[float] = [0.0] * num_resources

    op_count_by_code = [0] * 9
    first_seen_codes: List[int] = []

    for index in range(num_ops):
        rec = records[index]
        code = rec.code
        duration = durations[index]
        is_comm = rec.is_comm
        if not op_count_by_code[code]:
            first_seen_codes.append(code)
        op_count_by_code[code] += 1

        # --- real timeline -------------------------------------------- #
        ready = 0.0
        for dep in rec.deps:
            value = finish[dep]
            if value > ready:
                ready = value
        avail = 0.0
        for rid in rec.resources:
            value = free_at[rid]
            if value > avail:
                avail = value
        start = ready if ready >= avail else avail
        end = start + duration
        finish[index] = end
        for rid in rec.resources:
            free_at[rid] = end
            if is_comm:
                comm_busy[rid] += duration
            else:
                gate_busy[rid] += duration

        # --- zero-communication timeline (Figure 6b breakdown) -------- #
        if with_breakdown:
            cduration = 0.0 if is_comm else duration
            ready = 0.0
            for dep in rec.deps:
                value = finish_c[dep]
                if value > ready:
                    ready = value
            avail = 0.0
            for rid in rec.resources:
                value = free_c[rid]
                if value > avail:
                    avail = value
            cstart = ready if ready >= avail else avail
            cend = cstart + cduration
            finish_c[index] = cend
            for rid in rec.resources:
                free_c[rid] = cend

        # --- noise ----------------------------------------------------- #
        if code == _GATE_2Q or code == _SWAP_GATE:
            # Anomalous (background) heating of the chain accumulated since
            # the start of the execution; added to the shuttling-induced
            # energy for the gate error but reported separately (Figure 6f
            # tracks shuttling-induced energy only).
            background_energy = background_rate * (end - duration)
            trap = rec.trap
            if code == _GATE_2Q:
                one_ms = duration
                repetitions = 1
            else:
                one_ms = duration / ms_per_swap
                repetitions = ms_per_swap
            chain_length = rec.chain_length
            instability = instability_cache.get(chain_length)
            if instability is None:
                instability = fidelity_model.laser_instability(chain_length)
                instability_cache[chain_length] = instability
            # Inlined FidelityModel.two_qubit_error / two_qubit_fidelity
            # (equation 1): any change there must be mirrored here, and the
            # legacy-engine A/B in bench_pipeline_scale.py will catch drift.
            background = error_rate * one_ms
            motional = instability * (2.0 * (trap_energy[trap] + background_energy) + 1.0)
            noise.background_error += background * repetitions
            noise.motional_error += motional * repetitions
            noise.num_ms_gates += repetitions
            total = background + motional
            clamped = 1.0 - total
            if clamped > 1.0:
                clamped = 1.0
            if clamped < min_fidelity:
                clamped = min_fidelity
            fid = clamped ** repetitions
            if fid <= 0.0:
                log_fid = neg_inf
            elif log_fid != neg_inf:
                log_fid += log(fid)
            fid_append(fid)
        elif code == _GATE_1Q:
            if single_qubit_fid <= 0.0:
                log_fid = neg_inf
            elif log_fid != neg_inf:
                log_fid += log(single_qubit_fid)
            fid_append(single_qubit_fid)
        elif code == _MEASURE:
            if measurement_fid <= 0.0:
                log_fid = neg_inf
            elif log_fid != neg_inf:
                log_fid += log(measurement_fid)
            fid_append(measurement_fid)
        elif code == _SPLIT:
            trap = rec.trap
            remaining, split_off = heating.split(trap_energy[trap], rec.chain_size, 1)
            noise.bump_energy(trap, remaining)
            transit_energy[rec.ion] = split_off
            noise.bump_occupancy(trap, -1)
            fid_append(1.0)
        elif code == _MERGE:
            trap = rec.trap
            incoming = transit_energy.pop(rec.ion, 0.0)
            noise.bump_energy(trap, heating.merge(trap_energy[trap], incoming))
            noise.bump_occupancy(trap, +1)
            fid_append(1.0)
        elif code == _MOVE:
            current = transit_energy.get(rec.ion, 0.0)
            transit_energy[rec.ion] = heating.move(current, rec.length)
            fid_append(1.0)
        elif code == _JUNCTION:
            current = transit_energy.get(rec.ion, 0.0)
            transit_energy[rec.ion] = heating.cross_junction(current)
            fid_append(1.0)
        else:  # _ION_SWAP
            # One IS hop: split the pair off, rotate, merge back.  Net effect
            # on the chain energy is +3*k1 (two sub-chains gain k1 at the
            # split and the merge adds another k1); derived through the model
            # so any parameter change stays consistent.
            trap = rec.trap
            energy = trap_energy[trap]
            remaining, pair = heating.split(energy, rec.chain_size, 2)
            noise.bump_energy(trap, heating.merge(remaining, pair))
            fid_append(1.0)

    noise.log_fidelity = log_fid
    noise.op_fidelities = op_fidelities

    makespan = max(finish, default=0.0)
    if with_breakdown:
        computation_time = max(finish_c, default=0.0)
    else:
        computation_time = makespan
    communication_time = max(0.0, makespan - computation_time)

    # Dicts build from the topology's ordered trap tuple (never the set:
    # iteration order must not be hash-dependent); the set serves membership
    # tests only.
    trap_gate_busy: Dict[str, float] = {
        trap.name: 0.0 for trap in device.topology.traps
    }
    trap_comm_busy: Dict[str, float] = dict(trap_gate_busy)
    trap_names = {trap.name for trap in device.topology.traps}
    for rid, name in enumerate(resource_names):
        if name in trap_names:
            trap_gate_busy[name] = gate_busy[rid]
            trap_comm_busy[name] = comm_busy[rid]

    op_counts = {
        _CODE_TO_KIND[code]: op_count_by_code[code] for code in first_seen_codes
    }

    timeline: Optional[List[OperationRecord]] = None
    if keep_timeline:
        op_fidelities = noise.op_fidelities
        timeline = [
            OperationRecord(
                op_id=index,
                kind=_CODE_TO_KIND[records[index].code],
                start=finish[index] - durations[index],
                finish=finish[index],
                fidelity=op_fidelities[index],
            )
            for index in range(num_ops)
        ]

    num_ms = noise.num_ms_gates
    return SimulationResult(
        duration=makespan,
        fidelity=SimulationResult.fidelity_from_log(noise.log_fidelity),
        log_fidelity=noise.log_fidelity,
        computation_time=computation_time,
        communication_time=communication_time,
        op_counts=op_counts,
        mean_background_error=noise.background_error / num_ms if num_ms else 0.0,
        mean_motional_error=noise.motional_error / num_ms if num_ms else 0.0,
        total_background_error=noise.background_error,
        total_motional_error=noise.motional_error,
        max_motional_energy=noise.max_energy,
        final_trap_energies=dict(noise.trap_energy),
        peak_occupancy=dict(noise.peak_occupancy),
        num_shuttles=op_count_by_code[_SPLIT],
        num_ms_gates=num_ms,
        trap_gate_busy_time=trap_gate_busy,
        trap_comm_busy_time=trap_comm_busy,
        timeline=timeline,
        circuit_name=program.circuit_name,
        device_name=program.device_name,
    )

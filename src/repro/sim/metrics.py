"""Derived metrics over simulation results.

Small, pure helper functions the analysis layer and tests share.  Everything
here can be computed from a :class:`~repro.sim.results.SimulationResult`
(and optionally the program that produced it).
"""

from __future__ import annotations

from typing import Dict

from repro.isa.operations import OpKind
from repro.isa.program import QCCDProgram
from repro.sim.results import SimulationResult


def communication_fraction(result: SimulationResult) -> float:
    """Fraction of the makespan attributable to communication (0..1)."""

    if result.duration <= 0:
        return 0.0
    return result.communication_time / result.duration


def mean_two_qubit_error(result: SimulationResult) -> float:
    """Mean per-MS-gate error (background + motional)."""

    return result.mean_background_error + result.mean_motional_error


def shuttles_per_two_qubit_gate(result: SimulationResult) -> float:
    """Average number of shuttles incurred per application entangling gate."""

    gates = result.count(OpKind.GATE_2Q)
    if gates == 0:
        return 0.0
    return result.num_shuttles / gates


def reorder_overhead(result: SimulationResult) -> Dict[str, int]:
    """Counts of reordering operations (swap gates and physical ion swaps)."""

    return {
        "swap_gates": result.count(OpKind.SWAP_GATE),
        "ion_swaps": result.count(OpKind.ION_SWAP),
    }


def device_heating_summary(result: SimulationResult) -> Dict[str, float]:
    """Device-level heating metrics (Figure 6f / 7g style)."""

    energies = result.final_trap_energies
    return {
        "max_motional_energy": result.max_motional_energy,
        "final_max_energy": max(energies.values(), default=0.0),
        "final_mean_energy": (sum(energies.values()) / len(energies)) if energies else 0.0,
    }


def program_expansion(program: QCCDProgram) -> float:
    """Ratio of executed primitives to application gates.

    A measure of the communication overhead the compiler added; 1.0 means the
    program needed no shuttling at all.
    """

    app_ops = (program.count(OpKind.GATE_1Q) + program.count(OpKind.GATE_2Q)
               + program.count(OpKind.MEASURE))
    if app_ops == 0:
        return 0.0
    return len(program.operations) / app_ops


def gate_parallelism(result: SimulationResult) -> float:
    """Average number of traps busy with gates at any time.

    Computed as total gate busy time across traps divided by the makespan.
    """

    if result.duration <= 0:
        return 0.0
    total_busy = sum(result.trap_gate_busy_time.values())
    return total_busy / result.duration

"""Resource timeline: exclusive-use bookkeeping for traps, segments, junctions.

The simulator treats every trap, segment and junction as an exclusive
resource: an operation can only start once the resources it occupies are free.
This is how the paper's congestion handling appears in simulation -- a shuttle
that needs a segment another shuttle is using simply waits, and gates within a
trap serialise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


class ResourceTimeline:
    """Tracks, per resource, the time at which it next becomes free."""

    def __init__(self) -> None:
        self._free_at: Dict[str, float] = {}
        self._busy_time: Dict[str, float] = {}

    def available_at(self, resources: Iterable[str]) -> float:
        """Earliest time every resource in ``resources`` is simultaneously free."""

        return max((self._free_at.get(name, 0.0) for name in resources), default=0.0)

    def occupy(self, resources: Iterable[str], start: float, finish: float) -> None:
        """Mark ``resources`` busy during [start, finish)."""

        if finish < start:
            raise ValueError("finish must not precede start")
        for name in resources:
            if self._free_at.get(name, 0.0) > start:
                raise ValueError(
                    f"resource {name!r} is busy at {start}; scheduling bug in the caller"
                )
            self._free_at[name] = finish
            self._busy_time[name] = self._busy_time.get(name, 0.0) + (finish - start)

    def busy_time(self, resource: str) -> float:
        """Total time ``resource`` has been occupied so far."""

        return self._busy_time.get(resource, 0.0)

    def utilisation(self, resource: str, horizon: float) -> float:
        """Fraction of [0, horizon) during which ``resource`` was busy."""

        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time(resource) / horizon)

    def snapshot(self) -> Dict[str, float]:
        """Copy of the per-resource next-free times."""

        return dict(self._free_at)

    def items(self) -> Tuple[Tuple[str, float], ...]:
        """(resource, next-free-time) pairs."""

        return tuple(self._free_at.items())

"""Simulation results: application metrics and device metrics.

The result object mirrors the outputs of the paper's toolflow (Figure 3):
application run time, reliability (fidelity), resource/operation counts and
device noise metrics (motional mode energies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.operations import OpKind


@dataclass(frozen=True)
class OperationRecord:
    """Timeline entry for one executed operation (kept on request only)."""

    op_id: int
    kind: OpKind
    start: float
    finish: float
    fidelity: float = 1.0

    @property
    def duration(self) -> float:
        """Operation duration in microseconds."""

        return self.finish - self.start


@dataclass
class SimulationResult:
    """Application- and device-level metrics of one simulated execution.

    All times are microseconds unless the attribute name says otherwise.
    """

    #: Total execution time (makespan) in microseconds.
    duration: float
    #: Product of per-operation fidelities (the paper's application reliability).
    fidelity: float
    #: Natural log of the fidelity (robust to underflow for huge programs).
    log_fidelity: float
    #: Wall-clock of the program if all communication primitives took zero
    #: time -- the "computation time" component of Figure 6b.
    computation_time: float
    #: duration - computation_time: the communication component of Figure 6b.
    communication_time: float
    #: Operation counts by kind.
    op_counts: Dict[OpKind, int] = field(default_factory=dict)
    #: Mean per-two-qubit-gate error from background heating (Gamma * tau).
    mean_background_error: float = 0.0
    #: Mean per-two-qubit-gate error from motional energy / laser instability.
    mean_motional_error: float = 0.0
    #: Sum of background error over all MS gates (including reordering swaps).
    total_background_error: float = 0.0
    #: Sum of motional error over all MS gates (including reordering swaps).
    total_motional_error: float = 0.0
    #: Highest motional energy reached by any chain at any point (quanta).
    max_motional_energy: float = 0.0
    #: Final motional energy per trap (quanta).
    final_trap_energies: Dict[str, float] = field(default_factory=dict)
    #: Peak number of ions simultaneously present per trap.
    peak_occupancy: Dict[str, int] = field(default_factory=dict)
    #: Number of trap-to-trap shuttles (split operations).
    num_shuttles: int = 0
    #: Number of MS gate applications including reordering SWAPs (each SWAP
    #: counts as three MS gates).
    num_ms_gates: int = 0
    #: Busy time per trap spent executing gates (computation).
    trap_gate_busy_time: Dict[str, float] = field(default_factory=dict)
    #: Busy time per trap spent on splits/merges/reordering (communication).
    trap_comm_busy_time: Dict[str, float] = field(default_factory=dict)
    #: Full per-operation timeline (only populated when requested).
    timeline: Optional[List[OperationRecord]] = None
    #: Name of the circuit and device configuration that produced the result.
    circuit_name: str = "circuit"
    device_name: str = "device"

    # ------------------------------------------------------------------ #
    @property
    def duration_seconds(self) -> float:
        """Makespan in seconds (the unit of the paper's time plots)."""

        return self.duration * 1e-6

    @property
    def computation_seconds(self) -> float:
        """Computation component in seconds."""

        return self.computation_time * 1e-6

    @property
    def communication_seconds(self) -> float:
        """Communication component in seconds."""

        return self.communication_time * 1e-6

    @property
    def error_rate(self) -> float:
        """1 - fidelity."""

        return 1.0 - self.fidelity

    @property
    def mean_two_qubit_error(self) -> float:
        """Mean total error per MS gate (background + motional)."""

        return self.mean_background_error + self.mean_motional_error

    def count(self, kind: OpKind) -> int:
        """Operation count for ``kind``."""

        return self.op_counts.get(kind, 0)

    @property
    def num_communication_ops(self) -> int:
        """Total number of communication-only operations executed."""

        return sum(count for kind, count in self.op_counts.items() if kind.is_communication)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics (used by sweep tables)."""

        return {
            "duration_us": self.duration,
            "duration_s": self.duration_seconds,
            "fidelity": self.fidelity,
            "log_fidelity": self.log_fidelity,
            "computation_s": self.computation_seconds,
            "communication_s": self.communication_seconds,
            "max_motional_energy": self.max_motional_energy,
            "mean_background_error": self.mean_background_error,
            "mean_motional_error": self.mean_motional_error,
            "num_shuttles": float(self.num_shuttles),
            "num_ms_gates": float(self.num_ms_gates),
        }

    @staticmethod
    def fidelity_from_log(log_fidelity: float) -> float:
        """Convert a log-fidelity back to a probability, guarding underflow."""

        if log_fidelity == -math.inf:
            return 0.0
        return math.exp(log_fidelity)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"SimulationResult({self.circuit_name!r} on {self.device_name!r}: "
                f"time={self.duration_seconds:.4f}s, fidelity={self.fidelity:.4g})")

"""Design-space exploration toolflow (paper Figure 3, Sections VIII-X).

This layer glues applications, compiler and simulator into the experiments the
paper reports:

* :mod:`~repro.toolflow.config` -- :class:`ArchitectureConfig`, a declarative
  description of one candidate architecture.
* :mod:`~repro.toolflow.runner` -- compile-and-simulate drivers, including the
  gate-implementation fan-out that reuses one compilation across AM1/AM2/PM/FM.
* :mod:`~repro.toolflow.sweep` -- parameter sweeps over capacities, topologies
  and microarchitecture combinations, expressed as :mod:`repro.dse` design
  spaces and routed through an experiment store (resumable when persistent).
* :mod:`~repro.toolflow.parallel` -- the sweep executor: compiled-program
  memoization (:class:`ProgramCache`) and deterministic multi-process fan-out
  (:func:`run_tasks`), shared by every sweep and figure driver.
* :mod:`~repro.toolflow.figures` -- harnesses that regenerate the data series
  of Figures 6, 7 and 8.
* :mod:`~repro.toolflow.tables` -- harnesses for Tables I and II.
"""

from repro.toolflow.config import ArchitectureConfig
from repro.toolflow.parallel import (ProgramCache, SweepTask, execute_task,
                                     iter_tasks, run_tasks)
from repro.toolflow.runner import ExperimentRecord, run_experiment, run_gate_variants
from repro.toolflow.sweep import sweep_capacity, sweep_topologies, sweep_microarchitecture
from repro.toolflow.figures import figure6, figure7, figure8
from repro.toolflow.tables import table1, table2

__all__ = [
    "ArchitectureConfig",
    "ExperimentRecord",
    "ProgramCache",
    "SweepTask",
    "execute_task",
    "iter_tasks",
    "run_tasks",
    "run_experiment",
    "run_gate_variants",
    "sweep_capacity",
    "sweep_topologies",
    "sweep_microarchitecture",
    "figure6",
    "figure7",
    "figure8",
    "table1",
    "table2",
]

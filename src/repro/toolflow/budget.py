"""Wall-time budget guard for the compile+simulate hot path.

Design-space sweeps live or die by per-point pipeline throughput, so this
module pins a hard ceiling on the quickstart-style unit of work (32-qubit
QAOA on a six-trap linear device -- the ``examples/quickstart.py`` workload).
After the fast-path rewrite the unit runs in a few milliseconds; the default
budget of half a second is deliberately generous (~50x headroom) so that the
guard only trips on genuine algorithmic regressions, never on CI noise.

Invocable three ways:

* ``python -m repro check-budget`` (optionally ``--budget-s``),
* ``python benchmarks/check_budget.py``,
* the ``budget``-marked test in ``tests/test_budget_guard.py``
  (``pytest -m budget``).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

#: Default wall-time ceiling (seconds) for one quickstart compile+simulate.
DEFAULT_BUDGET_S = 0.5

#: Environment variable overriding the default budget.
BUDGET_ENV_VAR = "REPRO_BUDGET_S"


def quickstart_unit_seconds(repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of the quickstart compile+simulate unit."""

    from repro.apps import qaoa_circuit
    from repro.sim.engine import simulate
    from repro.toolflow.config import ArchitectureConfig
    from repro.toolflow.runner import compile_for

    circuit = qaoa_circuit(32, layers=8)
    config = ArchitectureConfig(topology="L6", trap_capacity=20)
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        program, device = compile_for(circuit, config)
        simulate(program, device)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def resolve_budget(budget_s: Optional[float] = None) -> float:
    """The active budget: explicit argument, else env var, else default."""

    if budget_s is not None:
        return float(budget_s)
    return float(os.environ.get(BUDGET_ENV_VAR, DEFAULT_BUDGET_S))


def check_budget(budget_s: Optional[float] = None) -> Dict[str, object]:
    """Measure the unit and compare against the budget.

    Returns ``{"elapsed_s", "budget_s", "ok"}``; callers decide how to fail.
    """

    budget = resolve_budget(budget_s)
    elapsed = quickstart_unit_seconds()
    return {"elapsed_s": elapsed, "budget_s": budget, "ok": elapsed <= budget}

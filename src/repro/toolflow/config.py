"""ArchitectureConfig: a declarative description of one candidate QCCD design.

The config captures exactly the knobs the paper sweeps -- topology, trap
capacity, two-qubit gate implementation and chain reordering method -- plus
the physical model parameters.  ``build_device`` turns it into a concrete
:class:`~repro.hardware.device.QCCDDevice` sized for a given application.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.hardware.builders import build_device, make_topology
from repro.hardware.device import QCCDDevice
from repro.models.params import PhysicalModel


@dataclass(frozen=True)
class ArchitectureConfig:
    """One point of the QCCD design space.

    Attributes
    ----------
    topology:
        Topology name (``"L6"``, ``"G2x3"``, ``"R8"``, ...).
    trap_capacity:
        Maximum ions per trap (the paper sweeps 14-34).
    gate:
        Two-qubit gate implementation: ``"AM1"``, ``"AM2"``, ``"PM"``, ``"FM"``.
    reorder:
        Chain reordering method: ``"GS"`` or ``"IS"``.
    buffer_ions:
        Free slots per trap reserved for incoming shuttles during the initial
        mapping.  If an application does not fit with the requested buffer,
        :meth:`build_device` shrinks the buffer just enough to fit (the paper
        evaluates 78-qubit SquareRoot on 6x14-ion devices, which requires
        relaxing the 2-slot buffer).
    model:
        Physical model parameters (defaults to the paper's values).
    """

    topology: str = "L6"
    trap_capacity: int = 20
    gate: str = "FM"
    reorder: str = "GS"
    buffer_ions: int = 2
    model: PhysicalModel = field(default_factory=PhysicalModel)

    def __post_init__(self) -> None:
        if self.trap_capacity < 2:
            raise ValueError("trap_capacity must be at least 2")
        if self.buffer_ions < 0:
            raise ValueError("buffer_ions must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Short configuration label used in reports."""

        return f"{self.topology}-cap{self.trap_capacity}-{self.gate}-{self.reorder}"

    def num_traps(self) -> int:
        """Number of traps implied by the topology name."""

        return make_topology(self.topology, self.trap_capacity).num_traps

    def max_buffer_for(self, num_qubits: int) -> int:
        """Largest per-trap buffer (<= requested) that still fits ``num_qubits``."""

        traps = self.num_traps()
        for buffer_ions in range(self.buffer_ions, -1, -1):
            usable = traps * max(0, self.trap_capacity - buffer_ions)
            if usable >= num_qubits:
                return buffer_ions
        raise ValueError(
            f"{num_qubits} qubits do not fit a {self.topology} device with "
            f"{self.trap_capacity}-ion traps even without buffer slots"
        )

    def build_device(self, num_qubits: Optional[int] = None) -> QCCDDevice:
        """Instantiate the device, sized for ``num_qubits`` program qubits."""

        buffer_ions = self.buffer_ions
        if num_qubits is not None:
            buffer_ions = self.max_buffer_for(num_qubits)
        return build_device(
            self.topology,
            trap_capacity=self.trap_capacity,
            gate=self.gate,
            reorder=self.reorder,
            num_qubits=num_qubits,
            buffer_ions=buffer_ions,
            model=self.model,
        )

    def with_updates(self, **changes) -> "ArchitectureConfig":
        """Return a copy with some fields replaced."""

        return replace(self, **changes)

"""Harnesses that regenerate the data series of the paper's figures.

Each function runs the relevant sweep and returns a plain-dictionary bundle of
series (lists indexed like ``capacities``), ready to be printed as text or
plotted.  The default parameters reproduce the paper's setup; passing a
scaled-down suite and a shorter capacity list yields fast shape-preserving
versions for tests and benchmarks.

* :func:`figure6` -- trap-sizing study (L6, FM, GS): runtime, fidelity, QFT
  computation/communication breakdown, motional energy, Supremacy error split.
* :func:`figure7` -- topology study (L6 versus G2x3, FM, GS): runtime,
  fidelity, SquareRoot motional heating.
* :func:`figure8` -- microarchitecture study (AM1/AM2/PM/FM x GS/IS on L6):
  fidelity and runtime per combination.

All three drivers delegate to the sweeps in :mod:`repro.toolflow.sweep` and
therefore accept ``jobs`` (parallel worker processes; 1 = serial) and
``cache`` (a shared :class:`~repro.toolflow.parallel.ProgramCache`, so e.g.
regenerating Figure 6 after Figure 7 reuses every L6 compilation).  They
also accept ``store`` (a persistent :class:`~repro.dse.store.ExperimentStore`),
which makes a figure regeneration resumable: design points already in the
store are replayed from disk bit-identically instead of recomputed.  The
assembled series are identical for every ``jobs`` value and store state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.apps.suite import table2_suite
from repro.ir.circuit import Circuit
from repro.toolflow.config import ArchitectureConfig
from repro.toolflow.parallel import ProgramCache
from repro.toolflow.sweep import (
    PAPER_CAPACITIES,
    PAPER_GATES,
    PAPER_REORDERS,
    sweep_capacity,
    sweep_microarchitecture,
    sweep_topologies,
)


def _suite_or_default(suite: Optional[Dict[str, Circuit]]) -> Dict[str, Circuit]:
    return suite if suite is not None else table2_suite()


def _take(records, circuit: Circuit, **expected):
    """Next record, verified against the enumeration the caller is walking.

    The figure drivers recover each record's suite key positionally (the
    sweeps return records in task order); this guard turns any future drift
    between the sweep enumeration and the walk into a loud error instead of
    silently misattributed series.
    """

    record = next(records)
    mismatches = {
        key: (value, getattr(record.config, key))
        for key, value in expected.items()
        if getattr(record.config, key) != value
    }
    if record.application != circuit.name:
        mismatches["application"] = (circuit.name, record.application)
    if mismatches:
        raise RuntimeError(
            f"sweep records out of step with the figure enumeration: {mismatches}"
        )
    return record


def figure6(suite: Optional[Dict[str, Circuit]] = None,
            capacities: Sequence[int] = PAPER_CAPACITIES,
            base: Optional[ArchitectureConfig] = None, *,
            jobs: int = 1,
            cache: Optional[ProgramCache] = None,
            store=None) -> Dict[str, object]:
    """Trap-sizing study (Figure 6a-g).

    Returns a dictionary with keys ``capacities``, ``runtime_s``, ``fidelity``,
    ``qft_breakdown``, ``max_motional_energy`` and ``supremacy_error``.
    """

    suite = _suite_or_default(suite)
    base = base or ArchitectureConfig(topology="L6", gate="FM", reorder="GS")

    runtime: Dict[str, List[float]] = {name: [] for name in suite}
    fidelity: Dict[str, List[float]] = {name: [] for name in suite}
    motional: Dict[str, List[float]] = {name: [] for name in suite}
    qft_breakdown = {"computation_s": [], "communication_s": []}
    supremacy_error = {"motional": [], "background": []}

    records = iter(sweep_capacity(suite, capacities=capacities, base=base,
                                  jobs=jobs, cache=cache, store=store))
    # Records come back in sweep-enumeration order (capacity-major, then
    # suite order), so walk the same loops to recover the suite keys.
    for capacity in capacities:
        for name in suite:
            result = _take(records, suite[name], trap_capacity=capacity).result
            runtime[name].append(result.duration_seconds)
            fidelity[name].append(result.fidelity)
            motional[name].append(result.max_motional_energy)
            if name == "QFT":
                qft_breakdown["computation_s"].append(result.computation_seconds)
                qft_breakdown["communication_s"].append(result.communication_seconds)
            if name == "Supremacy":
                supremacy_error["motional"].append(result.mean_motional_error)
                supremacy_error["background"].append(result.mean_background_error)

    return {
        "capacities": list(capacities),
        "config": base,
        "runtime_s": runtime,
        "fidelity": fidelity,
        "qft_breakdown": qft_breakdown,
        "max_motional_energy": motional,
        "supremacy_error": supremacy_error,
    }


def figure7(suite: Optional[Dict[str, Circuit]] = None,
            capacities: Sequence[int] = PAPER_CAPACITIES,
            topologies: Sequence[str] = ("L6", "G2x3"),
            base: Optional[ArchitectureConfig] = None, *,
            jobs: int = 1,
            cache: Optional[ProgramCache] = None,
            store=None) -> Dict[str, object]:
    """Topology study (Figure 7a-g).

    Returns ``capacities``, ``topologies``, ``runtime_s``, ``fidelity`` (both
    keyed ``app -> topology -> series``) and ``squareroot_heating``.
    """

    suite = _suite_or_default(suite)
    base = base or ArchitectureConfig(gate="FM", reorder="GS")

    runtime: Dict[str, Dict[str, List[float]]] = {
        name: {topology: [] for topology in topologies} for name in suite
    }
    fidelity: Dict[str, Dict[str, List[float]]] = {
        name: {topology: [] for topology in topologies} for name in suite
    }
    heating: Dict[str, List[float]] = {topology: [] for topology in topologies}

    records = iter(sweep_topologies(suite, topologies=topologies, capacities=capacities,
                                    base=base, jobs=jobs, cache=cache,
                                    store=store))
    for topology in topologies:
        for capacity in capacities:
            for name in suite:
                result = _take(records, suite[name], topology=topology,
                               trap_capacity=capacity).result
                runtime[name][topology].append(result.duration_seconds)
                fidelity[name][topology].append(result.fidelity)
                if name == "SquareRoot":
                    heating[topology].append(result.max_motional_energy)

    return {
        "capacities": list(capacities),
        "topologies": list(topologies),
        "config": base,
        "runtime_s": runtime,
        "fidelity": fidelity,
        "squareroot_heating": heating,
    }


def figure8(suite: Optional[Dict[str, Circuit]] = None,
            capacities: Sequence[int] = PAPER_CAPACITIES,
            gates: Iterable[str] = PAPER_GATES,
            reorders: Iterable[str] = PAPER_REORDERS,
            base: Optional[ArchitectureConfig] = None, *,
            jobs: int = 1,
            cache: Optional[ProgramCache] = None,
            store=None) -> Dict[str, object]:
    """Microarchitecture study (Figure 8a-l).

    Returns ``capacities``, ``combos`` (e.g. ``"FM-GS"``), ``fidelity`` and
    ``runtime_s`` keyed ``app -> combo -> series``.  Each (application,
    capacity, reorder) triple is compiled once and batch-simulated under
    every gate implementation in one shared pass
    (:func:`repro.sim.batch.simulate_batch` via the DSE runner's gate
    fan-out).
    """

    suite = _suite_or_default(suite)
    base = base or ArchitectureConfig(topology="L6")
    gates = tuple(gates)
    reorders = tuple(reorders)
    combos = [f"{gate}-{reorder}" for reorder in reorders for gate in gates]

    fidelity: Dict[str, Dict[str, List[float]]] = {
        name: {combo: [] for combo in combos} for name in suite
    }
    runtime: Dict[str, Dict[str, List[float]]] = {
        name: {combo: [] for combo in combos} for name in suite
    }

    records = iter(sweep_microarchitecture(suite, capacities=capacities, gates=gates,
                                           reorders=reorders, base=base,
                                           jobs=jobs, cache=cache,
                                           store=store))
    for reorder in reorders:
        for capacity in capacities:
            for name in suite:
                for gate in gates:
                    result = _take(records, suite[name], trap_capacity=capacity,
                                   reorder=reorder, gate=gate).result
                    combo = f"{gate}-{reorder}"
                    fidelity[name][combo].append(result.fidelity)
                    runtime[name][combo].append(result.duration_seconds)

    return {
        "capacities": list(capacities),
        "combos": combos,
        "config": base,
        "fidelity": fidelity,
        "runtime_s": runtime,
    }
